"""Figure 4: average bandwidth usage by bandwidth class.

Paper (4a ref-691): standard gossip 88.8 / 76.4 / 55.8 % for the
256k/768k/2M classes; HEAP 68.1 / 73.1 / 72.1 % — near-equal.
Paper (4b ms-691): standard 88.3 / 79.7 / 40.8 (rich under-utilized);
HEAP 79.0 / 74.7 / 71.1.

Shape targets: under standard gossip utilization *decreases* with
capability (poor saturated, rich idle); under HEAP the spread across
classes shrinks.
"""

from _harness import emit, measure

from repro.experiments.figures import fig4_bandwidth_usage


def bench_fig4_bandwidth_usage(benchmark):
    fig = measure(benchmark, fig4_bandwidth_usage)
    emit(fig)
    usage = fig.extra["usage"]

    for panel, poor, rich in (("4a", "256kbps", "2Mbps"),
                              ("4b", "512kbps", "3Mbps")):
        std = usage[(panel, "standard")]
        heap = usage[(panel, "heap")]
        # Standard: the poor class works at least as hard as the rich one.
        assert std[poor] >= std[rich] - 1.0
        # HEAP: the utilization spread across classes shrinks vs standard.
        std_spread = max(std.values()) - min(std.values())
        heap_spread = max(heap.values()) - min(heap.values())
        assert heap_spread <= std_spread + 1.0
