"""Extension: join-time capability discovery (paper §2.2's heuristic).

Nodes start by advertising a deliberately low capability and slow-start
toward their real uplink.  Shape targets: by the end of the stream the
advertised values approach the truth, and the stream quality matches
the configured-capability baseline — discovery costs only a short ramp.
"""

from _harness import emit, measure

from repro.experiments.extensions import ext_capability_discovery


def _seconds(cell: str) -> float:
    if cell in ("never", "n/a"):
        return float("inf")
    return float(cell.rstrip("s"))


def bench_ext_discovery(benchmark):
    table = measure(benchmark, ext_capability_discovery)
    emit(table)
    rows = {row[0]: row for row in table.rows}
    configured_quality = float(rows["configured"][1].rstrip("%"))
    discovery_quality = float(rows["discovery"][1].rstrip("%"))
    assert discovery_quality >= configured_quality - 10.0
    # Advertised capabilities converged towards (or above) reality.
    assert float(rows["discovery"][3]) >= 0.5
