"""Figure 2: fanout sweep under constrained heterogeneous uplinks.

Paper: on dist1 (ms-691) a fanout of 7 is poor, 15-20 helps, beyond 25
degrades again; on dist2 (uniform, same average) fanout 7 is optimal and
15-20 are *worse* — the good fanout range depends on the distribution,
so no single static fanout works.  Shape targets below assert the
U-shape on dist1 and the inversion on dist2.
"""

from _harness import emit, measure

from repro.analysis.stats import mean
from repro.experiments.figures import fig2_fanout_sweep


def bench_fig2_fanout_sweep(benchmark):
    fig = measure(benchmark, fig2_fanout_sweep)
    emit(fig)
    cdfs = fig.extra["cdfs"]

    def median_lag(label):
        return cdfs[label].percentile(0.5)

    # dist1: a moderate fanout increase improves on f=7 ...
    assert median_lag("f=15 dist1") <= median_lag("f=7 dist1") * 1.1
    # ... but a blind increase stops helping / hurts.
    assert median_lag("f=30 dist1") >= median_lag("f=15 dist1") * 0.9
    # dist2 (same average capability): large fanouts are not better than 7.
    assert median_lag("f=7 dist2") <= median_lag("f=20 dist2") * 1.1
