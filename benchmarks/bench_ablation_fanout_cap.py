"""Ablation: capping the adapted fanout (the superpeer concern).

The paper's §5 worries that adaptation "elevates certain wealthy nodes
to the rank of temporary superpeers".  A fanout cap bounds that role.
Shape targets: a generous cap (>= 2x the base fanout) costs nothing on
ms-691, while capping all the way down to the base fanout forfeits part
of HEAP's advantage — the rich tail can no longer absorb the load of
the 85% poor majority.
"""

from _harness import emit, measure

from repro.experiments.ablations import ablation_fanout_cap


def _seconds(cell: str) -> float:
    if cell in ("never", "n/a"):
        return float("inf")
    return float(cell.rstrip("s"))


def bench_ablation_fanout_cap(benchmark):
    table = measure(benchmark, ablation_fanout_cap)
    emit(table)
    lags = {row[0]: _seconds(row[2]) for row in table.rows}
    # A generous cap is indistinguishable from uncapped.
    assert lags["cap=21"] <= lags["uncapped"] * 1.3 + 0.5
    # Rich-node fanouts respect the cap.
    capped_fanout = float(table.rows[1][1])  # cap=10 row
    assert capped_fanout <= 10.0 + 0.5
