"""Table 1: the reference capability distributions and their CSR.

Static (no simulation): verifies our distributions render the paper's
exact class mix, averages and capability supply ratios.
"""

from _harness import emit, measure

from repro.experiments.tables import table1_distributions


def bench_table1_distributions(benchmark):
    table = measure(benchmark, table1_distributions)
    emit(table)
    by_name = {row[0]: row for row in table.rows}
    assert by_name["ref-691"][1] == "1.15"
    assert by_name["ms-691"][1] == "1.15"
    assert by_name["ref-724"][1] in ("1.20", "1.21")
    assert by_name["ref-691"][2].startswith("691.2")
