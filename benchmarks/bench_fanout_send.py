"""Microbenchmark: unicast ``send`` loop vs multicast ``send_many``.

Gossip fan-out is the network fabric's dominant send pattern (every
proposal round, aggregation exchange and audit round multicasts one
payload to k peers).  This bench drives a fan-out-heavy workload — one
sender multicasting to ``FANOUT`` receivers, round after round — through
both APIs so the per-destination overhead the multicast path removes
(wire sizing, per-kind/per-node stats dict updates) is measured in
isolation from protocol logic.

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_fanout_send.py

The smoke benchmark (``smoke_throughput.py``) runs the same comparison
without the harness and records the speedup in ``BENCH_throughput.json``.
"""

from repro.net.latency import ConstantLatency
from repro.net.message import intern_kind
from repro.net.network import Network
from repro.sim.engine import Simulator

FANOUT = 16
ROUNDS = 2000


class BenchPayload:
    kind = "fanout-bench"
    kind_id = intern_kind("fanout-bench", register=True)
    __slots__ = ()

    def wire_size(self):
        return 200


class Sink:
    __slots__ = ()

    def on_message(self, envelope):
        pass


def _build(fanout):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01), reuse_envelopes=True)
    for node_id in range(fanout + 1):
        net.attach(node_id, Sink(), 1e9)
    return sim, net, list(range(1, fanout + 1))


def run_send_loop(rounds=ROUNDS, fanout=FANOUT):
    sim, net, dsts = _build(fanout)
    payload = BenchPayload()
    send = net.send
    for _ in range(rounds):
        for dst in dsts:
            send(0, dst, payload)
        sim.run()
    return sim.events_executed


def run_send_many(rounds=ROUNDS, fanout=FANOUT):
    sim, net, dsts = _build(fanout)
    payload = BenchPayload()
    send_many = net.send_many
    for _ in range(rounds):
        send_many(0, dsts, payload)
        sim.run()
    return sim.events_executed


def bench_fanout_send_loop(benchmark):
    """Per-destination send(): the pre-multicast baseline."""
    executed = benchmark(run_send_loop)
    assert executed == ROUNDS * FANOUT


def bench_fanout_send_many(benchmark):
    """send_many(): one wire-size computation + batched sender stats."""
    executed = benchmark(run_send_many)
    assert executed == ROUNDS * FANOUT


def bench_fanout_equivalence():
    """The two paths produce identical traffic accounting."""
    sim_a, net_a, dsts = _build(FANOUT)
    payload = BenchPayload()
    for dst in dsts:
        net_a.send(0, dst, payload)
    sim_a.run()
    sim_b, net_b, dsts = _build(FANOUT)
    net_b.send_many(0, dsts, payload)
    sim_b.run()
    assert net_a.stats.sent == net_b.stats.sent
    assert net_a.stats.bytes_sent == net_b.stats.bytes_sent
    assert dict(net_a.stats.bytes_by_kind) == dict(net_b.stats.bytes_by_kind)
