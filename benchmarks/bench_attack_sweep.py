"""Benchmark: adversarial scenarios — honest vs attacked throughput.

The attack catalog (:mod:`repro.adversary`) substitutes adversarial
node/sampler implementations during scenario construction; this bench
measures what that costs.  A spam attack is the interesting case: the
attackers *add* traffic (flooding proposals far past the fanout), so the
events/s gap between the honest and attacked runs is genuine extra
simulated work, not harness overhead.

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_attack_sweep.py

The smoke benchmark (``smoke_throughput.py``) runs the same workloads
without the harness and records an ``attacks`` section in
``BENCH_throughput.json`` — honest events/s vs 10%-spam events/s — and
*verifies* while measuring that the attacked scenario shards cleanly:
the 2-shard run must produce byte-identical metric summaries and
attack-impact blobs (attacker placement is population-wide and pure, so
every shard plants the same attackers; see ``repro.net.shard``).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
from _harness import measure  # noqa: E402

#: CI-sized but attack-visible: enough nodes that a 10% spam fraction
#: floods a meaningful slice of the swarm, short stream so the smoke
#: bench stays cheap.  ``latency_floor`` doubles as the shard lookahead;
#: ``audit`` keeps the detector path (and the conviction side of the
#: attack-impact blob) in the measured work.
SCENARIO = dict(protocol="heap", n_nodes=300, duration=2.0, drain=4.0,
                seed=23, audit=True, latency_rng="per-pair",
                latency_floor=0.04)

#: The attacked variant: 10% spammers on the best-connected victims.
SPAM_FRACTION = 0.1


def _config(attacked: bool = False, shards: int = 0):
    from repro.adversary import AttackMix
    from repro.workloads.distributions import REF_691
    from repro.workloads.scenario import ScenarioConfig

    adversary = (AttackMix.single("spam", SPAM_FRACTION,
                                  victim_policy="high-degree")
                 if attacked else None)
    return ScenarioConfig(distribution=REF_691, adversary=adversary,
                          shards=shards, **SCENARIO)


def attack_blob(result) -> str:
    """Canonical JSON of the standard summaries + the attack impact."""
    from repro.adversary import attack_impact
    from repro.metrics.summary import standard_bundle, summarize

    return json.dumps({"summary": summarize(result, standard_bundle()),
                       "attack_impact": attack_impact(result)},
                      sort_keys=True)


def run_honest():
    """The attack-free baseline run."""
    from repro.experiments.runner import run_scenario

    return run_scenario(_config())


def run_spam():
    """The same scenario with 10% spammers planted on high-degree nodes."""
    from repro.experiments.runner import run_scenario

    return run_scenario(_config(attacked=True))


def run_spam_sharded(shards: int = 2):
    """The attacked scenario partitioned across worker shards."""
    from repro.net.shard import run_sharded

    return run_sharded(_config(attacked=True, shards=shards))


def bench_attack_honest(benchmark):
    """Baseline: the scenario with no attackers."""
    result = measure(benchmark, run_honest)
    assert result.sim.events_executed > 0
    assert not result.attackers


def bench_attack_spam(benchmark):
    """10% spam attackers: extra proposal traffic, measured honestly."""
    result = measure(benchmark, run_spam)
    assert result.attackers
    served = sum(stats.get("spam_proposes", 0)
                 for stats in result.attacker_stats.values())
    assert served > 0


def bench_attack_spam_sharded(benchmark):
    """The attacked scenario at 2 shards, verified byte-identical."""
    result = measure(benchmark, run_spam_sharded, 2)
    assert attack_blob(result) == attack_blob(run_spam())
