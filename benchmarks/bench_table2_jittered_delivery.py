"""Table 2: average delivery rate inside windows that cannot be decoded.

Paper: on ms-691 HEAP's jittered windows still carry 80-91% of their
data versus 43-65% for standard gossip — even when HEAP fails to decode
a window it fails gracefully.  (On the reference distributions HEAP has
so few jittered windows that its averages can look arbitrary, as the
paper itself notes for ref-724's high-bandwidth class.)
"""

from _harness import emit, measure

from repro.experiments.tables import table2_jittered_delivery


def bench_table2_jittered_delivery(benchmark):
    table = measure(benchmark, table2_jittered_delivery)
    emit(table)
    data = table.extra["data"]
    for (dist, protocol), ratios in data.items():
        for value in ratios.values():
            assert 0.0 <= value <= 100.0
    # Shape (ms-691): HEAP's jittered windows are no worse on average.
    std = data[("ms-691", "standard")]
    heap = data[("ms-691", "heap")]
    assert sum(heap.values()) >= sum(std.values()) - 5.0
