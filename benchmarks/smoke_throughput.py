"""Smoke benchmark: simulator throughput + parallel-sweep scaling.

Runs the same workloads as ``bench_simulator_throughput.py`` without the
pytest-benchmark harness and writes a compact ``BENCH_throughput.json``
so CI can archive the performance trajectory across PRs::

    PYTHONPATH=src python benchmarks/smoke_throughput.py --jobs 4

The sweep section also *verifies* (not just measures) the parallel
engine's contract: the serial and ``--jobs N`` aggregates must be
byte-identical, or the script exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_engine(events: int = 10_000):
    """The bare event loop: 100 chains of 100 self-scheduling events."""
    from repro.sim.engine import Simulator

    chains = 100
    depth = events // chains

    def run_schedule():
        sim = Simulator()

        def chain(remaining):
            if remaining > 0:
                sim.schedule(0.001, lambda: chain(remaining - 1))

        for _ in range(chains):
            chain(depth)
        sim.run()
        assert sim.events_executed == chains * depth

    def run_post():
        sim = Simulator()

        def chain(remaining):
            if remaining > 0:
                sim.post(0.001, lambda: chain(remaining - 1))

        for _ in range(chains):
            chain(depth)
        sim.run()
        assert sim.events_executed == chains * depth

    total = chains * depth
    schedule_s = _best_of(run_schedule)
    post_s = _best_of(run_post)
    return {
        "events": total,
        "schedule_events_per_sec": round(total / schedule_s),
        "post_events_per_sec": round(total / post_s),
    }


def bench_fanout(fanout: int = 16, rounds: int = 2000):
    """Unicast send loop vs multicast send_many on a fan-out workload.

    The speedup is self-relative (both paths measured back to back in
    this process), so it is robust to host noise in a way absolute
    events/s numbers are not.
    """
    from bench_fanout_send import run_send_loop, run_send_many

    events = rounds * fanout
    loop_s = _best_of(lambda: run_send_loop(rounds, fanout))
    many_s = _best_of(lambda: run_send_many(rounds, fanout))
    return {
        "fanout": fanout,
        "events": events,
        "send_loop_events_per_sec": round(events / loop_s),
        "send_many_events_per_sec": round(events / many_s),
        "send_many_speedup": round(loop_s / many_s, 2),
    }


def bench_scenario():
    """End-to-end cost of the reference small HEAP run (QUICK scale)."""
    from repro.experiments.runner import run_scenario
    from repro.experiments.scales import QUICK, scenario_at
    from repro.workloads.distributions import REF_691

    config = scenario_at(QUICK, protocol="heap", distribution=REF_691,
                         n_nodes=30, duration=5.0, drain=10.0)
    run_scenario(config)  # warm imports out of the timing
    started = time.perf_counter()
    result = run_scenario(config)
    wall = time.perf_counter() - started
    return {
        "events": result.sim.events_executed,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(result.sim.events_executed / wall),
    }


def bench_sharding():
    """Single-scenario throughput at 1/2/4 shards (1k-node scenario).

    Also *verifies* the sharded engine's contract while measuring: every
    shard count must produce byte-identical metric summaries.  Speedup
    is bounded by the host — on a 1-CPU runner the window barriers and
    worker processes can only cost, and the section records that
    honestly (the trend gate tracks the serial events/s, which is
    host-comparable; the per-shard-count numbers are the trajectory).

    The ``wire_batching`` subsection measures the cross-shard data plane
    at 2 shards: the packed-buffer exchange (one buffer per window per
    peer shard, multicast payloads interned) against the per-envelope
    escape hatch, in serialized bytes per window and events/s.  The
    byte numbers come from the ``NetworkStats`` wire counters, so they
    are deterministic — unlike the wall-clock numbers around them.
    """
    from bench_sharded_scenario import (n_windows, run_serial,
                                        run_with_shards, summary_blob)

    section = {"n_nodes": 1000, "cpus": os.cpu_count()}
    started = time.perf_counter()
    serial = run_serial()
    serial_wall = time.perf_counter() - started
    events = serial.sim.events_executed
    section["events"] = events
    section["serial_events_per_sec"] = round(events / serial_wall)
    serial_summaries = summary_blob(serial)
    identical = True
    batched_stats = None
    batched_wall = None
    for shards in (2, 4):
        started = time.perf_counter()
        result = run_with_shards(shards)
        wall = time.perf_counter() - started
        # Events/s is normalized to the *serial* event count: a sharded
        # run executes the same deliveries but different bucket events,
        # so the serial count is the comparable work measure.
        section[f"shards_{shards}_events_per_sec"] = round(events / wall)
        section[f"shards_{shards}_speedup"] = round(serial_wall / wall, 2)
        identical = identical and summary_blob(result) == serial_summaries
        if shards == 2:
            batched_stats = result.net.stats
    # Time the two wire formats back to back (escape hatch first): the
    # shards loop above leaves the process maximally warm, so adjacent
    # runs are the fair wall-clock comparison on a noisy host.  The byte
    # counters are deterministic and independent of this ordering.
    started = time.perf_counter()
    escape = run_with_shards(2, batch_wire=False)
    escape_wall = time.perf_counter() - started
    identical = identical and summary_blob(escape) == serial_summaries
    escape_stats = escape.net.stats
    started = time.perf_counter()
    rebatched = run_with_shards(2)
    batched_wall = time.perf_counter() - started
    identical = identical and summary_blob(rebatched) == serial_summaries
    windows = n_windows()
    section["wire_batching"] = {
        "shards": 2,
        "windows": windows,
        "wire_envelopes": batched_stats.wire_envelopes,
        "batched_buffers": batched_stats.wire_buffers,
        "batched_wire_bytes": batched_stats.wire_bytes,
        "batched_bytes_per_window": round(batched_stats.wire_bytes
                                          / windows),
        "batched_events_per_sec": round(events / batched_wall),
        "payload_bytes_before_interning":
            batched_stats.wire_payload_bytes_before,
        "payload_bytes_after_interning": batched_stats.wire_payload_bytes,
        "per_envelope_wire_bytes": escape_stats.wire_bytes,
        "per_envelope_bytes_per_window": round(escape_stats.wire_bytes
                                               / windows),
        "per_envelope_events_per_sec": round(events / escape_wall),
        "bytes_reduction": round(escape_stats.wire_bytes
                                 / batched_stats.wire_bytes, 2),
    }
    section["summaries_byte_identical"] = identical
    return section


def bench_attacks():
    """Honest vs 10%-spam scenario throughput, with attack shard parity.

    The spam attackers flood proposals past the fanout, so the attacked
    run executes genuinely more events — both absolute events/s numbers
    are tracked by the trend gate, and the ``spam_event_overhead`` ratio
    is self-relative (back-to-back in one process), host-noise-robust.

    Also *verifies* while measuring: the attacked scenario at 2 shards
    must produce byte-identical summaries and attack-impact blobs
    (attacker placement is a pure population-wide function, replicated
    per shard).
    """
    from bench_attack_sweep import (SPAM_FRACTION, attack_blob, run_honest,
                                    run_spam, run_spam_sharded)

    section = {"spam_fraction": SPAM_FRACTION}
    started = time.perf_counter()
    honest = run_honest()
    honest_wall = time.perf_counter() - started
    section["honest_events"] = honest.sim.events_executed
    section["honest_events_per_sec"] = round(
        honest.sim.events_executed / honest_wall)
    started = time.perf_counter()
    spam = run_spam()
    spam_wall = time.perf_counter() - started
    section["spam_events"] = spam.sim.events_executed
    section["spam_events_per_sec"] = round(
        spam.sim.events_executed / spam_wall)
    section["spam_event_overhead"] = round(
        spam.sim.events_executed / honest.sim.events_executed, 2)
    section["attackers"] = len(spam.attackers)
    sharded = run_spam_sharded(2)
    section["summaries_byte_identical"] = (
        attack_blob(sharded) == attack_blob(spam))
    return section


def bench_sweep(jobs: int):
    """8-seed, 2-scenario sweep: serial vs --jobs N, results verified equal."""
    from repro.experiments.multi_seed import metric_offline_delivery
    from repro.experiments.parallel import run_grid
    from repro.workloads.distributions import REF_691
    from repro.workloads.scenario import ScenarioConfig

    configs = [
        ScenarioConfig(name="heap", protocol="heap", n_nodes=30,
                       duration=5.0, drain=10.0, distribution=REF_691),
        ScenarioConfig(name="standard", protocol="standard", n_nodes=30,
                       duration=5.0, drain=10.0, distribution=REF_691),
    ]
    seeds = list(range(1, 9))
    metrics = {"delivery": metric_offline_delivery}

    serial = run_grid(configs, seeds, metrics, jobs=1)
    parallel = run_grid(configs, seeds, metrics, jobs=jobs)
    identical = (serial.determinism_keys() == parallel.determinism_keys()
                 and serial.render() == parallel.render())
    return {
        "scenarios": len(configs),
        "seeds": len(seeds),
        "jobs": jobs,
        #: Speedup is bounded by the host: expect ~min(jobs, cpus) minus
        #: pool overhead; on a 1-CPU box the pool can only cost, never win.
        "cpus": os.cpu_count(),
        "serial_wall_seconds": round(serial.wall_time, 4),
        "parallel_wall_seconds": round(parallel.wall_time, 4),
        "speedup": round(serial.wall_time / parallel.wall_time, 2),
        "aggregates_byte_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker processes for the sweep section")
    parser.add_argument("--out", default="BENCH_throughput.json")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "simulator-throughput-smoke",
        "python": sys.version.split()[0],
        "engine": bench_engine(),
        "fanout": bench_fanout(),
        "scenario": bench_scenario(),
        "sweep": bench_sweep(args.jobs),
        "sharding": bench_sharding(),
        "attacks": bench_attacks(),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["sweep"]["aggregates_byte_identical"]:
        print("FATAL: parallel sweep diverged from the serial run",
              file=sys.stderr)
        return 1
    if not report["sharding"]["summaries_byte_identical"]:
        print("FATAL: sharded scenario diverged from the serial run",
              file=sys.stderr)
        return 1
    if not report["attacks"]["summaries_byte_identical"]:
        print("FATAL: sharded attack scenario diverged from the serial run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
