"""Ablation: request retransmission under datagram loss.

The paper pairs UDP with a retransmission mechanism (Algorithm 2) and
integrates it into both protocols for fairness.  Shape targets: without
loss, retransmission is inert (same delivery); with loss, disabling it
punches permanent holes in the stream (a lost request or serve strands
the ids in eRequested), while enabling it restores near-complete
delivery at a modest lag cost.
"""

from _harness import emit, measure

from repro.experiments.ablations import ablation_retransmission


def bench_ablation_retransmission(benchmark):
    table = measure(benchmark, ablation_retransmission)
    emit(table)
    delivery = {(row[0], row[1]): float(row[2].rstrip("%"))
                for row in table.rows}
    # No loss: retransmission does not change offline delivery materially.
    assert abs(delivery[("loss=0%", "on")] - delivery[("loss=0%", "off")]) < 1.0
    # 3% loss: retransmission recovers what its absence loses.
    assert delivery[("loss=3%", "on")] > delivery[("loss=3%", "off")]
    assert delivery[("loss=3%", "on")] > 99.0
