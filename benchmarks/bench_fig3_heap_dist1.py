"""Figure 3: HEAP on the skewed dist1 (ms-691), average fanout 7.

Paper: with the same constrained distribution that cripples standard
gossip, HEAP delivers 99% of the stream to 50% of nodes at 13.3 s,
75% at 14.1 s, 90% at 19.5 s.  Shape target: HEAP's lag CDF dominates
standard gossip's at every lag.
"""

from _harness import emit, measure

from repro.experiments.figures import LAG_GRID, fig3_heap_dist1


def bench_fig3_heap_dist1(benchmark):
    fig = measure(benchmark, fig3_heap_dist1)
    emit(fig)
    cdf = fig.extra["cdf"]
    # HEAP reaches ~all nodes within the lag budget the paper plots (60 s).
    assert cdf.fraction_at(60.0) > 0.95
    # The 50/75/90 percentiles exist and are ordered.
    p = fig.extra["percentiles"]
    assert p[0.5] <= p[0.75] <= p[0.9]
