"""Figure 10: resilience to catastrophic failures (20% and 50% crashes).

Paper: with 20% (resp. 50%) of nodes crashing simultaneously, HEAP at a
12 s lag keeps delivering each window to ~all surviving nodes, with only
a transient drop around the failure; standard gossip at 20 s lag is far
below, and only approaches HEAP's quality at 30 s lag.
"""

from _harness import emit, measure

from repro.experiments.figures import fig10_churn


def _assert_shape(fig, fraction):
    series = fig.extra["series"]
    at_time = fig.extra["failure_time"]
    survivors = 100.0 * (1.0 - fraction)

    def post_failure_avg(label):
        values = [f for _, t, f in series[label] if t > at_time + 15]
        return sum(values) / len(values) if values else 0.0

    heap = post_failure_avg("heap - 12s lag")
    std20 = post_failure_avg("standard - 20s lag")
    # HEAP keeps serving nearly all survivors after the crash...
    assert heap >= survivors * 0.9
    # ...and matches or beats standard gossip despite a *smaller* lag.
    assert heap >= std20 - 2.0


def bench_fig10a_churn_20(benchmark):
    fig = measure(benchmark, fig10_churn, fraction=0.2)
    emit(fig)
    _assert_shape(fig, 0.2)


def bench_fig10b_churn_50(benchmark):
    fig = measure(benchmark, fig10_churn, fraction=0.5)
    emit(fig)
    _assert_shape(fig, 0.5)
