"""Ablation: the aggregation protocol's accuracy/overhead trade-off.

HEAP's fanout adaptation is only as good as its estimate of the average
capability.  This bench varies the aggregation fanout and the number of
freshest samples exchanged, reporting estimate error, per-node overhead
and the resulting stream lag.  Expected shape: even the cheapest setting
(fanout 1, the paper's ~1 KB/s) estimates within a few percent, and the
stream quality is insensitive across the grid — the knob buys little,
which is why the paper can afford the marginal-cost configuration.
"""

from _harness import emit, measure

from repro.experiments.ablations import ablation_aggregation


def bench_ablation_aggregation(benchmark):
    table = measure(benchmark, ablation_aggregation)
    emit(table)
    errors = [float(row[2].rstrip("%")) for row in table.rows]
    # Every configuration estimates the average within 20%.
    assert all(err < 20.0 for err in errors)
