"""Extension: gossip size estimation feeding the ln(n)+c fanout rule.

The paper computes the initial fanout "knowing the system size in
advance" and notes that a gossip aggregation protocol could estimate it
instead.  Shape targets: the push-pull estimator lands within tens of
percent of the true population across sizes — enough for a fanout rule
that only needs log-accuracy — and the implied fanout grows slowly
(logarithmically) with n.
"""

from _harness import emit, measure

from repro.experiments.extensions import ext_size_estimation


def bench_ext_size_estimation(benchmark):
    table = measure(benchmark, ext_size_estimation)
    emit(table)
    implied = [float(row[3]) for row in table.rows]
    # ln(n)+c grows with n but stays in single digits at these scales.
    assert implied == sorted(implied)
    assert implied[-1] < 10.0
    errors = [float(row[2].rstrip("%")) for row in table.rows if row[2] != "n/a"]
    assert errors and all(err < 60.0 for err in errors)
