"""Figure 7: CDF of nodes vs experienced jitter (ref-691).

Paper: at a 10 s lag most windows are jittered under standard gossip,
while "with HEAP and a stream lag of 10 s, 93% of the nodes experience
less than 10% jitter"; viewed offline, standard gossip eventually
delivers (its offline curve is far better than its 10 s curve).
"""

from _harness import emit, measure

from repro.experiments.figures import fig7_jitter_cdf


def bench_fig7_jitter_cdf(benchmark):
    fig = measure(benchmark, fig7_jitter_cdf)
    emit(fig)
    cdfs = fig.extra["cdfs"]
    at_lag = "10s lag"
    # HEAP at 10s: the overwhelming majority of nodes below 10% jitter.
    assert cdfs[f"heap - {at_lag}"].fraction_at(10.0) >= 0.9
    # HEAP dominates standard at the same lag.
    assert (cdfs[f"heap - {at_lag}"].fraction_at(10.0)
            >= cdfs[f"standard - {at_lag}"].fraction_at(10.0) - 0.01)
    # Offline, standard gossip recovers most of the stream eventually.
    assert (cdfs["standard - offline"].fraction_at(10.0)
            >= cdfs[f"standard - {at_lag}"].fraction_at(10.0) - 0.01)
