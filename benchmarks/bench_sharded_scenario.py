"""Benchmark: one large (1k-node) scenario, serial vs sharded execution.

The grid engine parallelizes *across* runs; the sharded engine
(:mod:`repro.net.shard`) parallelizes *within* one by partitioning the
node population over worker shards with conservative window
synchronization.  This bench measures single-scenario event throughput
at 1, 2 and 4 shards on the same paper-scale-plus HEAP scenario, and
verifies that the shard counts all produce byte-identical metric
summaries (the engine's determinism contract) while measuring.

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_scenario.py

The smoke benchmark (``smoke_throughput.py``) runs the same workload
without the harness and records a ``sharding`` section in
``BENCH_throughput.json``.  Shard speedup is bounded by the host's
cores: on a 1-CPU runner the extra processes and window barriers can
only cost, and the recorded numbers will honestly say so.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
from _harness import measure  # noqa: E402

#: The bench scenario: 1k nodes (the population the ROADMAP names for
#: intra-scenario sharding), short stream so the smoke bench stays
#: CI-sized.  ``latency_floor`` doubles as the shard lookahead.
SCENARIO = dict(protocol="heap", n_nodes=1000, duration=1.0, drain=2.0,
                seed=17, latency_rng="per-pair", latency_floor=0.04)


def _config(shards: int = 0):
    from repro.workloads.distributions import REF_691
    from repro.workloads.scenario import ScenarioConfig

    return ScenarioConfig(distribution=REF_691, shards=shards, **SCENARIO)


def summary_blob(result) -> str:
    from repro.metrics.summary import standard_bundle, summarize

    return json.dumps(summarize(result, standard_bundle()), sort_keys=True)


def run_serial():
    """The 1-shard baseline: the plain in-process run."""
    from repro.experiments.runner import run_scenario

    return run_scenario(_config())


def run_with_shards(shards: int, processes: bool = True,
                    batch_wire: bool = True):
    """The same scenario partitioned across ``shards`` worker shards.

    ``batch_wire=False`` runs the per-envelope wire escape hatch — the
    PR 4 format the wire-batching numbers are compared against.
    """
    from repro.net.shard import run_sharded

    return run_sharded(_config(shards), processes=processes,
                       batch_wire=batch_wire)


def n_windows(shards: int = 2) -> int:
    """Window barriers the sharded bench scenario crosses."""
    from repro.net.shard import window_count

    return window_count(_config(shards))


def bench_sharded_serial(benchmark):
    """Baseline: the full 1k-node scenario in one process."""
    result = measure(benchmark, run_serial)
    assert result.sim.events_executed > 0


def bench_sharded_two_shards(benchmark):
    """Two worker shards with windowed cross-shard exchange."""
    result = measure(benchmark, run_with_shards, 2)
    assert summary_blob(result) == summary_blob(run_serial())


def bench_sharded_four_shards(benchmark):
    """Four worker shards with windowed cross-shard exchange."""
    result = measure(benchmark, run_with_shards, 4)
    assert result.sim.events_executed > 0


def bench_sharded_two_shards_per_envelope(benchmark):
    """Two shards on the per-envelope wire escape hatch (the PR 4 path):
    the baseline the packed-buffer exchange is measured against."""
    result = measure(benchmark, run_with_shards, 2, True, False)
    assert result.net.stats.wire_envelopes > 0
