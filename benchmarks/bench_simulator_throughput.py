"""Engine micro-benchmarks: event throughput and end-to-end run cost.

Not a paper figure — these track the cost of the substrate itself so
regressions in the hot path (heap operations, uplink accounting, message
dispatch) are caught by comparing benchmark runs.
"""

from _harness import jobs_from_env

from repro.experiments.multi_seed import metric_offline_delivery
from repro.experiments.parallel import run_grid
from repro.experiments.scales import QUICK, scenario_at
from repro.experiments.runner import run_scenario
from repro.sim.engine import Simulator
from repro.workloads.distributions import REF_691


def bench_engine_event_throughput(benchmark):
    """Schedule/execute cost of the bare event loop."""

    def run_events():
        sim = Simulator()

        def chain(remaining):
            if remaining > 0:
                sim.schedule(0.001, lambda: chain(remaining - 1))

        for _ in range(100):
            chain(100)
        sim.run()
        return sim.events_executed

    executed = benchmark(run_events)
    assert executed == 100 * 100


def bench_small_heap_scenario(benchmark):
    """End-to-end cost of a small HEAP run (fixed tiny scale)."""

    def run():
        config = scenario_at(QUICK, protocol="heap", distribution=REF_691,
                             n_nodes=30, duration=5.0, drain=10.0)
        return run_scenario(config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.sim.events_executed > 1000


def bench_engine_post_throughput(benchmark):
    """Schedule/execute cost of the handle-free fire-and-forget path.

    This is the path every datagram delivery takes; comparing its OPS
    against bench_engine_event_throughput shows what the per-event
    EventHandle used to cost.
    """

    def run_events():
        sim = Simulator()

        def chain(remaining):
            if remaining > 0:
                sim.post(0.001, lambda: chain(remaining - 1))

        for _ in range(100):
            chain(100)
        sim.run()
        return sim.events_executed

    executed = benchmark(run_events)
    assert executed == 100 * 100


def bench_multi_seed_sweep(benchmark):
    """8-seed sweep through the parallel experiment engine.

    Serial by default; set ``REPRO_JOBS=4`` to measure the fan-out.  The
    aggregated values are identical either way (the determinism tests
    enforce it), so this bench tracks pure wall-time scaling.
    """

    def run():
        config = scenario_at(QUICK, protocol="heap", distribution=REF_691,
                             n_nodes=30, duration=5.0, drain=10.0)
        return run_grid(config, seeds=range(1, 9),
                        metrics={"delivery": metric_offline_delivery},
                        jobs=jobs_from_env())

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(grid.records) == 8
    assert all(record.metrics["delivery"] > 0.9 for record in grid.records)
