"""Extension: HEAP over decentralized membership (Cyclon partial views).

The paper's protocols assume a uniform random peer sampler and use full
membership on PlanetLab to get one.  Shape target: replacing the global
directory with Cyclon's shuffled partial views changes little — gossip's
reliability only needs approximately-uniform sampling, so HEAP ports to
a fully decentralized deployment.
"""

from _harness import emit, measure

from repro.experiments.extensions import ext_membership


def _seconds(cell: str) -> float:
    if cell in ("never", "n/a"):
        return float("inf")
    return float(cell.rstrip("s"))


def bench_ext_membership(benchmark):
    table = measure(benchmark, ext_membership)
    emit(table)
    lag = {(row[0], row[1]): _seconds(row[3]) for row in table.rows}
    reach = {(row[0], row[1]): row[2] for row in table.rows}
    # Cyclon HEAP reaches essentially everyone...
    reached, total = (int(x) for x in reach[("cyclon", "heap")].split("/"))
    assert reached >= 0.95 * total
    # ...at a lag comparable to the full-membership run.
    assert lag[("cyclon", "heap")] <= lag[("directory", "heap")] * 1.5 + 0.5
