"""Ablation: biasing the source's first-hop selection towards rich nodes.

The paper's §5: "our early experiments reveal that this can be
beneficial at the first step of the dissemination (i.e., from the
source) but reveals not trivial if performed in later steps".  This
bench sweeps the bias exponent of the source's capability-weighted
selector on the skewed ms-691.  Shape target mirrors the paper's mixed
verdict: the bias may trim the lag tail (rich first hops push fresh
packets into high-capacity fan-out immediately) but must not change the
outcome dramatically either way — it is a small, second-order knob.
"""

from _harness import emit, measure

from repro.experiments.ablations import ablation_source_bias


def _seconds(cell: str) -> float:
    if cell in ("never", "n/a"):
        return float("inf")
    return float(cell.rstrip("s"))


def bench_ablation_source_bias(benchmark):
    table = measure(benchmark, ablation_source_bias)
    emit(table)
    by_bias = {row[0]: _seconds(row[3]) for row in table.rows}
    # Second-order effect: within +-60% (plus slack for tiny scales) of
    # the unbiased lag, never a collapse.
    assert by_bias["bias=2"] <= by_bias["bias=0"] * 1.6 + 1.0
