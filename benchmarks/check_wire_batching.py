"""CI gate for the cross-shard wire-batching contract.

Runs one sharded scenario twice over real worker processes — packed
window buffers (the default) and the per-envelope escape hatch
(``batch_wire=False``) — and fails (exit 1) unless:

* both runs' metric summaries are byte-identical (batching is a pure
  wire-encoding change);
* the ``NetworkStats`` cross-shard wire counters are present and
  populated (buffers, envelopes, serialized bytes, payload bytes
  before/after interning, membership control rows — the scenario
  includes a mid-stream catastrophic failure so crash announcements
  actually ride the buffers);
* batching shipped strictly fewer serialized bytes than the
  per-envelope path on the same traffic.

Byte counters are deterministic, so this is a hard equality/inequality
gate, not a wall-clock threshold::

    PYTHONPATH=src python benchmarks/check_wire_batching.py
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--drain", type=float, default=6.0)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--serial-driver", action="store_true",
                        help="use the in-process windowed driver instead "
                             "of worker processes (1-CPU hosts)")
    args = parser.parse_args(argv)

    from repro.metrics.summary import standard_bundle, summarize
    from repro.net.shard import run_sharded, window_count
    from repro.workloads.churn import CatastrophicFailure
    from repro.workloads.distributions import REF_691
    from repro.workloads.scenario import ScenarioConfig

    churn = CatastrophicFailure(fraction=0.1,
                                at_time=2.0 + args.seconds / 2)
    config = ScenarioConfig(protocol="heap", n_nodes=args.nodes,
                            duration=args.seconds, drain=args.drain,
                            seed=7, distribution=REF_691,
                            latency_rng="per-pair", latency_floor=0.02,
                            churn=churn, shards=args.shards)
    processes = not args.serial_driver

    def blob(result) -> str:
        return json.dumps(summarize(result, standard_bundle()),
                          sort_keys=True)

    batched = run_sharded(config, processes=processes)
    escape = run_sharded(config, processes=processes, batch_wire=False)
    b, e = batched.net.stats.wire_summary(), escape.net.stats.wire_summary()
    windows = window_count(config)

    print(f"{'counter':<32} {'batched':>12} {'per-envelope':>12}")
    for key in b:
        print(f"{key:<32} {b[key]:>12,} {e[key]:>12,}")
    print(f"{'bytes per window':<32} {round(b['bytes'] / windows):>12,} "
          f"{round(e['bytes'] / windows):>12,}")

    failures = []
    if blob(batched) != blob(escape):
        failures.append("summaries diverged between batched and "
                        "per-envelope wire paths")
    for name, summary in (("batched", b), ("per-envelope", e)):
        for key, value in summary.items():
            if value <= 0:
                failures.append(f"{name} wire counter {key!r} is not "
                                f"populated (= {value})")
    if b["envelopes"] != e["envelopes"]:
        failures.append(f"paths shipped different envelope counts "
                        f"({b['envelopes']} vs {e['envelopes']})")
    expected_controls = len(batched.crash_times) * (args.shards - 1)
    if b["control_rows"] != expected_controls:
        failures.append(
            f"expected {expected_controls} control rows "
            f"({len(batched.crash_times)} victims x {args.shards - 1} peer "
            f"shards), counted {b['control_rows']}")
    if b["bytes"] >= e["bytes"]:
        failures.append(f"batching did not reduce serialized bytes "
                        f"({b['bytes']:,} >= {e['bytes']:,})")
    if (b["payload_bytes_after_interning"]
            >= b["payload_bytes_before_interning"]):
        failures.append("interning did not deduplicate any payload bytes")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nwire batching ok: {e['bytes'] / b['bytes']:.2f}x fewer "
          f"serialized bytes over {windows} windows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
