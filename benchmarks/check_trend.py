"""Performance-trend gate for the CI smoke benchmark.

Compares a freshly written ``BENCH_throughput.json`` against the
baseline committed in the repository and fails (exit 1) when any tracked
throughput number regresses below ``threshold`` of its baseline::

    PYTHONPATH=src python benchmarks/smoke_throughput.py --out fresh.json
    python benchmarks/check_trend.py BENCH_throughput.json fresh.json

The threshold is deliberately loose (default 0.5): shared CI runners
jitter by tens of percent, and the gate exists to catch the "accidental
10x" class of regression, not 5% noise.  The printed table is the
human-readable trend record either way.
"""

from __future__ import annotations

import argparse
import json
import sys

#: (json path, human label) of every gated throughput metric.
TRACKED = [
    (("engine", "post_events_per_sec"), "engine post() events/s"),
    (("engine", "schedule_events_per_sec"), "engine schedule() events/s"),
    (("scenario", "events_per_sec"), "scenario events/s"),
]


def _lookup(report: dict, path) -> float:
    value = report
    for key in path:
        value = value[key]
    return float(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_throughput.json")
    parser.add_argument("fresh", help="freshly measured BENCH_throughput.json")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="fail when fresh < threshold * baseline "
                             "(default 0.5)")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.fresh, encoding="utf-8") as fh:
        fresh = json.load(fh)

    failures = []
    print(f"{'metric':<28} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for path, label in TRACKED:
        old = _lookup(baseline, path)
        new = _lookup(fresh, path)
        ratio = new / old if old else float("inf")
        print(f"{label:<28} {old:>12,.0f} {new:>12,.0f} {ratio:>6.2f}x")
        if ratio < args.threshold:
            failures.append(f"{label}: {new:,.0f} < "
                            f"{args.threshold:.0%} of baseline {old:,.0f}")
    if failures:
        print("\nFAIL: throughput regressed beyond the trend threshold:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ntrend ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
