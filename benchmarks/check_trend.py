"""Performance-trend gate for the CI smoke benchmark.

Compares a freshly written ``BENCH_throughput.json`` against a reference
and fails (exit 1) when any tracked throughput number regresses below
``threshold`` of it::

    PYTHONPATH=src python benchmarks/smoke_throughput.py --out fresh.json
    python benchmarks/check_trend.py BENCH_throughput.json fresh.json \
        --history bench-history.jsonl

The reference is, per metric, the **median over the committed baseline
and the last ``--history-window`` runs** recorded in the history file —
so the gate tracks the performance trajectory across PRs instead of
pinning forever to whatever host measured the committed baseline.  With
no (or an empty) history file the gate degrades to the plain
baseline-only comparison.

When ``--history`` is given, the fresh run's tracked metrics are
appended to the file as one JSONL record *after* a passing gate, so a
regressing run never pollutes the history it failed against.  CI
persists the file across runs (actions/cache) and re-seeds it from the
committed baseline when the cache is cold.

The threshold is deliberately loose (default 0.5): shared CI runners
jitter by tens of percent, and the gate exists to catch the "accidental
10x" class of regression, not 5% noise.  The printed table is the
human-readable trend record either way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: (json path, human label) of every gated higher-is-better metric.
#: Metrics absent from the reference (e.g. a section added by a newer
#: benchmark version, like ``sharding`` or its ``wire_batching``
#: subsection) are skipped until the committed baseline or the history
#: carries them — a brand-new metric must never trip the gate on its
#: first run against a reference that predates it.
TRACKED = [
    (("engine", "post_events_per_sec"), "engine post() events/s"),
    (("engine", "schedule_events_per_sec"), "engine schedule() events/s"),
    (("fanout", "send_many_events_per_sec"), "fanout send_many events/s"),
    (("scenario", "events_per_sec"), "scenario events/s"),
    (("sharding", "serial_events_per_sec"), "1k-node scenario events/s"),
    (("sharding", "wire_batching", "batched_events_per_sec"),
     "2-shard batched events/s"),
    # Deterministic (counter-derived, not wall-clock): serialized-byte
    # reduction of the packed window exchange vs the per-envelope path.
    (("sharding", "wire_batching", "bytes_reduction"),
     "wire batching bytes reduction"),
    (("attacks", "honest_events_per_sec"), "attack-bench honest events/s"),
    (("attacks", "spam_events_per_sec"), "attack-bench 10%-spam events/s"),
]


def _lookup(report: dict, path):
    value = report
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return float(value)


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _read_history(path: str) -> list:
    """History records, oldest first; tolerant of a truncated last line."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # a killed writer leaves a partial last line
            raise
    return records


def _append_history(path: str, fresh: dict) -> None:
    record = {"metrics": {}}
    for sha_var in ("GITHUB_SHA",):
        if os.environ.get(sha_var):
            record["sha"] = os.environ[sha_var]
    for path_keys, _ in TRACKED:
        value = _lookup(fresh, path_keys)
        if value is not None:
            record["metrics"][".".join(path_keys)] = value
    # A killed writer can leave a partial (unterminated) last line.
    # _read_history already ignores it, but only while it stays last —
    # appending behind it would crash every future read.  It is dead
    # data either way, so drop it before appending.
    if os.path.exists(path) and os.path.getsize(path) > 0:
        with open(path, "rb+") as fh:
            content = fh.read()
            if not content.endswith(b"\n"):
                keep = content.rfind(b"\n") + 1  # 0 when no newline at all
                fh.truncate(keep)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_throughput.json")
    parser.add_argument("fresh", help="freshly measured BENCH_throughput.json")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="fail when fresh < threshold * reference "
                             "(default 0.5)")
    parser.add_argument("--history", default=None,
                        help="JSONL file of prior runs; the gate compares "
                             "against the median of baseline + recent "
                             "history, and appends this run on success")
    parser.add_argument("--history-window", type=int, default=10,
                        help="number of most-recent history records to "
                             "include in the reference median (default 10)")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.fresh, encoding="utf-8") as fh:
        fresh = json.load(fh)
    history = _read_history(args.history) if args.history else []
    recent = history[-args.history_window:] if history else []

    failures = []
    print(f"{'metric':<28} {'reference':>12} {'fresh':>12} {'ratio':>7}"
          f"  {'samples':>7}")
    for path, label in TRACKED:
        new = _lookup(fresh, path)
        if new is None:
            continue  # metric not produced by this benchmark version
        samples = []
        base = _lookup(baseline, path)
        if base is not None:
            samples.append(base)
        key = ".".join(path)
        for record in recent:
            value = record.get("metrics", {}).get(key)
            if value is not None:
                samples.append(float(value))
        if not samples:
            continue  # brand-new metric: nothing to compare against yet
        reference = _median(samples)
        ratio = new / reference if reference else float("inf")
        print(f"{label:<28} {reference:>12,.0f} {new:>12,.0f} {ratio:>6.2f}x"
              f"  {len(samples):>7}")
        if ratio < args.threshold:
            failures.append(f"{label}: {new:,.0f} < "
                            f"{args.threshold:.0%} of reference "
                            f"{reference:,.0f} "
                            f"(median of {len(samples)} samples)")
    if failures:
        print("\nFAIL: throughput regressed beyond the trend threshold:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.history:
        _append_history(args.history, fresh)
        print(f"\ntrend ok ({len(history) + 1} record(s) in {args.history})")
    else:
        print("\ntrend ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
