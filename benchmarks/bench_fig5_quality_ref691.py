"""Figure 5: stream quality by class on ref-691, 10 s lag.

Paper: with standard gossip, low-capability nodes get only ~18% of
windows jitter-free; HEAP lifts them above 90% — "HEAP allows high
capability nodes to assist low capability ones".
"""

from _harness import emit, measure

from repro.experiments.figures import fig5_quality_ref691


def bench_fig5_quality_ref691(benchmark):
    fig = measure(benchmark, fig5_quality_ref691)
    emit(fig)
    data = fig.extra["data"]
    # HEAP at least matches standard for every class, and strictly helps
    # the poorest class whenever standard leaves room.
    for label in data["standard"]:
        assert data["heap"][label] >= data["standard"][label] - 1.0
    assert data["heap"]["256kbps"] >= 90.0
