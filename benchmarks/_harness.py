"""Shared plumbing for the benchmark suite.

Every bench renders the same rows/series as the corresponding figure or
table of the paper; ``emit`` prints the rendering (visible with ``-s``)
and archives it under ``benchmarks/results/`` so a full bench run leaves
a reviewable record.  Simulation runs are heavyweight, so benches use
``benchmark.pedantic(..., rounds=1, iterations=1)`` through ``measure``.
"""

from __future__ import annotations

import os
import re

RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(__file__), "results"))


def emit(result) -> None:
    """Print and archive a FigureResult/TableResult rendering."""
    text = result.render()
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-",
                  getattr(result, "figure", getattr(result, "table", "out")).lower())
    path = os.path.join(RESULTS_DIR, f"{slug.strip('-')}.txt")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(text + "\n\n")


def measure(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def jobs_from_env(default: int = 1) -> int:
    """Worker-process count for multi-seed benches (``REPRO_JOBS=N``).

    Mirrors the CLI's ``--jobs`` flag for the benchmark harness; results
    are identical for any value, only the wall time changes.
    """
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", default)))
    except ValueError:
        return default

# No grid configuration needed here: the figure/table pipeline
# (repro.experiments.gridrun) already defaults its worker count to
# REPRO_JOBS, so ``REPRO_JOBS=8 pytest benchmarks/`` parallelizes every
# figure/table bench as-is.
