"""Table 3: percentage of nodes receiving a jitter-free stream, by class.

Paper: the starkest table — standard gossip serves a jitter-free stream
to 0% of the poorest class on both reference distributions and to 0% of
*every* class on ms-691 even at 20 s lag, while HEAP reaches 62-97%
everywhere.
"""

from _harness import emit, measure

from repro.analysis.stats import mean
from repro.experiments.tables import table3_jitter_free_nodes


def bench_table3_jitter_free_nodes(benchmark):
    table = measure(benchmark, table3_jitter_free_nodes)
    emit(table)
    data = table.extra["data"]
    for dist in ("ref-691", "ref-724", "ms-691"):
        std = data[(dist, "standard")]
        heap = data[(dist, "heap")]
        # HEAP reaches at least as many nodes in every class...
        for label in std:
            assert heap[label] >= std[label] - 1.0
        # ...and a clear majority overall.
        assert mean(heap.values()) >= 60.0
