"""Chaos recovery benchmark: what does surviving a worker crash cost?

Runs the same small grid clean and with an injected worker crash at one
cell, *verifies* the supervised retry reproduced identical results
(determinism keys + render — the chaos parity contract), and reports
the wall-clock overhead of the kill + backoff + replay::

    PYTHONPATH=src python benchmarks/chaos_recovery.py

Standalone evidence, not a CI trend gate: recovery overhead is
dominated by the retried cell's replay time, so it scales with cell
size, not with supervision bookkeeping.
"""

from __future__ import annotations

import sys
import time


def main() -> int:
    from repro.experiments.multi_seed import metric_offline_delivery
    from repro.experiments.parallel import run_grid
    from repro.faults import FaultPlan, SupervisionPolicy
    from repro.workloads.distributions import REF_691
    from repro.workloads.scenario import ScenarioConfig

    configs = [
        ScenarioConfig(name="heap", n_nodes=60, duration=3.0, drain=6.0,
                       distribution=REF_691),
        ScenarioConfig(name="standard", protocol="standard", n_nodes=60,
                       duration=3.0, drain=6.0, distribution=REF_691),
    ]
    metrics = {"delivery": metric_offline_delivery}
    seeds = [1, 2]

    started = time.perf_counter()
    clean = run_grid(configs, seeds=seeds, metrics=metrics, jobs=2,
                     start_method="fork")
    clean_wall = time.perf_counter() - started

    started = time.perf_counter()
    faulted = run_grid(configs, seeds=seeds, metrics=metrics, jobs=2,
                       start_method="fork",
                       faults=FaultPlan.parse("crash-cell=1"),
                       supervision=SupervisionPolicy(backoff_base=0.05))
    faulted_wall = time.perf_counter() - started

    if faulted.cell_retries < 1:
        print("FAIL: no retry recorded — the fault never fired",
              file=sys.stderr)
        return 1
    if faulted.failures:
        print(f"FAIL: {len(faulted.failures)} cell(s) quarantined; "
              f"expected full recovery", file=sys.stderr)
        return 1
    if faulted.determinism_keys() != clean.determinism_keys():
        print("FAIL: recovered run diverged from the clean run",
              file=sys.stderr)
        return 1
    if faulted.render() != clean.render():
        print("FAIL: recovered render differs from the clean render",
              file=sys.stderr)
        return 1

    overhead = faulted_wall - clean_wall
    print(f"clean grid      : {clean_wall:8.3f} s  ({len(clean.records)} cells, jobs=2)")
    print(f"crash + recovery: {faulted_wall:8.3f} s  "
          f"({faulted.cell_retries} retried attempt(s))")
    print(f"recovery overhead: {overhead:+.3f} s "
          f"({100.0 * overhead / clean_wall:+.1f} %)")
    print("parity: recovered results byte-identical to the clean run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
