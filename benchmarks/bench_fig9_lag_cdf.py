"""Figure 9: cumulative distribution of nodes vs stream lag.

Paper: HEAP consistently dominates standard gossip on both ref-691 (9a)
and ms-691 (9b); e.g. in ref-691, HEAP delivers jitter-free to 80% of
nodes at 12 s where standard gossip needs 26.6 s.  The 'max 1% jitter'
curves sit slightly left of the strict no-jitter curves.
"""

from _harness import emit, measure

from repro.experiments.figures import LAG_GRID, fig9_lag_cdf


def bench_fig9_lag_cdf(benchmark):
    fig = measure(benchmark, fig9_lag_cdf)
    emit(fig)
    cdfs = fig.extra["cdfs"]
    for panel in ("9a", "9b"):
        heap = cdfs[f"{panel} heap - no jitter"]
        std = cdfs[f"{panel} standard - no jitter"]
        # HEAP's curve sits at or above standard's across the grid.
        assert all(heap.fraction_at(x) >= std.fraction_at(x) - 0.02
                   for x in LAG_GRID)
        # Relaxing to 1% jitter never hurts.
        relaxed = cdfs[f"{panel} heap - max 1% jitter"]
        assert all(relaxed.fraction_at(x) >= heap.fraction_at(x) - 1e-9
                   for x in LAG_GRID)
