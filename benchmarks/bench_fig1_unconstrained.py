"""Figure 1: standard gossip, fanout 7, unconstrained uplinks.

Paper: 50% of nodes receive 99% of the stream within 1.3 s, 75% within
2.4 s, 90% within 21 s.  Shape target: with no bandwidth constraint the
lag CDF rises fast and high — gossip alone is a fine dissemination layer.
"""

import math

from _harness import emit, measure

from repro.experiments.figures import fig1_unconstrained


def bench_fig1_unconstrained(benchmark):
    fig = measure(benchmark, fig1_unconstrained)
    emit(fig)
    cdf = fig.extra["cdf"]
    percentiles = fig.extra["percentiles"]
    # Shape: the overwhelming majority reaches 99% delivery within seconds.
    assert cdf.fraction_at(10.0) > 0.9
    assert percentiles[0.5] < 5.0
    assert all(math.isfinite(v) for v in percentiles.values())
