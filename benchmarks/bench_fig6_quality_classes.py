"""Figure 6: stream quality by class on ms-691 (6a) and ref-724 (6b).

Paper 6a: standard gossip leaves even the *rich* class below 33%
jitter-free on the skewed distribution; HEAP lifts every class above
95%.  Paper 6b: with more headroom (ref-724), the whole system benefits
from contribution-proportional serving (47% -> 93% for the poor class).
"""

from _harness import emit, measure

from repro.experiments.figures import fig6_quality_classes


def bench_fig6_quality_classes(benchmark):
    fig = measure(benchmark, fig6_quality_classes)
    emit(fig)
    for dist_name in ("ms-691", "ref-724"):
        data = fig.extra[dist_name]
        for label in data["standard"]:
            assert data["heap"][label] >= data["standard"][label] - 1.0
    # The skewed distribution: HEAP keeps every class in good shape.
    assert min(fig.extra["ms-691"]["heap"].values()) >= 90.0
