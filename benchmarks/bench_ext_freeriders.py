"""Extension: freeriding impact and the gossip audit (paper §5).

The paper warns that advertising capabilities "may trigger freeriding
vocations, where nodes would pretend to be poor in order not to
contribute", and announces a freerider-tracking protocol.  Shape
targets: request-droppers are convicted with high precision; capability
under-claimers evade the answered/asked audit (their behaviour is
self-consistent) while their contribution index betrays the shortfall;
stream quality for honest nodes degrades as freeriding grows.
"""

from _harness import emit, measure

from repro.experiments.extensions import ext_freeriders


def bench_ext_freeriders(benchmark):
    table = measure(benchmark, ext_freeriders)
    emit(table)
    by_key = {(row[0], row[1]): row for row in table.rows}

    nonserve_30 = by_key[("nonserve", "30%")]
    precision = float(nonserve_30[4].split()[0].split("=")[1])
    recall = float(nonserve_30[4].split()[1].split("=")[1])
    assert precision >= 0.9
    assert recall >= 0.5

    underclaim_30 = by_key[("underclaim", "30%")]
    evasion_recall = float(underclaim_30[4].split()[1].split("=")[1])
    assert evasion_recall <= 0.3  # consistent liars evade the ratio audit
    rider, honest = (float(x) for x in underclaim_30[5].split("/"))
    assert rider < 0.6 * honest  # but their contribution betrays them
