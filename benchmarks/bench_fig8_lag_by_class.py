"""Figure 8: average stream lag to obtain a jitter-free stream, by class.

Paper: HEAP drastically reduces the lag for all capability classes on
both ref-691 (8a) and ms-691 (8b), and the benefit grows with the skew
of the distribution (std reaches ~45 s on ms-691's poor class).
"""

import math

from _harness import emit, measure

from repro.analysis.stats import mean
from repro.experiments.figures import fig8_lag_by_class


def bench_fig8_lag_by_class(benchmark):
    fig = measure(benchmark, fig8_lag_by_class)
    emit(fig)
    data = fig.extra["data"]
    for panel in ("8a", "8b"):
        std = data[(panel, "standard")]
        heap = data[(panel, "heap")]
        # HEAP's mean lag is no worse than standard's for every class...
        for label in std:
            if math.isfinite(std[label]):
                assert heap[label] <= std[label] + 0.5
        # ...and clearly better on average.
        assert mean(heap.values()) <= mean(std.values())
