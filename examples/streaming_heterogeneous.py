#!/usr/bin/env python3
"""Head-to-head: HEAP vs standard gossip on a skewed swarm.

Reproduces the paper's headline scenario in miniature: the ms-691
distribution ("dist1"), where 85% of nodes upload at 512 kbps — *below*
the 600 kbps stream rate — and only 5% have 3 Mbps.  Standard gossip
spreads load uniformly and congests the poor majority; HEAP shifts
serving onto the rich tail by scaling fanouts with capability.

    python examples/streaming_heterogeneous.py [--nodes N] [--seconds S]
"""

import argparse

from repro import ScenarioConfig, run_scenario
from repro.metrics import (
    jitter_free_fraction_by_class,
    mean_lag_by_class,
    utilization_by_class,
)
from repro.metrics.report import ascii_table, format_percent, format_seconds
from repro.workloads import MS_691


def run(protocol: str, nodes: int, seconds: float, seed: int):
    return run_scenario(ScenarioConfig(
        protocol=protocol, n_nodes=nodes, duration=seconds, drain=40.0,
        distribution=MS_691, seed=seed))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--seconds", type=float, default=25.0)
    parser.add_argument("--lag", type=float, default=6.0,
                        help="playback lag for quality metrics (seconds)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"ms-691: average {MS_691.average_bps() / 1024:.0f} kbps, "
          f"CSR {MS_691.csr(600 * 1024):.2f} — barely above the stream rate.\n")

    results = {}
    for protocol in ("standard", "heap"):
        print(f"Running {protocol}...")
        results[protocol] = run(protocol, args.nodes, args.seconds, args.seed)

    rows = []
    for protocol, result in results.items():
        quality = jitter_free_fraction_by_class(result, args.lag)
        lag = mean_lag_by_class(result)
        util = utilization_by_class(result)
        for label in result.class_labels():
            rows.append([protocol, label, format_percent(quality[label]),
                         format_seconds(lag[label]),
                         format_percent(util[label])])

    print()
    print(ascii_table(
        ["protocol", "class", f"jitter-free@{args.lag:g}s", "mean lag",
         "uplink usage"],
        rows, title="HEAP vs standard gossip on ms-691"))

    heap_fanouts = {}
    heap = results["heap"]
    for node_id in heap.receiver_ids():
        heap_fanouts.setdefault(heap.label_of(node_id), []).append(
            heap.nodes[node_id].current_fanout())
    print("\nHEAP adapted fanouts (Equation 1: f_p = f * b_p / b_avg):")
    for label, values in sorted(heap_fanouts.items(),
                                key=lambda kv: sum(kv[1]) / len(kv[1])):
        print(f"  {label:>8}: mean {sum(values) / len(values):4.1f} "
              f"(n={len(values)})")
    avg = sum(sum(v) for v in heap_fanouts.values()) / sum(
        len(v) for v in heap_fanouts.values())
    print(f"  population average: {avg:.2f} (configured base fanout: "
          f"{heap.config.gossip.fanout:g})")


if __name__ == "__main__":
    main()
