#!/usr/bin/env python3
"""Quickstart: stream video over HEAP and inspect the result.

Runs a small heterogeneous swarm (the paper's ref-691 capability
distribution), streams ~600 kbps of FEC-coded video through HEAP for a
few seconds of simulated time, and prints the metrics the paper
evaluates: stream quality (jitter-free windows), stream lag, and
per-class bandwidth usage.

    python examples/quickstart.py [--nodes N] [--seconds S] [--protocol P]
"""

import argparse

from repro import ScenarioConfig, run_scenario
from repro.analysis.stats import mean
from repro.metrics import (
    jitter_free_fraction_by_class,
    mean_lag_by_class,
    utilization_by_class,
)
from repro.metrics.lag import lag_cdf_jitter_free
from repro.workloads import REF_691


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=60,
                        help="total nodes including the source (default 60)")
    parser.add_argument("--seconds", type=float, default=15.0,
                        help="seconds of stream to publish (default 15)")
    parser.add_argument("--protocol", choices=("heap", "standard"),
                        default="heap")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    config = ScenarioConfig(
        protocol=args.protocol,
        n_nodes=args.nodes,
        duration=args.seconds,
        drain=30.0,
        distribution=REF_691,
        seed=args.seed,
    )
    print(f"Running {args.protocol} with {args.nodes} nodes, "
          f"{args.seconds:.0f}s of stream (seed {args.seed})...")
    result = run_scenario(config)

    print(f"\nSimulated {result.sim.now:.0f}s "
          f"({result.sim.events_executed:,} events); "
          f"{result.total_packets} packets in {len(result.windows())} FEC windows.\n")

    print("Stream quality (jitter-free windows at 10s lag, by class):")
    for label, value in jitter_free_fraction_by_class(result, 10.0).items():
        print(f"  {label:>8}: {value:5.1f}%")

    print("\nMean lag for a jitter-free stream, by class:")
    for label, value in mean_lag_by_class(result).items():
        print(f"  {label:>8}: {value:5.2f}s")

    print("\nUplink utilization, by class:")
    for label, value in utilization_by_class(result).items():
        print(f"  {label:>8}: {value:5.1f}%")

    cdf = lag_cdf_jitter_free(result)
    print("\nLag CDF (jitter-free): "
          + ", ".join(f"{int(100 * q)}% of nodes <= {cdf.percentile(q):.2f}s"
                      for q in (0.5, 0.75, 0.9)))

    total = result.total_packets
    offline = mean(result.log_of(n).delivery_ratio(total)
                   for n in result.receiver_ids())
    print(f"Offline delivery ratio: {100 * offline:.2f}%")


if __name__ == "__main__":
    main()
