#!/usr/bin/env python3
"""Catastrophic churn: a fifth (or half) of the swarm dies mid-stream.

Reproduces the paper's Section 3.6 experiment in miniature: nodes crash
simultaneously during the stream, survivors only learn about it ~10 s
later, and we watch what fraction of the initial population can decode
each FEC window.  Gossip's proactive random target selection means no
repair protocol is needed: the dissemination re-routes by construction.

    python examples/churn_resilience.py [--fraction 0.2|0.5]
"""

import argparse

from repro import ScenarioConfig, run_scenario
from repro.metrics import window_delivery_over_time
from repro.workloads import REF_691, CatastrophicFailure


def sparkline(values, width=60):
    """Render a 0-100 series as a text strip."""
    blocks = " .:-=+*#%@"
    step = max(1, len(values) // width)
    cells = []
    for i in range(0, len(values), step):
        chunk = values[i:i + step]
        avg = sum(chunk) / len(chunk)
        cells.append(blocks[min(9, int(avg / 10.01))])
    return "".join(cells)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fraction", type=float, default=0.2,
                        help="fraction of nodes crashing (default 0.2)")
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--seconds", type=float, default=45.0)
    parser.add_argument("--lag", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    failure_time = 2.0 + args.seconds / 3
    print(f"{args.nodes} nodes on ref-691; {args.fraction:.0%} crash at "
          f"t={failure_time:.0f}s; survivors detect failures after ~10s.\n")

    for protocol in ("heap", "standard"):
        config = ScenarioConfig(
            protocol=protocol, n_nodes=args.nodes, duration=args.seconds,
            drain=40.0, distribution=REF_691, seed=args.seed,
            churn=CatastrophicFailure(fraction=args.fraction,
                                      at_time=failure_time))
        result = run_scenario(config)
        series = window_delivery_over_time(result, lag=args.lag)
        fractions = [frac for _, _, frac in series]
        survivors = 100.0 * (1 - args.fraction)
        post = [frac for _, t, frac in series if t > failure_time + 15]
        print(f"{protocol:>8} @ {args.lag:g}s lag "
              f"({len(result.config.churn.victims)} victims)")
        print(f"          |{sparkline(fractions)}|  "
              f"(each cell ~ one window; @=100% of initial nodes)")
        if post:
            print(f"          post-failure average: "
                  f"{sum(post) / len(post):.1f}% "
                  f"(ceiling: {survivors:.0f}% — the survivors)\n")
        else:
            print()


if __name__ == "__main__":
    main()
