#!/usr/bin/env python3
"""Extending the library: a custom fanout policy and a custom workload.

The paper's §5 suggests adapting gossip to heterogeneity factors other
than bandwidth.  This example shows how little code that takes with this
library: we subclass :class:`~repro.core.base.GossipNode` with a
*latency-aware* fanout policy (nodes that observe fast serves of their
proposals gossip more), define a two-class "fiber vs DSL" workload, and
drive the pieces directly — simulator, network, membership, source —
without the scenario runner.
"""

import random

from repro.core import GossipConfig
from repro.core.base import GossipNode
from repro.membership.directory import MembershipDirectory
from repro.net.latency import PairwiseLatency
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.streaming.packets import StreamConfig
from repro.streaming.player import PlaybackAnalyzer
from repro.streaming.source import StreamSource
from repro.workloads.distributions import KBPS, BandwidthClass, CapabilityDistribution


class ServeAwareNode(GossipNode):
    """Fanout grows with how much this node has served recently.

    A node that keeps being selected as a server evidently sits on a good
    path (capable uplink, low latency), so it volunteers for more
    proposals — a crude self-measured alternative to HEAP's explicit
    capability aggregation.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._served_last_round = 0
        self._serves_at_round_start = 0

    def get_fanout(self) -> int:
        base = self.config.fanout
        boost = min(2.0, 1.0 + self._served_last_round / 50.0)
        return max(1, round(base * boost))

    def current_fanout(self) -> float:
        return float(self.get_fanout())

    def _on_gossip_tick(self) -> None:
        self._served_last_round = self.packets_served - self._serves_at_round_start
        self._serves_at_round_start = self.packets_served
        super()._on_gossip_tick()


FIBER_DSL = CapabilityDistribution("fiber-dsl", [
    BandwidthClass("fiber", 10_000 * KBPS, 0.2),
    BandwidthClass("dsl", 500 * KBPS, 0.8),
])


def main() -> None:
    n = 50
    sim = Simulator()
    registry = RngRegistry(99)
    net = Network(sim, latency=PairwiseLatency(registry.stream("latency")))
    directory = MembershipDirectory(sim, registry.stream("detect"))
    directory.register_all(range(n))

    config = GossipConfig(fanout=6.0)
    assignment = FIBER_DSL.assign(n - 1, registry.stream("workload"))
    capacities = [8_000 * KBPS] + [cap for _, cap in assignment]

    nodes = []
    for node_id in range(n):
        node = ServeAwareNode(sim, net, node_id, directory.view_of(node_id),
                              config, random.Random(node_id), capacities[node_id])
        net.attach(node_id, node, upload_capacity_bps=capacities[node_id])
        node.start()
        nodes.append(node)

    stream = StreamConfig()
    publish_times = []

    def publish(packet):
        publish_times.append(packet.publish_time)
        nodes[0].publish(packet)

    source = StreamSource(sim, stream, publish,
                          total_packets=stream.packets_for_duration(10.0))
    source.start(delay=1.0)
    sim.run(until=40.0)

    analyzer = PlaybackAnalyzer(stream, publish_times.__getitem__)
    windows = range(len(publish_times) // stream.packets_per_window)
    fanouts = [max(node.partners_per_round) if node.partners_per_round else 0
               for node in nodes[1:]]
    lags = [analyzer.min_lag_jitter_free(node.log, windows)
            for node in nodes[1:]]
    finite = [lag for lag in lags if lag != float("inf")]

    print(f"{n} nodes, fiber/dsl workload, serve-aware fanout policy")
    print(f"peak per-round fanouts ranged {min(fanouts)}..{max(fanouts)} "
          f"(base {config.fanout:g})")
    print(f"{len(finite)}/{len(lags)} nodes got a jitter-free stream; "
          f"mean lag {sum(finite) / len(finite):.2f}s")


if __name__ == "__main__":
    main()
