#!/usr/bin/env python3
"""Export figure data as CSV for external plotting.

Runs a compact version of the paper's quality and lag experiments and
writes their data as CSV files — one per figure — ready for gnuplot,
matplotlib, or a spreadsheet.

    python examples/export_figures.py --outdir ./figure-data
"""

import argparse
import os

from repro.experiments.figures import (
    LAG_GRID,
    fig5_quality_ref691,
    fig9_lag_cdf,
    fig10_churn,
)
from repro.experiments.scales import Scale
from repro.metrics.export import (
    lag_grid_rows,
    write_cdf_csv,
    write_result_csv,
    write_rows_csv,
    write_series_csv,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="figure-data")
    parser.add_argument("--nodes", type=int, default=80)
    parser.add_argument("--seconds", type=float, default=20.0)
    args = parser.parse_args()
    os.makedirs(args.outdir, exist_ok=True)
    scale = Scale("export", args.nodes, args.seconds, 40.0)

    def out(name):
        return os.path.join(args.outdir, name)

    print("running Figure 5 (quality by class)...")
    fig5 = fig5_quality_ref691(scale)
    rows = write_result_csv(out("fig5_quality_by_class.csv"), fig5)
    print(f"  -> fig5_quality_by_class.csv ({rows} rows)")

    print("running Figure 9 (lag CDFs)...")
    fig9 = fig9_lag_cdf(scale)
    points = write_cdf_csv(out("fig9_lag_cdfs.csv"), fig9.extra["cdfs"])
    print(f"  -> fig9_lag_cdfs.csv ({points} points)")
    grid = write_rows_csv(out("fig9_lag_grid.csv"),
                          ["series"] + [f"lag<={x:g}s" for x in LAG_GRID],
                          lag_grid_rows(fig9.extra["cdfs"], LAG_GRID))
    print(f"  -> fig9_lag_grid.csv ({grid} rows)")

    print("running Figure 10 (20% churn)...")
    fig10 = fig10_churn(scale, fraction=0.2)
    points = write_series_csv(out("fig10_churn_series.csv"),
                              fig10.extra["series"])
    print(f"  -> fig10_churn_series.csv ({points} points); "
          f"failure at t={fig10.extra['failure_time']:.1f}s")

    print(f"\nall files under {args.outdir}/")


if __name__ == "__main__":
    main()
