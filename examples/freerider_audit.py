#!/usr/bin/env python3
"""Freeriders in HEAP, and what a gossip audit can (and cannot) catch.

HEAP's §5 worry made concrete: plant freeriders in a swarm and run the
decentralized audit alongside the stream.

Two attacks:
* ``nonserve``   — answer only 20% of requests.  Caught: every requester
  observes the answered/asked ratio first hand, and gossiped audit
  reports accumulate into convictions with high precision.
* ``underclaim`` — advertise 10% of true capability to the aggregation
  protocol.  Evades the ratio audit entirely (the behaviour is
  self-consistent) and is only visible as a low contribution *volume* —
  indistinguishable from honest poverty without bandwidth proofs.

    python examples/freerider_audit.py [--mode nonserve|underclaim]
"""

import argparse

from repro import ScenarioConfig, run_scenario
from repro.adversary import AttackMix
from repro.freeriders.analysis import (
    contribution_index,
    convictions,
    detection_accuracy,
    honest_vs_freerider_contribution,
)
from repro.metrics import jitter_free_fraction_by_class
from repro.workloads import REF_691


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("nonserve", "underclaim"),
                        default="nonserve")
    parser.add_argument("--fraction", type=float, default=0.2)
    parser.add_argument("--nodes", type=int, default=80)
    parser.add_argument("--seconds", type=float, default=15.0)
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()

    # The attack-catalog form of the classic freerider study: the mix
    # replaces the deprecated freerider_* config triple (same placement,
    # same node classes, bit-identical results).
    param = 0.2 if args.mode == "nonserve" else 0.1
    config = ScenarioConfig(
        protocol="heap", n_nodes=args.nodes, duration=args.seconds,
        drain=30.0, distribution=REF_691, seed=args.seed,
        adversary=AttackMix.single(args.mode, args.fraction, param),
        audit=True)
    print(f"{args.nodes} nodes, {args.fraction:.0%} {args.mode} freeriders, "
          f"audit gossip running on every node...\n")
    result = run_scenario(config)

    quality = jitter_free_fraction_by_class(result, 10.0)
    print("stream quality (jitter-free windows @10s):",
          {label: f"{value:.0f}%" for label, value in quality.items()})

    convicted = convictions(result)
    accuracy = detection_accuracy(result, convicted)
    print(f"\naudit verdicts: {len(convicted)} convicted of "
          f"{len(result.freerider_ids)} planted "
          f"(precision {accuracy.precision:.2f}, recall {accuracy.recall:.2f})")

    gap = honest_vs_freerider_contribution(result)
    print(f"contribution index (served/consumed): "
          f"honest {gap['honest']:.2f} vs freeriders {gap['freeriders']:.2f}")

    if args.mode == "underclaim" and accuracy.recall < 0.5:
        print("\nThe ratio audit is blind to under-claimers: they answer what"
              "\nthey are asked — they just arrange to be asked little.  Only"
              "\ntheir contribution volume betrays them, and that signal also"
              "\nflags honest poor nodes.  This is the open problem the paper"
              "\npoints at with its freerider-tracking follow-up work.")
        worst = sorted(result.freerider_ids,
                       key=lambda n: contribution_index(result, n))[:3]
        print("lowest-contribution freeriders:",
              {n: f"{contribution_index(result, n):.2f}" for n in worst})


if __name__ == "__main__":
    main()
