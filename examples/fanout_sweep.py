#!/usr/bin/env python3
"""Why a blind fanout increase cannot fix heterogeneity (paper's Figure 2).

Sweeps the fanout of *standard* gossip over a constrained heterogeneous
swarm (ms-691).  A moderate increase helps a little — more proposals give
receivers more choices of servers — but past a point the extra control
traffic and the unchanged load-balancing hurt; and the "good" fanout for
one capability distribution is wrong for another with the same average.
HEAP sidesteps the dilemma by adapting per-node fanouts instead.

    python examples/fanout_sweep.py [--fanouts 7,15,25]
"""

import argparse
import dataclasses

from repro import ScenarioConfig, run_scenario
from repro.metrics.lag import lag_cdf_delivery_ratio
from repro.metrics.report import ascii_table, cdf_row
from repro.workloads import MS_691, UNIFORM_691


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fanouts", default="7,15,25",
                        help="comma-separated fanouts to sweep")
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--seconds", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()
    fanouts = [float(f) for f in args.fanouts.split(",")]

    lag_grid = (1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 40.0)
    rows = []
    for dist, tag in ((MS_691, "dist1(ms-691)"), (UNIFORM_691, "dist2(uniform)")):
        for fanout in fanouts:
            config = ScenarioConfig(
                protocol="standard", n_nodes=args.nodes,
                duration=args.seconds, drain=40.0, distribution=dist,
                seed=args.seed)
            config = config.with_(gossip=dataclasses.replace(
                config.gossip, fanout=fanout))
            print(f"running f={fanout:g} on {tag}...")
            result = run_scenario(config)
            cdf = lag_cdf_delivery_ratio(result, ratio=0.99)
            rows.append(cdf_row(f"f={fanout:g} {tag}", cdf, lag_grid))

    # HEAP reference at average fanout 7.
    config = ScenarioConfig(protocol="heap", n_nodes=args.nodes,
                            duration=args.seconds, drain=40.0,
                            distribution=MS_691, seed=args.seed)
    print("running HEAP (avg f=7) on dist1...")
    result = run_scenario(config)
    rows.append(cdf_row("HEAP avg f=7 dist1", lag_cdf_delivery_ratio(result, 0.99),
                        lag_grid))

    headers = ["series"] + [f"<={x:g}s" for x in lag_grid]
    print()
    print(ascii_table(headers, rows,
                      title="% of nodes receiving >=99% of the stream, vs lag"))


if __name__ == "__main__":
    main()
