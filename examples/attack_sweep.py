#!/usr/bin/env python3
"""Attacking HEAP: a weighted attack mix swept over victim policies.

Plants a mixed adversary — spammers flooding proposals plus withholders
sitting on chunk ids they promised to forward — and sweeps *where* the
attackers land: random victims, the best-connected nodes, the edge of
the capability distribution, or one contiguous cluster.  Placement is
the whole story for some attacks: a withholder on a 2 Mbps node starves
far more descendants than one on a 256 kbps leaf.

The attack catalog, placement policies and per-victim impact metrics all
come from :mod:`repro.adversary`; the same mix is what ``repro sweep
--attacks spam=0.1,withhold=0.05 --victim-policy high-degree`` runs from
the command line.

    python examples/attack_sweep.py [--attacks spam=0.1,withhold=0.05]
"""

import argparse

from repro import ScenarioConfig, run_scenario
from repro.adversary import PLACEMENT_POLICIES, AttackMix, attack_impact
from repro.metrics.report import ascii_table
from repro.workloads import REF_691


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attacks", default="spam=0.1,withhold=0.05",
                        help="weighted mix, name=fraction pairs "
                             "(see `python -m repro attacks --list`)")
    parser.add_argument("--attack-params", default="",
                        help="per-attack parameter overrides, name=value")
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--seconds", type=float, default=8.0)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    rows = []
    for policy in PLACEMENT_POLICIES:
        mix = AttackMix.parse(args.attacks, params_text=args.attack_params,
                              victim_policy=policy)
        config = ScenarioConfig(
            protocol="heap", n_nodes=args.nodes, duration=args.seconds,
            drain=16.0, distribution=REF_691, seed=args.seed,
            adversary=mix, audit=True)
        print(f"running {mix.describe()}...")
        result = run_scenario(config)
        impact = attack_impact(result)
        rows.append([
            policy,
            str(impact["attackers"]["n"]),
            f"{impact['honest']['delivery_pct']:.2f}%",
            f"{impact['delta']['delivery_pct']:+.2f}pp",
            f"{impact['delta']['mean_lag']:+.3f}s",
            f"{impact['attacker_cost']['mean_served']:.0f}"
            f"/{impact['attacker_cost']['honest_mean_served']:.0f}",
            str(impact["attacker_cost"].get("convicted", "-")),
        ])

    print()
    print(ascii_table(
        ["victim policy", "attackers", "honest delivery",
         "attacked delta", "lag delta", "served atk/honest", "convicted"],
        rows,
        title=f"attack mix [{args.attacks}] vs placement policy "
              f"({args.nodes} nodes, seed {args.seed})"))
    print("\nDelta columns compare the attacked subpopulation against the"
          "\nhonest one; 'served atk/honest' is the packets-served gap the"
          "\naudit can see.  Withholders are caught by the answered/asked"
          "\nratio when they also drop requests; pure forward-withholding"
          "\nis only visible in their descendants' lag.")


if __name__ == "__main__":
    main()
