"""Integration tests for the runner's optional substrates
(Cyclon membership, capability discovery, degraded nodes, source bias)."""

import math

import pytest

from repro import ScenarioConfig, run_scenario
from repro.analysis.stats import mean
from repro.metrics.lag import per_node_lag_jitter_free
from repro.workloads import REF_691

FAST = dict(n_nodes=40, duration=8.0, drain=20.0, seed=11)


class TestCyclonMembership:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(ScenarioConfig(protocol="heap",
                                           distribution=REF_691,
                                           membership="cyclon", **FAST))

    def test_samplers_attached_to_all_nodes(self, result):
        assert set(result.samplers) == set(range(40))

    def test_views_are_partial(self, result):
        sizes = [len(result.nodes[n].view) for n in result.receiver_ids()]
        assert all(size <= result.config.cyclon_view_size for size in sizes)
        assert mean(sizes) > 5

    def test_dissemination_still_works(self, result):
        lags = per_node_lag_jitter_free(result)
        reached = sum(1 for lag in lags.values() if math.isfinite(lag))
        assert reached >= 0.9 * len(lags)

    def test_shuffle_traffic_present(self, result):
        assert result.net.stats.count_by_kind.get("shuffle-req", 0) > 100


class TestCapabilityDiscovery:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(ScenarioConfig(protocol="heap",
                                           distribution=REF_691,
                                           capability_discovery=True,
                                           **FAST))

    def test_advertised_capabilities_converge_upwards(self, result):
        # Nodes started at 128 kbps advertised; busy ones grew toward truth.
        ratios = [result.nodes[n].capability_bps / result.capacity_of(n)
                  for n in result.receiver_ids()]
        assert mean(ratios) > 0.4

    def test_source_unaffected(self, result):
        assert result.nodes[0].capability_bps == pytest.approx(
            REF_691.average_bps())

    def test_stream_still_delivered(self, result):
        lags = per_node_lag_jitter_free(result)
        reached = sum(1 for lag in lags.values() if math.isfinite(lag))
        assert reached >= 0.9 * len(lags)

    def test_discovery_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(discovery_initial_bps=0.0).validate()


class TestMembershipValidation:
    def test_unknown_membership_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(membership="carrier-pigeon").validate()

    def test_tiny_cyclon_view_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(membership="cyclon", cyclon_view_size=1).validate()


class TestSourceBias:
    def test_biased_source_selector_installed(self):
        result = run_scenario(ScenarioConfig(
            protocol="heap", distribution=REF_691, source_bias=2.0, **FAST))
        from repro.membership.selector import CapabilityBiasedSelector
        assert isinstance(result.nodes[0].selector, CapabilityBiasedSelector)
        # Receivers keep uniform selection.
        from repro.membership.selector import UniformSelector
        assert isinstance(result.nodes[1].selector, UniformSelector)
