"""Tests for playback analysis (lag/jitter metrics)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streaming.packets import StreamConfig
from repro.streaming.player import OFFLINE, PlaybackAnalyzer
from repro.streaming.receiver import ReceiverLog

# A small window geometry keeps the arithmetic followable:
# 4 source + 2 FEC per window, need 4 of 6 to decode.
CONFIG = StreamConfig(source_packets_per_window=4, fec_packets_per_window=2,
                      packet_size_bytes=100, effective_rate_bps=80_000.0)
INTERVAL = CONFIG.packet_interval  # 0.01 s


def publish_time(packet_id):
    return packet_id * INTERVAL


def analyzer():
    return PlaybackAnalyzer(CONFIG, publish_time)


def log_with_delays(delays):
    """Build a log where packet i arrives `delays[i]` after publish (None = lost)."""
    log = ReceiverLog(0)
    for packet_id, delay in enumerate(delays):
        if delay is not None:
            log.record(packet_id, publish_time(packet_id) + delay)
    return log


class TestWindowPlayback:
    def test_all_on_time_decodes(self):
        log = log_with_delays([0.1] * 6)
        wp = analyzer().window_playback(log, 0, lag=0.2)
        assert wp.decodable
        assert wp.on_time_source == 4
        assert wp.on_time_fec == 2
        assert wp.delivery_ratio == 1.0

    def test_late_packets_excluded_at_small_lag(self):
        log = log_with_delays([0.1, 0.1, 0.1, 5.0, 0.1, 0.1])
        wp = analyzer().window_playback(log, 0, lag=1.0)
        assert wp.on_time_source == 3
        assert wp.on_time_fec == 2
        assert wp.decodable  # 5 of 6 >= 4

    def test_jittered_window_viewable_is_source_only(self):
        # Only 2 source + 1 FEC on time -> 3 < 4, jittered.
        log = log_with_delays([0.1, 0.1, None, None, 0.1, None])
        wp = analyzer().window_playback(log, 0, lag=1.0)
        assert wp.jittered
        assert wp.viewable_source_packets == 2
        assert wp.delivery_ratio == 0.5

    def test_exact_lag_boundary_counts_as_on_time(self):
        log = log_with_delays([1.0, None, None, None, None, None])
        wp = analyzer().window_playback(log, 0, lag=1.0)
        assert wp.on_time_source == 1


class TestAggregateMetrics:
    def test_jitter_fraction(self):
        # Window 0 complete, window 1 empty.
        delays = [0.1] * 6 + [None] * 6
        log = log_with_delays(delays)
        a = analyzer()
        assert a.jitter_fraction(log, [0, 1], lag=1.0) == 0.5
        assert a.jitter_free_fraction(log, [0, 1], lag=1.0) == 0.5

    def test_jitter_fraction_empty_windows_list(self):
        assert analyzer().jitter_fraction(ReceiverLog(0), [], 1.0) == 0.0

    def test_mean_jittered_delivery_ratio(self):
        # Window 0 decodes; window 1 gets 2 of 4 source packets (ratio 0.5);
        # window 2 gets 1 source packet (ratio 0.25).
        delays = ([0.1] * 6
                  + [0.1, 0.1, None, None, None, None]
                  + [0.1, None, None, None, None, None])
        log = log_with_delays(delays)
        ratio = analyzer().mean_jittered_delivery_ratio(log, [0, 1, 2], lag=1.0)
        assert ratio == pytest.approx((0.5 + 0.25) / 2)

    def test_mean_jittered_delivery_ratio_no_jitter(self):
        log = log_with_delays([0.1] * 6)
        assert analyzer().mean_jittered_delivery_ratio(log, [0], lag=1.0) == 1.0


class TestInverseQueries:
    def test_window_required_lag_is_kth_delay(self):
        # Delays 0.1..0.6; decoding needs 4 packets -> lag = 4th smallest = 0.4.
        log = log_with_delays([0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
        assert analyzer().window_required_lag(log, 0) == pytest.approx(0.4)

    def test_window_required_lag_undecodable(self):
        log = log_with_delays([0.1, 0.1, 0.1, None, None, None])
        assert analyzer().window_required_lag(log, 0) == OFFLINE

    def test_min_lag_jitter_free_takes_worst_window(self):
        delays = [0.1] * 6 + [2.0] * 6
        log = log_with_delays(delays)
        assert analyzer().min_lag_jitter_free(log, [0, 1]) == pytest.approx(2.0)

    def test_min_lag_jitter_free_empty(self):
        assert analyzer().min_lag_jitter_free(ReceiverLog(0), []) == 0.0

    def test_min_lag_max_jitter_allows_worst_windows(self):
        # 10 windows, 9 decodable at 0.5, one only offline.
        delays = []
        for w in range(9):
            delays += [0.5] * 6
        delays += [None] * 6
        log = log_with_delays(delays)
        a = analyzer()
        assert a.min_lag_jitter_free(log, range(10)) == OFFLINE
        assert a.min_lag_max_jitter(log, range(10), max_jitter=0.1) == pytest.approx(0.5)

    def test_min_lag_max_jitter_zero_equals_jitter_free(self):
        delays = [0.3] * 6 + [0.9] * 6
        log = log_with_delays(delays)
        a = analyzer()
        assert (a.min_lag_max_jitter(log, [0, 1], 0.0)
                == a.min_lag_jitter_free(log, [0, 1]))

    def test_min_lag_max_jitter_validates_range(self):
        with pytest.raises(ValueError):
            analyzer().min_lag_max_jitter(ReceiverLog(0), [0], 1.5)

    def test_min_lag_delivery_ratio(self):
        # 12 packets total, delays increasing; 99% of 12 -> 12 packets needed.
        delays = [0.1 * (i + 1) for i in range(12)]
        log = log_with_delays(delays)
        lag = analyzer().min_lag_delivery_ratio(log, total_packets=12, ratio=0.99)
        assert lag == pytest.approx(1.2)
        # Half the stream suffices at lag 0.6.
        assert analyzer().min_lag_delivery_ratio(log, 12, 0.5) == pytest.approx(0.6)

    def test_min_lag_delivery_ratio_insufficient(self):
        log = log_with_delays([0.1, 0.1, None, None, None, None])
        assert analyzer().min_lag_delivery_ratio(log, 6, 0.99) == OFFLINE

    def test_min_lag_delivery_ratio_validates(self):
        with pytest.raises(ValueError):
            analyzer().min_lag_delivery_ratio(ReceiverLog(0), 10, 0.0)


@given(st.lists(st.one_of(st.none(), st.floats(min_value=0.0, max_value=10.0)),
                min_size=6, max_size=6))
def test_property_jitter_monotone_in_lag(delays):
    """Increasing the lag never makes a decodable window jittered."""
    log = log_with_delays(delays)
    a = analyzer()
    small = a.window_playback(log, 0, lag=1.0)
    large = a.window_playback(log, 0, lag=5.0)
    assert large.on_time_total >= small.on_time_total
    if small.decodable:
        assert large.decodable


@given(st.lists(st.one_of(st.none(), st.floats(min_value=0.0, max_value=10.0)),
                min_size=6, max_size=6))
def test_property_required_lag_consistent_with_playback(delays):
    """At exactly the required lag the window decodes; just below, it does not."""
    log = log_with_delays(delays)
    a = analyzer()
    required = a.window_required_lag(log, 0)
    if required is OFFLINE or math.isinf(required):
        assert not a.window_playback(log, 0, lag=1e9).decodable
    else:
        assert a.window_playback(log, 0, lag=required).decodable
        if required > 1e-9:
            assert not a.window_playback(log, 0, lag=required * 0.999 - 1e-9).decodable
