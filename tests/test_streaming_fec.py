"""Unit and property-based tests for the FEC erasure model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.streaming.fec import FecCodec, WindowState
from repro.streaming.packets import StreamConfig


def small_codec():
    return FecCodec(StreamConfig(source_packets_per_window=5, fec_packets_per_window=2))


def test_full_window_decodes():
    codec = FecCodec()
    state = codec.window_state(0, range(110))
    assert state.decodable
    assert state.received_source == 101
    assert state.received_fec == 9
    assert state.delivery_ratio == 1.0


def test_exactly_101_any_mix_decodes():
    codec = FecCodec()
    # 92 source + 9 FEC = 101 -> decodable, all 101 source viewable.
    ids = list(range(92)) + list(range(101, 110))
    state = codec.window_state(0, ids)
    assert state.received_total == 101
    assert state.decodable
    assert state.viewable_source_packets == 101


def test_100_packets_is_jittered_but_systematic():
    codec = FecCodec()
    state = codec.window_state(0, range(100))  # 100 source packets
    assert not state.decodable
    assert state.viewable_source_packets == 100
    assert state.delivery_ratio == 100 / 101


def test_fec_only_useless_when_undecodable():
    codec = FecCodec()
    state = codec.window_state(0, range(101, 110))  # only the 9 FEC packets
    assert not state.decodable
    assert state.viewable_source_packets == 0
    assert state.delivery_ratio == 0.0


def test_packets_of_other_windows_ignored():
    codec = FecCodec()
    state = codec.window_state(1, list(range(0, 110)) + list(range(110, 115)))
    assert state.received_total == 5


def test_duplicates_ignored():
    codec = FecCodec()
    state = codec.window_state(0, [0, 0, 0, 1])
    assert state.received_total == 2


def test_is_decodable_threshold():
    codec = FecCodec()
    assert not codec.is_decodable(100)
    assert codec.is_decodable(101)
    assert codec.is_decodable(110)


def test_window_packet_ids():
    codec = FecCodec()
    ids = codec.window_packet_ids(2)
    assert ids.start == 220
    assert ids.stop == 330


@given(st.sets(st.integers(min_value=0, max_value=6)))
def test_property_decodable_iff_enough_packets(received):
    """Window decodes iff at least `source_per_window` distinct packets arrive."""
    codec = small_codec()
    state = codec.window_state(0, received)
    assert state.decodable == (len(received) >= 5)


@given(st.sets(st.integers(min_value=0, max_value=6)))
def test_property_viewable_never_exceeds_window_and_monotone(received):
    codec = small_codec()
    state = codec.window_state(0, received)
    assert 0 <= state.viewable_source_packets <= 5
    # Adding a packet never reduces the viewable count.
    for extra in set(range(7)) - received:
        bigger = codec.window_state(0, received | {extra})
        assert bigger.viewable_source_packets >= state.viewable_source_packets


@given(st.sets(st.integers(min_value=0, max_value=6)))
def test_property_decodable_implies_full_delivery(received):
    codec = small_codec()
    state = codec.window_state(0, received)
    if state.decodable:
        assert state.delivery_ratio == 1.0
    else:
        source_received = len([p for p in received if p < 5])
        assert state.delivery_ratio == source_received / 5


@given(st.lists(st.integers(min_value=0, max_value=329), max_size=60))
def test_property_counts_partition_by_window(packet_ids):
    """Across windows, source+fec counts equal the distinct ids in that window."""
    codec = FecCodec()
    for window_id in range(3):
        state = codec.window_state(window_id, packet_ids)
        distinct = {p for p in packet_ids
                    if codec.config.window_of(p) == window_id}
        assert state.received_total == len(distinct)


def test_window_state_dataclass_repr():
    state = WindowState(window_id=1, received_source=3, received_fec=1,
                        needed=5, source_per_window=5)
    assert "window_id=1" in repr(state)
    assert state.received_total == 4
