"""Tests for the stream source and receiver log."""

import pytest

from repro.sim.engine import Simulator
from repro.streaming.packets import StreamConfig
from repro.streaming.receiver import ReceiverLog
from repro.streaming.source import StreamSource


class TestStreamSource:
    def test_publishes_at_configured_rate(self):
        sim = Simulator()
        config = StreamConfig()
        published = []
        source = StreamSource(sim, config, published.append, total_packets=20)
        source.start()
        sim.run()
        assert len(published) == 20
        assert source.finished
        gaps = [published[i + 1].publish_time - published[i].publish_time
                for i in range(19)]
        assert all(g == pytest.approx(config.packet_interval) for g in gaps)

    def test_packet_ids_sequential_and_windows_assigned(self):
        sim = Simulator()
        config = StreamConfig(source_packets_per_window=3, fec_packets_per_window=1)
        published = []
        source = StreamSource(sim, config, published.append, total_packets=8)
        source.start()
        sim.run()
        assert [p.packet_id for p in published] == list(range(8))
        assert [p.window_id for p in published] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert [p.is_fec for p in published] == [False, False, False, True] * 2

    def test_start_delay(self):
        sim = Simulator()
        published = []
        source = StreamSource(sim, StreamConfig(), published.append, total_packets=1)
        source.start(delay=5.0)
        sim.run()
        assert published[0].publish_time == 5.0

    def test_stop_halts_emission(self):
        sim = Simulator()
        published = []
        source = StreamSource(sim, StreamConfig(), published.append, total_packets=1000)
        source.start()
        sim.schedule(0.1, source.stop)
        sim.run()
        assert 0 < len(published) < 1000

    def test_unbounded_source_runs_until_horizon(self):
        sim = Simulator()
        published = []
        source = StreamSource(sim, StreamConfig(), published.append)
        source.start()
        sim.run(until=1.0)
        source.stop()
        expected = int(1.0 / StreamConfig().packet_interval) + 1
        assert len(published) == expected

    def test_double_start_rejected(self):
        sim = Simulator()
        source = StreamSource(sim, StreamConfig(), lambda p: None, total_packets=5)
        source.start()
        with pytest.raises(RuntimeError):
            source.start()

    def test_packet_size_follows_config(self):
        sim = Simulator()
        config = StreamConfig(packet_size_bytes=500)
        published = []
        source = StreamSource(sim, config, published.append, total_packets=1)
        source.start()
        sim.run()
        assert published[0].size_bytes == 500


class TestReceiverLog:
    def test_records_first_delivery(self):
        log = ReceiverLog(7)
        assert log.record(0, 1.5)
        assert log.delivery_time(0) == 1.5
        assert log.has(0)
        assert len(log) == 1

    def test_duplicate_detection(self):
        log = ReceiverLog(7)
        log.record(0, 1.0)
        assert not log.record(0, 2.0)
        assert log.duplicates == 1
        assert log.delivery_time(0) == 1.0  # first delivery wins

    def test_missing_packet(self):
        log = ReceiverLog(7)
        assert log.delivery_time(3) is None
        assert not log.has(3)

    def test_delivery_ratio(self):
        log = ReceiverLog(7)
        for i in range(50):
            log.record(i, float(i))
        assert log.delivery_ratio(100) == 0.5
        assert log.delivery_ratio(0) == 1.0

    def test_items_iteration(self):
        log = ReceiverLog(7)
        log.record(3, 1.0)
        log.record(5, 2.0)
        assert dict(log.items()) == {3: 1.0, 5: 2.0}
