"""End-to-end tests of the experiment service control plane.

The contract under test: a job submitted over HTTP is the *same
experiment* as the equivalent CLI invocation — identical result render,
identical CSV artifact (the measured ``wall_time_s`` column excepted) —
and the service adds job semantics on top: monotonic SSE progress,
cooperative cancel, and resume-from-checkpoint when the same spec is
resubmitted.  Every test binds an ephemeral port (``port=0``) so the
suite is hermetic.
"""

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.service import ExperimentService, JobManager
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobSpec, QueueFullError, SpecQuarantined

#: The smoke grid: 1 protocol x 2 seeds of a tiny scenario.
SWEEP = {"protocols": ["heap"], "nodes": 10, "seconds": 2.0, "drain": 4.0,
         "num_seeds": 2}
SWEEP_ARGV = ["sweep", "--protocols", "heap", "--nodes", "10",
              "--seconds", "2", "--drain", "4", "--num-seeds", "2",
              "--quiet"]

#: A 4-cell grid for the cancel/resume scenario.
RESUME = {"protocols": ["heap", "standard"], "nodes": 10, "seconds": 2.0,
          "drain": 4.0, "num_seeds": 2}
RESUME_ARGV = ["sweep", "--protocols", "heap,standard", "--nodes", "10",
               "--seconds", "2", "--drain", "4", "--num-seeds", "2",
               "--quiet"]


@pytest.fixture()
def service(tmp_path):
    manager = JobManager(checkpoint_dir=str(tmp_path / "service"),
                         executors=1)
    svc = ExperimentService(manager, port=0)
    svc.serve_background()
    try:
        yield svc
    finally:
        svc.close()


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout=60.0)


def strip_wall_time(csv_text: str):
    """CSV rows without the measured ``wall_time_s`` (last) column."""
    rows = csv_text.strip().splitlines()
    assert rows[0].endswith(",wall_time_s")
    return [row.rsplit(",", 1)[0] for row in rows]


class TestSubmitPollResult:
    def test_http_sweep_matches_cli_byte_for_byte(self, client, tmp_path,
                                                  capsys):
        job_id = client.submit("sweep", SWEEP)["job"]["id"]
        job = client.wait(job_id, timeout=300)
        assert job["state"] == "done"
        assert job["cells"] == {"done": 2, "total": 2, "executed": 2,
                                "restored": 0}
        result = client.result(job_id)["result"]

        cli_csv = tmp_path / "cli.csv"
        assert main(SWEEP_ARGV + ["--csv", str(cli_csv)]) == 0
        cli_render = capsys.readouterr().out
        assert result["render"] + "\n" == cli_render
        assert (strip_wall_time(client.csv(job_id))
                == strip_wall_time(cli_csv.read_text()))

    def test_result_json_structure(self, client):
        job_id = client.submit("sweep", SWEEP)["job"]["id"]
        client.wait(job_id, timeout=300)
        result = client.result(job_id)["result"]
        assert result["scenarios"] == ["heap"]
        assert result["seeds"] == [1, 2]
        assert len(result["records"]) == 2
        assert "delivery" in result["metric_names"]
        # Measured values live in their own clearly-flagged block.
        assert set(result["timing"]) == {"wall_time", "jobs"}

    def test_render_job_matches_cli(self, client, capsys):
        job_id = client.submit("table", {"id": "table1"})["job"]["id"]
        job = client.wait(job_id, timeout=300)
        assert job["state"] == "done"
        result = client.result(job_id)["result"]
        assert main(["table", "table1"]) == 0
        assert result["render"] + "\n" == capsys.readouterr().out


class TestSseStream:
    def test_progress_is_monotonic_and_ends_terminal(self, client):
        job_id = client.submit("sweep", SWEEP)["job"]["id"]
        events = list(client.events(job_id))
        assert events, "stream must replay at least the queued event"
        dones = [e["done"] for e in events if e["type"] == "progress"]
        assert dones == sorted(dones) == [1, 2]
        last = events[-1]
        assert (last["type"], last["state"]) == ("state", "done")
        # seq numbers the replayed log: strictly increasing from 0.
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_progress_events_carry_throughput_and_cell_identity(self, client):
        job_id = client.submit("sweep", SWEEP)["job"]["id"]
        progress = [e for e in client.events(job_id)
                    if e["type"] == "progress"]
        for event in progress:
            assert event["job"] == job_id
            assert event["cell_key"]
            assert event["events_executed"] > 0
            assert event["events_per_sec"] > 0
            assert event["scenario_name"] == "heap"
            assert event["restored"] is False


class TestCancelResume:
    def test_cancel_then_resubmit_resumes_from_checkpoint(self, client,
                                                          tmp_path, capsys):
        job_id = client.submit("sweep", RESUME)["job"]["id"]
        # Cancel as soon as the first cell lands; the executor notices at
        # the next finished cell, so at least one — but not all — cells
        # are checkpointed.
        for event in client.events(job_id):
            if event["type"] == "progress":
                client.cancel(job_id)
        first = client.wait(job_id, timeout=300)
        assert first["state"] == "cancelled"
        assert 1 <= first["cells"]["executed"] < first["cells"]["total"]

        resubmitted = client.submit("sweep", RESUME)
        assert resubmitted["created"] is True  # a new job, same fingerprint
        second_id = resubmitted["job"]["id"]
        assert second_id != job_id
        second = client.wait(second_id, timeout=300)
        assert second["state"] == "done"
        # The resume accounting: cancelled work was not redone.
        assert second["cells"]["restored"] >= 1
        assert second["cells"]["executed"] < second["cells"]["total"]
        assert (second["cells"]["executed"] + second["cells"]["restored"]
                == second["cells"]["total"])

        # Identical final summary to an uninterrupted CLI run.
        result = client.result(second_id)["result"]
        assert main(RESUME_ARGV) == 0
        assert result["render"] + "\n" == capsys.readouterr().out

    def test_cancel_queued_job_is_immediate(self, client):
        # executors=1: the first job occupies the executor, the second
        # waits in the queue and must cancel without ever running.
        running = client.submit("sweep", RESUME)["job"]["id"]
        queued = client.submit("sweep", SWEEP)["job"]["id"]
        cancelled = client.cancel(queued)
        assert cancelled["state"] == "cancelled"
        assert client.job(queued)["started_at"] is None
        client.cancel(running)
        client.wait(running, timeout=300)


class TestCoalescing:
    def test_identical_active_spec_joins_existing_job(self, client):
        first = client.submit("sweep", RESUME)
        # Same spec while queued/running: no second execution.
        second = client.submit("sweep", RESUME)
        assert second["created"] is False
        assert second["job"]["id"] == first["job"]["id"]
        # A different spec is its own job.
        other = client.submit("sweep", SWEEP)
        assert other["job"]["id"] != first["job"]["id"]
        client.cancel(first["job"]["id"])
        client.wait(first["job"]["id"], timeout=300)
        client.wait(other["job"]["id"], timeout=300)


class TestCatalogEndpoint:
    def test_matches_cli_attacks_json(self, client, capsys):
        assert main(["attacks", "--list", "--format", "json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        assert client.catalog_attacks() == cli_payload

    def test_catalog_schema(self, client):
        payload = client.catalog_attacks()
        assert set(payload) == {"attacks", "victim_policies", "roles",
                                "usage"}
        names = [entry["name"] for entry in payload["attacks"]]
        assert names == sorted(names)
        assert "spam" in names and "withhold" in names
        for entry in payload["attacks"]:
            assert set(entry) == {"name", "role", "channel", "detection",
                                  "default_param", "param_doc",
                                  "requires_membership", "impl"}
            assert entry["role"] in payload["roles"]
        assert "random" in payload["victim_policies"]


class TestErrorPaths:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.job("j9999")
        assert exc.value.status == 404

    def test_result_before_done_is_409(self, client):
        # A cancelled-while-queued job is terminal but not done.
        running = client.submit("sweep", RESUME)["job"]["id"]
        queued = client.submit("sweep", SWEEP)["job"]["id"]
        client.cancel(queued)
        with pytest.raises(ServiceError) as exc:
            client.result(queued)
        assert exc.value.status == 409
        client.cancel(running)
        client.wait(running, timeout=300)

    def test_invalid_specs_are_400(self, client):
        for kind, params in (
                ("frobnicate", {}),
                ("sweep", {"protocols": ["no-such-protocol"]}),
                ("sweep", {"frobnicate": 1}),
                ("run", {"num_seeds": 3}),  # a run is a single cell
                ("figure", {"id": "no-such-figure"}),
                ("table", {"id": "table1", "scale": "no-such-scale"}),
        ):
            with pytest.raises(ServiceError) as exc:
                client.submit(kind, params)
            assert exc.value.status == 400, (kind, params)

    def test_health_endpoint(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"queued", "running", "done",
                                       "failed", "cancelled"}


class TestJobSpec:
    """Unit coverage of the spec/fingerprint layer (no HTTP)."""

    def test_run_and_equivalent_sweep_share_a_fingerprint(self):
        run = JobSpec("run", {"protocols": ["heap"], "nodes": 10,
                              "seconds": 2.0, "drain": 4.0})
        sweep = JobSpec("sweep", {"protocols": ["heap"], "nodes": 10,
                                  "seconds": 2.0, "drain": 4.0,
                                  "num_seeds": 1})
        assert run.fingerprint() == sweep.fingerprint()

    def test_execution_knobs_do_not_change_the_fingerprint(self):
        a = JobSpec("sweep", {"protocols": "heap", "nodes": 10,
                              "seconds": 2.0, "drain": 4.0})
        b = JobSpec("sweep", {"protocols": ["heap"], "nodes": 10,
                              "seconds": 2.0, "drain": 4.0})
        assert a.fingerprint() == b.fingerprint()  # list/CSV normalize
        c = JobSpec("sweep", {"protocols": ["heap"], "nodes": 20,
                              "seconds": 2.0, "drain": 4.0})
        assert c.fingerprint() != a.fingerprint()

    def test_unknown_parameters_raise(self):
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            JobSpec("sweep", {"frobnicate": 1}).normalized()
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec("frobnicate", {}).normalized()
        with pytest.raises(ValueError, match="unknown figure id"):
            JobSpec("figure", {"id": "nope"}).normalized()


class TestQueueBounds:
    def test_full_queue_rejects_with_queue_full_error(self, tmp_path):
        manager = JobManager(checkpoint_dir=str(tmp_path / "svc"),
                             executors=1, queue_size=1)
        try:
            first, _ = manager.submit("sweep", RESUME)
            # Wait until the executor has dequeued the first job, so the
            # queue slot is deterministically free for the second.
            for _ in range(600):
                if first.state != "queued":
                    break
                manager.events_since(first, 1, timeout=0.1)
            assert first.state == "running"
            manager.submit("sweep", SWEEP)  # fills the single slot
            with pytest.raises(QueueFullError):
                manager.submit("sweep", dict(SWEEP, nodes=12))
        finally:
            manager.shutdown(cancel_running=True)


class TestArtifactIndex:
    def test_index_lists_csv_after_completion(self, client):
        job_id = client.submit("sweep", SWEEP)["job"]["id"]
        assert client.wait(job_id, timeout=300)["state"] == "done"
        index = client.artifacts(job_id)
        assert index["job"] == job_id and index["state"] == "done"
        (entry,) = index["artifacts"]
        assert entry["name"] == "csv"
        assert entry["content_type"] == "text/csv"
        assert entry["bytes"] > 0
        # The advertised path fetches the artifact, and the size is honest.
        csv_text = client.csv(job_id)
        assert entry["path"] == f"/v1/jobs/{job_id}/artifacts/csv"
        assert len(csv_text.encode("utf-8")) == entry["bytes"]

    def test_index_empty_before_artifacts_exist(self, client):
        running = client.submit("sweep", RESUME)["job"]["id"]
        queued = client.submit("sweep", SWEEP)["job"]["id"]
        try:
            index = client.artifacts(queued)
            assert index["artifacts"] == []
        finally:
            client.cancel(queued)
            client.cancel(running)
            client.wait(running, timeout=300)


class TestSupervision:
    """Self-healing job plane: watchdog, TTL eviction, quarantine."""

    def _wait_state(self, job, states, timeout=30.0):
        deadline = time.monotonic() + timeout
        while job.state not in states:
            assert time.monotonic() < deadline, (job.state, states)
            time.sleep(0.05)

    def test_watchdog_fails_wedged_job_and_staffs_replacement(self, tmp_path):
        manager = JobManager(checkpoint_dir=str(tmp_path / "svc"),
                             executors=1, job_timeout=0.6,
                             watchdog_interval=0.1)
        try:
            wedged, _ = manager.submit(
                "sweep", dict(SWEEP, faults="stall-cell=0:30"))
            self._wait_state(wedged, ("failed",))
            assert "watchdog" in wedged.error
            assert manager.watchdog_timeouts == 1
            # The wedged executor was written off; a replacement keeps
            # the manager serving new jobs.
            healthy, created = manager.submit("sweep", SWEEP)
            assert created
            self._wait_state(healthy, ("done",), timeout=60.0)
        finally:
            manager.shutdown(cancel_running=True)

    def test_ttl_evicts_terminal_jobs(self, tmp_path):
        manager = JobManager(checkpoint_dir=str(tmp_path / "svc"),
                             executors=1, job_ttl=0.3,
                             watchdog_interval=0.05)
        svc = ExperimentService(manager, port=0)
        svc.serve_background()
        client = ServiceClient(svc.url, timeout=60.0)
        try:
            job_id = client.submit("sweep", SWEEP)["job"]["id"]
            client.wait(job_id, timeout=300)
            csv_path = manager.get(job_id).csv_path
            deadline = time.monotonic() + 30.0
            while True:
                try:
                    client.job(job_id)
                except ServiceError as exc:
                    assert exc.status == 404
                    assert "was evicted" in exc.message
                    assert "--job-ttl" in exc.message
                    break
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert not os.path.exists(csv_path)  # artifact went with it
            assert client.health()["evicted"] == 1
        finally:
            svc.close()

    def test_crash_looping_spec_quarantined_with_retry_after(self, tmp_path):
        manager = JobManager(checkpoint_dir=str(tmp_path / "svc"),
                             executors=1, quarantine_after=1,
                             quarantine_base=60.0)
        svc = ExperimentService(manager, port=0)
        svc.serve_background()
        client = ServiceClient(svc.url, timeout=60.0)
        # crash-cell faults need a worker pool; the service grid is
        # serial, so the job fails deterministically at submit-to-run.
        poison = dict(SWEEP, faults="crash-cell=0")
        try:
            job_id = client.submit("sweep", poison)["job"]["id"]
            assert client.wait(job_id, timeout=300)["state"] == "failed"
            assert client.health()["quarantined"] == 1
            # Manager level: structured exception.
            with pytest.raises(SpecQuarantined) as exc:
                manager.submit("sweep", poison)
            assert exc.value.retry_after > 0
            assert exc.value.failures == 1
            # HTTP level: 429 plus a Retry-After header.
            request = urllib.request.Request(
                svc.url + "/v1/jobs",
                data=json.dumps({"kind": "sweep",
                                 "params": poison}).encode("utf-8"),
                headers={"Content-Type": "application/json"}, method="POST")
            with pytest.raises(urllib.error.HTTPError) as http_exc:
                with urllib.request.urlopen(request, timeout=30.0):
                    pass
            assert http_exc.value.code == 429
            assert int(http_exc.value.headers["Retry-After"]) >= 1
            body = json.loads(http_exc.value.read().decode("utf-8"))
            assert "quarantined" in body["error"]
            assert body["retry_after"] >= 1
        finally:
            svc.close()

    def test_quarantine_is_per_fingerprint_and_clears_on_success(
            self, tmp_path):
        manager = JobManager(checkpoint_dir=str(tmp_path / "svc"),
                             executors=1, quarantine_after=1,
                             quarantine_base=60.0)
        try:
            # The faulted and clean specs share a fingerprint (faults are
            # an execution circumstance), so the quarantine would block
            # the clean resubmission too — until a success clears it.
            poison, _ = manager.submit(
                "sweep", dict(SWEEP, faults="crash-cell=0"))
            self._wait_state(poison, ("failed",))
            with pytest.raises(SpecQuarantined):
                manager.submit("sweep", SWEEP)
            # A *different* spec is unaffected.
            other, _ = manager.submit("sweep", dict(SWEEP, nodes=12))
            self._wait_state(other, ("done",), timeout=60.0)
        finally:
            manager.shutdown(cancel_running=True)


class TestSseDisconnects:
    def test_client_disconnect_is_counted_not_crashed(self, service, client):
        job_id = client.submit("sweep", RESUME)["job"]["id"]
        try:
            # Open the SSE stream raw, read one chunk, hang up mid-job.
            stream = urllib.request.urlopen(
                f"{service.url}/v1/jobs/{job_id}/events", timeout=30.0)
            stream.readline()
            stream.close()
            deadline = time.monotonic() + 30.0
            while client.health()["sse_disconnects"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.1)
        finally:
            client.cancel(job_id)
            client.wait(job_id, timeout=300)
        # The stream thread died quietly; the service still answers.
        assert client.health()["status"] == "ok"
