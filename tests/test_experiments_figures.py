"""Harness tests: figure/table definitions render and carry sane data.

Run at the quick scale — these validate structure and internal
consistency, not the paper's numbers (the benches assert those shapes
at the default/full scales).
"""

import pytest

from repro.experiments import scales
from repro.experiments.figures import (
    fig1_unconstrained,
    fig4_bandwidth_usage,
    fig5_quality_ref691,
    fig7_jitter_cdf,
    fig10_churn,
)
from repro.experiments.scales import QUICK, Scale, cached_run, clear_cache, scenario_at
from repro.experiments.tables import (
    table1_distributions,
    table3_jitter_free_nodes,
)
from repro.workloads.distributions import REF_691

TINY = Scale("tiny", 30, 6.0, 15.0)


@pytest.fixture(autouse=True, scope="module")
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestScales:
    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert scales.current_scale() is QUICK
        monkeypatch.setenv("REPRO_FULL", "1")
        assert scales.current_scale().name == "full"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            scales.current_scale()

    def test_scenario_at_applies_overrides(self):
        config = scenario_at(TINY, protocol="standard", seed=9)
        assert config.n_nodes == 30
        assert config.seed == 9
        assert config.protocol == "standard"

    def test_cached_run_reuses_result(self):
        config = scenario_at(TINY, protocol="heap", distribution=REF_691)
        first = cached_run(config)
        second = cached_run(config)
        assert first is second

    def test_cache_distinguishes_configs(self):
        a = cached_run(scenario_at(TINY, protocol="heap", distribution=REF_691))
        b = cached_run(scenario_at(TINY, protocol="standard", distribution=REF_691))
        assert a is not b


class TestFigureDefinitions:
    def test_table1_static(self):
        table = table1_distributions()
        text = table.render()
        assert "ref-691" in text and "CSR" in text
        assert len(table.rows) == 3

    def test_fig1_structure(self):
        fig = fig1_unconstrained(TINY)
        assert "Fig 1" in fig.render()
        assert 0.5 in fig.extra["percentiles"]
        assert len(fig.extra["cdf"]) == TINY.n_nodes - 1

    def test_fig4_covers_both_panels_and_protocols(self):
        fig = fig4_bandwidth_usage(TINY)
        assert set(fig.extra["usage"]) == {
            ("4a", "standard"), ("4a", "heap"),
            ("4b", "standard"), ("4b", "heap")}

    def test_fig5_data_by_protocol_and_class(self):
        fig = fig5_quality_ref691(TINY)
        data = fig.extra["data"]
        assert set(data) == {"standard", "heap"}
        assert set(data["heap"]) == {"256kbps", "768kbps", "2Mbps"}

    def test_fig7_has_four_series(self):
        fig = fig7_jitter_cdf(TINY)
        assert len(fig.extra["cdfs"]) == 4
        assert len(fig.rows) == 4

    def test_fig10_churn_series(self):
        fig = fig10_churn(TINY, fraction=0.2)
        series = fig.extra["series"]
        assert set(series) == {"heap - 12s lag", "standard - 20s lag",
                               "standard - 30s lag"}
        for points in series.values():
            assert all(0.0 <= frac <= 100.0 for _, _, frac in points)

    def test_table3_lags_follow_paper(self):
        table = table3_jitter_free_nodes(TINY)
        text = table.render()
        assert "ms-691 (20s lag)" in text
        assert "ref-691 (10s lag)" in text
