"""Tests for the kind-based demultiplexer."""

import pytest

from repro.net.demux import Demux


class FakeEnvelope:
    def __init__(self, kind):
        self.payload = type("P", (), {"kind": kind})()


def test_routes_by_kind():
    demux = Demux()
    seen = []
    demux.register("a", lambda env: seen.append(("a", env)))
    demux.register("b", lambda env: seen.append(("b", env)))
    demux.on_message(FakeEnvelope("b"))
    assert [tag for tag, _ in seen] == ["b"]


def test_unrouted_counted_not_raised():
    demux = Demux()
    demux.on_message(FakeEnvelope("mystery"))
    assert demux.unrouted == 1


def test_duplicate_registration_rejected():
    demux = Demux()
    demux.register("a", lambda env: None)
    with pytest.raises(ValueError):
        demux.register("a", lambda env: None)
