"""Tests for the kind-based demultiplexer."""

import pytest

from repro.net.demux import Demux
from repro.net.message import intern_kind


class FakeEnvelope:
    def __init__(self, kind):
        self.payload = type("P", (), {
            "kind": kind,
            "kind_id": intern_kind(kind, register=True)})()


def test_routes_by_kind():
    demux = Demux()
    seen = []
    for name in ("a", "b"):
        intern_kind(name, register=True)
    demux.register("a", lambda env: seen.append(("a", env)))
    demux.register("b", lambda env: seen.append(("b", env)))
    demux.on_message(FakeEnvelope("b"))
    assert [tag for tag, _ in seen] == ["b"]


def test_routes_by_kind_id():
    demux = Demux()
    seen = []
    demux.register(intern_kind("c", register=True),
                   lambda env: seen.append(env))
    demux.on_message(FakeEnvelope("c"))
    assert len(seen) == 1


def test_unrouted_counted_not_raised():
    demux = Demux()
    demux.on_message(FakeEnvelope("mystery"))
    assert demux.unrouted == 1


def test_register_unknown_kind_name_raises():
    demux = Demux()
    with pytest.raises(KeyError, match="unknown payload kind"):
        demux.register("never-registered-kind", lambda env: None)


def test_duplicate_registration_rejected():
    demux = Demux()
    intern_kind("a", register=True)
    demux.register("a", lambda env: None)
    with pytest.raises(ValueError):
        demux.register("a", lambda env: None)


def test_dispatch_table_is_live_and_network_routes_through_it():
    """An attached Demux is dispatched by the fabric via its table —
    registered kinds bypass on_message; unrouted ones still count."""
    from repro.net.latency import ConstantLatency
    from repro.net.network import Network
    from repro.sim.engine import Simulator

    class P:
        def __init__(self, kind):
            self.kind = kind
            self.kind_id = intern_kind(kind, register=True)

        def wire_size(self):
            return 10

    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.0))
    demux = Demux()
    seen = []
    net.attach(1, Demux(), 1e9)
    net.attach(2, demux, 1e9)
    # Register *after* attach: the captured table reference is live.
    intern_kind("routed-kind", register=True)
    demux.register("routed-kind", seen.append)
    net.send(1, 2, P("routed-kind"))
    net.send(1, 2, P("unrouted-kind"))
    sim.run()
    assert len(seen) == 1
    assert demux.unrouted == 1
