"""Property-based end-to-end tests of protocol invariants.

Hypothesis drives small randomized clusters; invariants must hold for
*every* capability assignment, seed, and protocol:

* no node ever delivers a payload twice (three-phase guarantee);
* infect-and-die: a node proposes a given id in at most one round;
* serve fan-in of one per (node, packet) in loss-free runs;
* HEAP's population-average fanout tracks the configured base;
* the delivery log is consistent with the packet store.
"""

import dataclasses
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import GossipConfig
from repro.core.heap import HeapGossipNode
from repro.core.standard import StandardGossipNode
from repro.membership.directory import MembershipDirectory
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.streaming.packets import StreamPacket

FAST_CONFIG = GossipConfig(fanout=4.0, gossip_period=0.1,
                           retransmission_period=0.5,
                           aggregation_period=0.2)

capability_lists = st.lists(
    st.sampled_from([256_000.0, 768_000.0, 2_048_000.0, 10_000_000.0]),
    min_size=6, max_size=10)

#: Assignments with no congestion (a 6-packet burst is far below any
#: uplink here) — the regime where the strict per-packet invariants of
#: the three-phase protocol hold; under congestion, retransmission may
#: legitimately duplicate serves or abandon ids (covered by the
#: retransmission ablation instead).
rich_capability_lists = st.lists(
    st.sampled_from([2_048_000.0, 5_000_000.0, 10_000_000.0]),
    min_size=6, max_size=10)


def run_cluster(node_class, capabilities, seed, packets=6,
                config=FAST_CONFIG):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    directory = MembershipDirectory(sim, random.Random(seed),
                                    mean_detection_delay=0.0)
    n = len(capabilities)
    directory.register_all(range(n))
    nodes = []
    for node_id in range(n):
        node = node_class(sim, net, node_id, directory.view_of(node_id),
                          config, random.Random(seed * 7919 + node_id),
                          capabilities[node_id])
        net.attach(node_id, node, upload_capacity_bps=capabilities[node_id])
        node.start()
        nodes.append(node)
    serve_deliveries = {}

    def observe(env):
        if env.payload.kind == "serve":
            for packet in env.payload.packets:
                key = (env.dst, packet.packet_id)
                serve_deliveries[key] = serve_deliveries.get(key, 0) + 1

    net.on_deliver = observe
    for i in range(packets):
        packet = StreamPacket(packet_id=i, window_id=0, publish_time=i * 0.02)
        sim.schedule(i * 0.02, lambda p=packet: nodes[0].publish(p))
    sim.run(until=15.0)
    return sim, net, nodes, serve_deliveries


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(capabilities=capability_lists, seed=st.integers(0, 1000))
def test_no_duplicate_delivery_any_configuration(capabilities, seed):
    _, _, nodes, _ = run_cluster(StandardGossipNode, capabilities, seed)
    for node in nodes:
        assert node.log.duplicates == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(capabilities=rich_capability_lists, seed=st.integers(0, 1000))
def test_serve_fanin_exactly_one_without_congestion(capabilities, seed):
    config = dataclasses.replace(FAST_CONFIG, retransmission=False)
    _, _, _, serve_deliveries = run_cluster(HeapGossipNode, capabilities, seed,
                                            config=config)
    assert all(count == 1 for count in serve_deliveries.values())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(capabilities=capability_lists, seed=st.integers(0, 1000))
def test_store_and_log_agree(capabilities, seed):
    _, _, nodes, _ = run_cluster(HeapGossipNode, capabilities, seed)
    for node in nodes:
        assert len(node._store) == len(node.log)
        for packet_id in node._store:
            assert node.log.has(packet_id)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(capabilities=rich_capability_lists, seed=st.integers(0, 1000))
def test_full_dissemination_at_flooding_fanout(capabilities, seed):
    """Gossip coverage is probabilistic in general, but with fanout >=
    n-1 every holder proposes to everyone: coverage becomes certain in a
    loss-free, uncongested clique."""
    config = dataclasses.replace(FAST_CONFIG, fanout=float(len(capabilities)))
    _, _, nodes, _ = run_cluster(StandardGossipNode, capabilities, seed,
                                 config=config)
    for node in nodes:
        assert len(node.log) == 6


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(capabilities=capability_lists, seed=st.integers(0, 1000))
def test_heap_average_quantized_fanout_near_base(capabilities, seed):
    """Across many rounds the population's mean *quantized* fanout stays
    near the configured base (HEAP's reliability invariant) once the
    aggregation estimate has converged."""
    import math
    sim, net, nodes, _ = run_cluster(HeapGossipNode, capabilities, seed,
                                     packets=3)
    samples = []
    for _ in range(200):
        samples.extend(node.current_fanout() for node in nodes)
    mean_fanout = sum(samples) / len(samples)
    # min_fanout flooring biases the mean upward for skewed assignments;
    # allow that slack but catch runaway adaptation.
    assert FAST_CONFIG.fanout * 0.8 <= mean_fanout <= FAST_CONFIG.fanout * 1.8
    assert all(math.isfinite(s) for s in samples)
