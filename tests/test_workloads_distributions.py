"""Tests for capability distributions (the paper's Table 1)."""

import random

import pytest

from repro.workloads.distributions import (
    KBPS,
    MS_691,
    REF_691,
    REF_724,
    UNCONSTRAINED,
    UNIFORM_691,
    BandwidthClass,
    CapabilityDistribution,
    ContinuousUniformDistribution,
    distribution_by_name,
)

STREAM_RATE = 600 * KBPS


class TestPaperDistributions:
    def test_ref691_average_and_csr(self):
        assert REF_691.average_bps() / KBPS == pytest.approx(691.2)
        assert REF_691.csr(STREAM_RATE) == pytest.approx(1.15, abs=0.01)

    def test_ref724_average_and_csr(self):
        assert REF_724.average_bps() / KBPS == pytest.approx(724.5, abs=0.1)
        assert REF_724.csr(STREAM_RATE) == pytest.approx(1.20, abs=0.01)

    def test_ms691_average_and_csr(self):
        assert MS_691.average_bps() / KBPS == pytest.approx(691.2)
        assert MS_691.csr(STREAM_RATE) == pytest.approx(1.15, abs=0.01)

    def test_ms691_skew(self):
        # Only 15% of nodes have capability above the stream rate.
        above = sum(c.fraction for c in MS_691.classes
                    if c.capacity_bps > STREAM_RATE)
        assert above == pytest.approx(0.15)

    def test_uniform_dist2_same_average_as_dist1(self):
        assert UNIFORM_691.average_bps() == pytest.approx(MS_691.average_bps())

    def test_fractions_match_table1(self):
        assert [c.fraction for c in REF_691.classes] == [0.10, 0.50, 0.40]
        assert [c.fraction for c in REF_724.classes] == [0.15, 0.39, 0.46]
        assert [c.fraction for c in MS_691.classes] == [0.05, 0.10, 0.85]

    def test_lookup_by_name(self):
        assert distribution_by_name("ref-691") is REF_691
        assert distribution_by_name("ms-691") is MS_691
        with pytest.raises(ValueError):
            distribution_by_name("nope")


class TestAssignment:
    def test_class_counts_sum_to_n(self):
        for n in (7, 100, 269, 270):
            counts = MS_691.class_counts(n)
            assert sum(counts.values()) == n

    def test_class_counts_largest_remainder(self):
        counts = MS_691.class_counts(100)
        assert counts == {"3Mbps": 5, "1Mbps": 10, "512kbps": 85}

    def test_assign_shuffles_but_preserves_counts(self):
        assignment = REF_691.assign(100, random.Random(1))
        labels = [label for label, _ in assignment]
        assert labels.count("2Mbps") == 10
        assert labels.count("768kbps") == 50
        assert labels.count("256kbps") == 40
        # Shuffled: not all 2Mbps nodes at the front.
        assert set(labels[:10]) != {"2Mbps"}

    def test_assign_deterministic_per_seed(self):
        a = REF_691.assign(50, random.Random(9))
        b = REF_691.assign(50, random.Random(9))
        assert a == b

    def test_assign_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            REF_691.class_counts(0)


class TestContinuousUniform:
    def test_assign_draws_within_range(self):
        assignment = UNIFORM_691.assign(500, random.Random(2))
        caps = [cap for _, cap in assignment]
        assert all(UNIFORM_691.low_bps <= c <= UNIFORM_691.high_bps for c in caps)
        mean = sum(caps) / len(caps)
        assert mean == pytest.approx(UNIFORM_691.average_bps(), rel=0.05)

    def test_tercile_labels(self):
        dist = ContinuousUniformDistribution("u", 0.0 + 1, 3.0)
        assert dist.tercile_label(1.1) == "low"
        assert dist.tercile_label(1.8) == "mid"
        assert dist.tercile_label(2.9) == "high"

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            ContinuousUniformDistribution("u", 10.0, 1.0)


class TestValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            CapabilityDistribution("bad", [
                BandwidthClass("a", 1000.0, 0.5),
                BandwidthClass("b", 2000.0, 0.4),
            ])

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            CapabilityDistribution("empty", [])

    def test_bandwidth_class_validation(self):
        with pytest.raises(ValueError):
            BandwidthClass("x", -5.0, 0.5)
        with pytest.raises(ValueError):
            BandwidthClass("x", 100.0, 0.0)

    def test_csr_rejects_bad_stream_rate(self):
        with pytest.raises(ValueError):
            REF_691.csr(0.0)

    def test_class_of(self):
        assert REF_691.class_of(768 * KBPS).label == "768kbps"
        assert REF_691.class_of(123.0) is None

    def test_unconstrained_is_single_class(self):
        assert len(UNCONSTRAINED.classes) == 1
        assert UNCONSTRAINED.average_bps() > 50_000 * KBPS
