"""Tests for freeriding nodes, the audit protocol, and analysis."""

import random

import pytest

from repro import ScenarioConfig, run_scenario
from repro.core.config import GossipConfig
from repro.core.messages import Request
from repro.freeriders.analysis import (
    contribution_index,
    convictions,
    detection_accuracy,
    honest_vs_freerider_contribution,
)
from repro.freeriders.detection import AuditReport, FreeriderDetector, PeerScore
from repro.freeriders.nodes import NonServingNode, UnderclaimingNode
from repro.membership.directory import MembershipDirectory
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.streaming.packets import StreamPacket


class TestPeerScore:
    def test_ratio_defaults_to_innocent(self):
        assert PeerScore().ratio() == 1.0

    def test_reporter_update_replaces(self):
        score = PeerScore()
        score.update(1, 10, 5)
        score.update(1, 20, 10)  # newer cumulative totals replace
        assert score.asked == 20
        assert score.answered == 10
        assert score.ratio() == 0.5

    def test_multiple_reporters_accumulate(self):
        score = PeerScore()
        score.update(1, 10, 10)
        score.update(2, 10, 0)
        assert score.ratio() == 0.5
        assert score.reporters == {1, 2}

    def test_reporter_cap(self):
        score = PeerScore(max_reporters=2)
        score.update(1, 1, 1)
        score.update(2, 1, 1)
        score.update(3, 100, 0)  # over cap: dropped
        assert 3 not in score.reporters
        assert score.ratio() == 1.0


class TestDetectorUnit:
    def make_detector(self):
        sim = Simulator()
        net = Network(sim)
        return FreeriderDetector(sim, net, 0, None, random.Random(1))

    def test_record_and_clamp(self):
        detector = self.make_detector()
        detector.record_request(5, 10)
        detector.record_serve(5, 12)  # duplicate serves: clamped to asked
        assert detector._local[5] == [10, 10]

    def test_merge_ignores_self(self):
        detector = self.make_detector()
        detector._merge(1, [(0, 100, 0)])  # about us: ignored
        assert detector.score_of(0) is None

    def test_suspects_need_samples_and_reporters(self):
        detector = self.make_detector()
        for reporter in (1, 2, 3):
            detector._merge(reporter, [(9, 20, 2)])
        suspects = detector.suspects(ratio_threshold=0.5, min_samples=30,
                                     min_reporters=3)
        assert suspects == {9}
        # Not enough reporters -> no conviction.
        detector2 = self.make_detector()
        detector2._merge(1, [(9, 100, 0)])
        assert detector2.suspects(min_reporters=3) == set()

    def test_honest_peer_not_suspected(self):
        detector = self.make_detector()
        for reporter in (1, 2, 3, 4):
            detector._merge(reporter, [(7, 50, 48)])
        assert detector.suspects() == set()

    def test_validation(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            FreeriderDetector(sim, net, 0, None, random.Random(1), fanout=0)

    def test_audit_report_wire_size(self):
        report = AuditReport(1, [(2, 3, 4)] * 5)
        assert report.wire_size() == 8 + 16 * 5


class TestFreeriderNodes:
    def build(self, node_class, **kwargs):
        sim = Simulator()
        net = Network(sim)
        directory = MembershipDirectory(sim, random.Random(1),
                                        mean_detection_delay=0.0)
        directory.register_all(range(5))
        node = node_class(sim, net, 1, directory.view_of(1),
                          GossipConfig(randomize_phase=False), random.Random(2),
                          1_000_000.0, **kwargs)
        net.attach(1, node, 1_000_000.0)
        return sim, net, node

    def test_underclaimer_advertises_fraction(self):
        sim, net, node = self.build(UnderclaimingNode, claim_factor=0.25)
        assert node.capability_bps == 250_000.0
        assert node.true_capability_bps == 1_000_000.0
        # The fanout policy consumes the lie.
        assert node.aggregator.average_estimate() == 250_000.0

    def test_underclaimer_validates_factor(self):
        with pytest.raises(ValueError):
            self.build(UnderclaimingNode, claim_factor=0.0)

    def test_nonserver_drops_requests(self):
        sim, net, node = self.build(NonServingNode, serve_probability=0.0)
        packet = StreamPacket(packet_id=0, window_id=0, publish_time=0.0)
        node._deliver(packet)
        node._on_request(2, Request([0]))
        assert node.serves_sent == 0
        assert node.requests_dropped == 1

    def test_nonserver_probability_one_is_honest(self):
        sim, net, node = self.build(NonServingNode, serve_probability=1.0)
        packet = StreamPacket(packet_id=0, window_id=0, publish_time=0.0)
        node._deliver(packet)
        node._on_request(2, Request([0]))
        assert node.serves_sent == 1

    def test_nonserver_validates_probability(self):
        with pytest.raises(ValueError):
            self.build(NonServingNode, serve_probability=1.5)


FAST = dict(n_nodes=45, duration=10.0, drain=20.0, seed=5)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def nonserve_result(self):
        return run_scenario(ScenarioConfig(
            protocol="heap", freerider_fraction=0.2, freerider_mode="nonserve",
            freerider_param=0.2, audit=True, **FAST))

    def test_freeriders_planted(self, nonserve_result):
        assert len(nonserve_result.freerider_ids) == round(0.2 * 44)
        assert 0 not in nonserve_result.freerider_ids

    def test_nonservers_convicted_with_high_precision(self, nonserve_result):
        convicted = convictions(nonserve_result)
        accuracy = detection_accuracy(nonserve_result, convicted)
        assert accuracy.precision >= 0.9
        assert accuracy.recall >= 0.6

    def test_contribution_gap(self, nonserve_result):
        # Retransmissions give a request-dropper repeated chances to serve,
        # so its contribution volume degrades far less than its 20% serve
        # probability suggests — the crisp signal is the ratio audit above.
        # Volume-wise we only assert the direction.
        gap = honest_vs_freerider_contribution(nonserve_result)
        assert gap["freeriders"] < gap["honest"]

    def test_underclaimers_evade_ratio_audit(self):
        result = run_scenario(ScenarioConfig(
            protocol="heap", freerider_fraction=0.2,
            freerider_mode="underclaim", freerider_param=0.1, audit=True,
            **FAST))
        convicted = convictions(result)
        accuracy = detection_accuracy(result, convicted)
        # Consistent liars: the answered/asked audit cannot see them...
        assert accuracy.recall <= 0.2
        # ...but their contribution volume betrays the behaviour.
        gap = honest_vs_freerider_contribution(result)
        assert gap["freeriders"] < 0.5 * gap["honest"]

    def test_no_freeriders_no_convictions(self):
        result = run_scenario(ScenarioConfig(
            protocol="heap", audit=True, **FAST))
        assert convictions(result) == set()

    def test_freeriders_rejected_for_standard_protocol(self):
        with pytest.raises(ValueError):
            ScenarioConfig(protocol="standard", freerider_fraction=0.1).validate()

    def test_contribution_index_zero_for_empty_node(self):
        result = run_scenario(ScenarioConfig(protocol="heap", **FAST))
        # Fabricate: a node that consumed nothing has index 0.
        node = result.nodes[1]
        saved = node.log
        from repro.streaming.receiver import ReceiverLog
        node.log = ReceiverLog(1)
        try:
            assert contribution_index(result, 1) == 0.0
        finally:
            node.log = saved
