"""Tests for CSV export and multi-seed aggregation."""

import csv
import math

import pytest

from repro import ScenarioConfig
from repro.analysis.cdf import Cdf
from repro.experiments.multi_seed import (
    AggregatedMetric,
    metric_jitter_free_fraction,
    metric_mean_jitter_free_lag,
    metric_offline_delivery,
    run_seeds,
)
from repro.metrics.export import (
    lag_grid_rows,
    write_cdf_csv,
    write_result_csv,
    write_rows_csv,
    write_series_csv,
)
from repro.workloads import REF_691, CatastrophicFailure


class TestCsvExport:
    def test_write_rows_roundtrip(self, tmp_path):
        path = tmp_path / "rows.csv"
        count = write_rows_csv(str(path), ["a", "b"], [[1, "x"], [2, "y"]])
        assert count == 2
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "x"], ["2", "y"]]

    def test_write_result_csv(self, tmp_path):
        from repro.experiments.tables import table1_distributions
        path = tmp_path / "table1.csv"
        count = write_result_csv(str(path), table1_distributions())
        assert count == 3
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "name"
        assert rows[1][0] == "ref-691"

    def test_write_cdf_csv(self, tmp_path):
        path = tmp_path / "cdf.csv"
        cdfs = {"a": Cdf([1.0, 2.0, 3.0]), "b": Cdf([5.0, math.inf])}
        count = write_cdf_csv(str(path), cdfs)
        assert count == 4  # 3 finite + 1 finite (inf omitted)
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        b_rows = [row for row in rows[1:] if row[0] == "b"]
        # b's single finite point saturates at 0.5 because of the inf.
        assert float(b_rows[-1][2]) == pytest.approx(0.5)

    def test_write_series_csv(self, tmp_path):
        path = tmp_path / "series.csv"
        series = {"heap": [(0, 2.0, 100.0), (1, 3.9, 80.0)]}
        count = write_series_csv(str(path), series)
        assert count == 2

    def test_lag_grid_rows(self):
        rows = lag_grid_rows({"x": Cdf([1.0, 3.0])}, grid=[0.5, 2.0, 5.0])
        assert rows == [["x", "0.0000", "0.5000", "1.0000"]]


class TestAggregatedMetric:
    def test_summary_statistics(self):
        metric = AggregatedMetric("m", [1.0, 2.0, 3.0])
        assert metric.mean == 2.0
        assert metric.min == 1.0
        assert metric.max == 3.0
        assert "over 3 seeds" in metric.summary()


class TestRunSeeds:
    @pytest.fixture(scope="class")
    def aggregated(self):
        config = ScenarioConfig(protocol="heap", distribution=REF_691,
                                n_nodes=25, duration=5.0, drain=12.0)
        return run_seeds(config, {
            "lag": metric_mean_jitter_free_lag,
            "delivery": metric_offline_delivery,
            "quality": metric_jitter_free_fraction(10.0),
        }, seeds=(1, 2, 3))

    def test_all_metrics_aggregated(self, aggregated):
        assert set(aggregated) == {"lag", "delivery", "quality"}
        assert all(len(metric.values) == 3 for metric in aggregated.values())

    def test_values_plausible(self, aggregated):
        assert aggregated["delivery"].mean > 0.95
        assert 0 < aggregated["lag"].mean < 20.0
        assert aggregated["quality"].mean > 50.0

    def test_seeds_vary_results(self, aggregated):
        assert aggregated["lag"].stdev >= 0.0
        assert len(set(aggregated["lag"].values)) > 1

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            run_seeds(ScenarioConfig(), {}, seeds=())

    def test_rejects_churn(self):
        config = ScenarioConfig(churn=CatastrophicFailure(0.2, at_time=5.0))
        with pytest.raises(ValueError):
            run_seeds(config, {}, seeds=(1,))
