"""Parity and resume tests for the figure/table grid pipeline.

The acceptance contract of the parallel reproduction pipeline:

* figure/table data files are **byte-identical** between ``--jobs 1``
  and ``--jobs N`` (the pool is forced via an explicit start method so
  the test is honest on 1-CPU hosts);
* a figure that re-requests a (scenario, seed) another figure already
  computed reuses the summary or the cached full result — never a
  recomputation in the same process;
* an interrupted figure run resumes from its JSONL checkpoint without
  recomputing finished cells.
"""

import json

import pytest

from repro.experiments import gridrun, scales
from repro.experiments.ablations import ablation_source_bias
from repro.experiments.figures import fig4_bandwidth_usage, fig5_quality_ref691, fig7_jitter_cdf
from repro.experiments.gridrun import GridOptions, configure, grid_summaries
from repro.experiments.scales import Scale, clear_cache, scenario_at
from repro.experiments.tables import table3_jitter_free_nodes
from repro.metrics.export import write_result_csv
from repro.metrics.jitter import spec_jitter_free_fraction_by_class
from repro.metrics.lag import spec_lag_delivery
from repro.workloads.distributions import REF_691

TINY = Scale("tiny", 20, 4.0, 10.0)


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    """Every test starts with empty caches and default grid options."""
    clear_cache()
    defaults = GridOptions()
    for name in vars(defaults):
        monkeypatch.setattr(gridrun._OPTIONS, name, getattr(defaults, name))
    yield
    clear_cache()


def _count_runs(monkeypatch):
    calls = []
    real = scales.run_scenario

    def wrapper(config):
        calls.append(config.protocol)
        return real(config)

    monkeypatch.setattr(scales, "run_scenario", wrapper)
    return calls


class TestSerialParallelParity:
    def test_grid_summaries_identical_serial_vs_forced_pool(self):
        spec = spec_lag_delivery(0.99)
        cells = [(scenario_at(TINY, protocol=p, distribution=REF_691), (spec,))
                 for p in ("heap", "standard")]
        serial = grid_summaries(cells, jobs=1)
        clear_cache()
        pooled = grid_summaries(cells, jobs=4, start_method="fork")
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(pooled, sort_keys=True))

    def test_figure_data_file_byte_identical(self, tmp_path):
        serial_fig = fig5_quality_ref691(TINY)
        serial_csv = tmp_path / "serial.csv"
        write_result_csv(str(serial_csv), serial_fig)

        clear_cache()
        configure(jobs=4, start_method="fork")
        parallel_fig = fig5_quality_ref691(TINY)
        parallel_csv = tmp_path / "parallel.csv"
        write_result_csv(str(parallel_csv), parallel_fig)

        assert serial_fig.render() == parallel_fig.render()
        assert serial_csv.read_bytes() == parallel_csv.read_bytes()

    def test_table_render_byte_identical(self):
        serial = table3_jitter_free_nodes(TINY).render()
        clear_cache()
        configure(jobs=2, start_method="fork")
        parallel = table3_jitter_free_nodes(TINY).render()
        assert serial == parallel

    def test_ablation_render_byte_identical(self):
        serial = ablation_source_bias(TINY, biases=(0.0, 1.0)).render()
        clear_cache()
        configure(jobs=2, start_method="fork")
        parallel = ablation_source_bias(TINY, biases=(0.0, 1.0)).render()
        assert serial == parallel


class TestSummaryCoherence:
    def test_figures_share_runs_in_one_process(self, monkeypatch):
        calls = _count_runs(monkeypatch)
        fig5_quality_ref691(TINY)
        first = len(calls)
        assert first == 2  # standard + heap on ref-691
        # Different reductions of the *same* runs: the cached full
        # results answer them without a single new scenario execution.
        fig7_jitter_cdf(TINY)
        assert len(calls) == first
        # Same reductions again: pure summary-cache hits.
        fig5_quality_ref691(TINY)
        assert len(calls) == first

    def test_standard_bundle_enables_cross_figure_reuse_under_pool(self):
        """At --jobs N workers ship summaries, never full results; the
        predeclared standard bundle makes a later figure's different
        reductions of the same scenario pure cache hits anyway.

        Executed cells are counted through the progress callback (worker
        runs are invisible to in-process monkeypatching)."""
        from repro.metrics.bandwidth import spec_utilization_by_class

        configs = [scenario_at(TINY, protocol=p, distribution=REF_691)
                   for p in ("heap", "standard")]
        first_spec = spec_lag_delivery(0.99)
        executed = []
        progress = lambda event: executed.append(event.record)  # noqa: E731
        grid_summaries([(c, (first_spec,)) for c in configs], jobs=2,
                       start_method="fork", progress=progress)
        assert len(executed) == 2
        # The pool path must not have populated the in-process full-result
        # cache — reuse can only come from the bundle's summaries.
        assert all(scales.cached_result(c) is None for c in configs)
        other_spec = spec_utilization_by_class()
        summaries = grid_summaries([(c, (other_spec,)) for c in configs],
                                   jobs=2, start_method="fork",
                                   progress=progress)
        assert len(executed) == 2  # no re-run: the bundle pre-computed it
        assert all(other_spec.name in summary for summary in summaries)

    def test_bundle_off_requires_rerun_for_new_specs(self):
        """Control for the test above: without the bundle, a different
        reduction of a worker-computed scenario re-runs the cell."""
        from repro.metrics.bandwidth import spec_utilization_by_class

        configs = [scenario_at(TINY, protocol=p, distribution=REF_691)
                   for p in ("heap", "standard")]
        executed = []
        progress = lambda event: executed.append(event.record)  # noqa: E731
        grid_summaries([(c, (spec_lag_delivery(0.99),)) for c in configs],
                       jobs=2, start_method="fork", progress=progress,
                       bundle=False)
        grid_summaries([(c, (spec_utilization_by_class(),)) for c in configs],
                       jobs=2, start_method="fork", progress=progress,
                       bundle=False)
        assert len(executed) == 4

    def test_summary_cache_survives_without_full_results(self, monkeypatch):
        spec = spec_jitter_free_fraction_by_class(10.0)
        cells = [(scenario_at(TINY, protocol="heap",
                              distribution=REF_691), (spec,))]
        grid_summaries(cells)
        # Drop the heavyweight result cache but keep the summaries (the
        # situation after a worker computed the cell: the parent never
        # had the full result).
        scales._CACHE.clear()
        calls = _count_runs(monkeypatch)
        (summary,) = grid_summaries(cells)
        assert calls == []
        assert spec.name in summary


class TestFigureCheckpointResume:
    def test_interrupted_figure_resumes_from_checkpoint(self, tmp_path,
                                                        monkeypatch):
        path = str(tmp_path / "fig4.jsonl")
        configure(checkpoint=path, resume=True)
        reference = fig4_bandwidth_usage(TINY)
        lines = (tmp_path / "fig4.jsonl").read_text().splitlines()
        assert len(lines) == 1 + 4  # header + one record per scenario

        # Kill after two finished cells, then resume in a "new process"
        # (cold caches).
        (tmp_path / "fig4.jsonl").write_text("\n".join(lines[:3]) + "\n")
        clear_cache()
        calls = _count_runs(monkeypatch)
        resumed = fig4_bandwidth_usage(TINY)
        assert len(calls) == 2  # only the missing cells ran
        assert resumed.render() == reference.render()

    def test_resume_across_processes_is_fingerprint_stable(self, tmp_path):
        # The same figure twice with cold caches must accept its own
        # checkpoint (the grid fingerprint is a pure function of the
        # cells, not of what an earlier process had cached).
        path = str(tmp_path / "fig5.jsonl")
        configure(checkpoint=path, resume=True)
        first = fig5_quality_ref691(TINY)
        clear_cache()
        again = fig5_quality_ref691(TINY)
        assert first.render() == again.render()
