"""Shard-complete scenario coverage: churn, loss and the freerider audit.

PR 4/5 built the sharded execution engine but kept the flagship paper
scenarios out of it: churn, lossy networks and the freerider audit all
raised loudly under ``shards > 1``.  This file pins the contract that
closes that gap — the three remaining scenario families partition, and
their merged results are **byte-identical** to the serial run of the
same scenario:

* **churn** is replicated (every shard draws the same victims and
  detection delays from its copy of the streams) and cross-verified by
  control rows riding the packed window buffers;
* **loss** uses the order-independent ``loss_rng="per-pair"`` model
  mirroring ``PerPairLatency``;
* **the audit** runs each detector wholly on its owner shard and folds
  picklable detector snapshots into the merged result, so convictions
  are computed from the full population's evidence.

PR 8 adds the adversarial families: a weighted attack mix with
topology-aware placement (replicated on every shard, each attacker's
implementation running only on its owner shard — counters harvested
like detector snapshots) and the sampler-role ``poisoned-view`` attack
under cyclon membership.

The matrix covers every family at 2 and 4 shards under the in-process
serial driver and real fork/spawn worker processes.
"""

import json
import multiprocessing

import pytest

from repro.adversary import AttackMix
from repro.experiments.runner import run_scenario
from repro.freeriders.analysis import (convictions, detection_accuracy,
                                       honest_vs_freerider_contribution)
from repro.metrics.summary import standard_bundle, summarize
from repro.net.shard import run_sharded
from repro.workloads.churn import CatastrophicFailure, IntervalChurn
from repro.workloads.distributions import REF_691
from repro.workloads.scenario import ScenarioConfig


def summary_blob(result) -> str:
    """Canonical JSON of the standard spec bundle: the byte-parity key."""
    return json.dumps(summarize(result, standard_bundle()), sort_keys=True)


def audit_blob(result) -> str:
    """Audit verdicts and contribution indices, canonically serialized.

    The standard bundle doesn't reach into the detectors, so audit
    parity additionally pins the full verdict surface: quorum
    convictions, their accuracy against the planted ground truth, and
    the contribution split — all computed from the (merged) evidence.
    """
    convicted = sorted(convictions(result))
    accuracy = detection_accuracy(result, set(convicted))
    return json.dumps({
        "convicted": convicted,
        "precision": accuracy.precision,
        "recall": accuracy.recall,
        "contribution": honest_vs_freerider_contribution(result),
    }, sort_keys=True)


def base_config(**overrides) -> ScenarioConfig:
    base = dict(protocol="heap", n_nodes=48, duration=2.0, drain=4.0,
                seed=13, distribution=REF_691,
                latency_rng="per-pair", latency_floor=0.05)
    base.update(overrides)
    return ScenarioConfig(**base)


#: The scenario families PR 6 taught to shard.  Churn fires inside
#: the stream (t=3 < 2 + 2), so crash/detection behaviour is exercised
#: while packets are in flight across the partition.
LEGACY_FAMILIES = {
    "churn": dict(churn=CatastrophicFailure(fraction=0.25, at_time=3.0)),
    "loss": dict(loss_rate=0.05, loss_rng="per-pair"),
    "audit": dict(audit=True, freerider_fraction=0.2,
                  freerider_mode="nonserve", freerider_param=0.1),
}

#: PR 8's adversarial families: a weighted node-attack mix with
#: topology-aware placement (attackers built population-wide, started
#: only on their owner shard — the audit pattern), and the sampler-role
#: attack riding decentralized cyclon membership.
ATTACK_FAMILIES = {
    "attack-mix": dict(audit=True,
                       adversary=AttackMix.parse("spam=0.1,withhold=0.05",
                                                 victim_policy="high-degree")),
    "poisoned-view": dict(membership="cyclon",
                          adversary=AttackMix.single("poisoned-view", 0.15)),
}

FAMILIES = {**LEGACY_FAMILIES, **ATTACK_FAMILIES}

DRIVERS = ("serial-driver", "fork", "spawn")


def run_family_sharded(family: str, shards: int, driver: str):
    config = base_config(shards=shards, **FAMILIES[family])
    if driver == "serial-driver":
        return run_sharded(config, processes=False)
    if driver == "fork" and "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable on this platform")
    return run_sharded(config, processes=True, start_method=driver)


@pytest.fixture(scope="module")
def serial():
    """Per-family serial baselines, computed once for the whole matrix."""
    cache = {}

    def get(family: str):
        if family not in cache:
            cache[family] = run_scenario(base_config(**FAMILIES[family]))
        return cache[family]

    return get


# ----------------------------------------------------------------------
# the matrix: {family} x {2, 4 shards} x {serial driver, fork, spawn}
# ----------------------------------------------------------------------
@pytest.mark.parametrize("driver", DRIVERS)
@pytest.mark.parametrize("shards", (2, 4))
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_summaries_byte_identical(family, shards, driver, serial):
    merged = run_family_sharded(family, shards, driver)
    assert summary_blob(merged) == summary_blob(serial(family))


def test_all_families_combined_shard_cleanly(serial):
    """Churn + loss + audit in one scenario: the features compose.

    The legacy families only: the audit family's ``freerider_*`` shim
    and an ``adversary`` mix deliberately refuse to combine (validated),
    so the attack families have their own composition test below.
    """
    combined = {}
    for overrides in LEGACY_FAMILIES.values():
        combined.update(overrides)
    config = base_config(**combined)
    baseline = run_scenario(config)
    merged = run_sharded(config.with_(shards=3), processes=False)
    assert summary_blob(merged) == summary_blob(baseline)
    assert audit_blob(merged) == audit_blob(baseline)
    assert merged.crash_times == baseline.crash_times


def test_attack_mix_composes_with_churn_and_loss(serial):
    """Churn + loss + a weighted attack mix + audit in one scenario."""
    combined = {}
    for key in ("churn", "loss"):
        combined.update(LEGACY_FAMILIES[key])
    combined.update(ATTACK_FAMILIES["attack-mix"])
    config = base_config(**combined)
    baseline = run_scenario(config)
    merged = run_sharded(config.with_(shards=3), processes=False)
    assert summary_blob(merged) == summary_blob(baseline)
    assert audit_blob(merged) == audit_blob(baseline)
    assert merged.crash_times == baseline.crash_times


def test_interval_churn_matches_serial(serial):
    config = base_config(churn=IntervalChurn(interval=0.7, stop=4.0))
    baseline = summary_blob(run_scenario(config))
    merged = run_sharded(config.with_(shards=2), processes=False)
    assert summary_blob(merged) == baseline


# ----------------------------------------------------------------------
# churn: replicated membership, verified over the wire
# ----------------------------------------------------------------------
class TestChurnSharding:
    def test_merged_crash_times_match_serial(self, serial):
        merged = run_family_sharded("churn", 2, "serial-driver")
        baseline = serial("churn")
        assert merged.crash_times == baseline.crash_times
        assert len(merged.crash_times) > 0
        # Victims are excluded from the default receiver set, exactly
        # as in the serial result.
        assert merged.receiver_ids() == baseline.receiver_ids()
        assert (merged.receiver_ids(include_crashed=True)
                == baseline.receiver_ids(include_crashed=True))

    @pytest.mark.parametrize("batch_wire", (True, False))
    def test_owner_announces_each_crash_to_every_peer(self, batch_wire):
        config = base_config(shards=3, **FAMILIES["churn"])
        merged = run_sharded(config, processes=False, batch_wire=batch_wire)
        victims = len(merged.crash_times)
        assert victims > 0
        # One control row per victim per peer shard, counted at the
        # owner; the counter survives the harvest merge.
        assert merged.net.stats.wire_control_rows == victims * 2
        assert merged.net.stats.wire_summary()["control_rows"] == victims * 2

    def test_lossless_scenarios_ship_no_control_rows(self):
        merged = run_sharded(base_config(shards=2), processes=False)
        assert merged.net.stats.wire_control_rows == 0


# ----------------------------------------------------------------------
# audit: verdicts from merged evidence
# ----------------------------------------------------------------------
class TestAuditSharding:
    @pytest.mark.parametrize("shards", (2, 4))
    def test_verdicts_identical_to_serial(self, shards, serial):
        merged = run_family_sharded("audit", shards, "serial-driver")
        assert audit_blob(merged) == audit_blob(serial("audit"))

    def test_merged_detectors_cover_the_population(self, serial):
        merged = run_family_sharded("audit", 4, "serial-driver")
        baseline = serial("audit")
        assert set(merged.detectors) == set(baseline.detectors)
        # Snapshots answer the same verdict queries the live detectors do.
        for node_id, live in baseline.detectors.items():
            frozen = merged.detectors[node_id]
            assert frozen.suspects() == live.suspects()
            assert frozen.reports_sent == live.reports_sent
            assert frozen.reports_received == live.reports_received

    def test_contribution_surface_survives_the_merge(self, serial):
        merged = run_family_sharded("audit", 2, "serial-driver")
        baseline = serial("audit")
        for node_id in baseline.receiver_ids():
            assert (merged.nodes[node_id].packets_served
                    == baseline.nodes[node_id].packets_served)
            assert (merged.nodes[node_id].delivered_count()
                    == baseline.nodes[node_id].delivered_count())


# ----------------------------------------------------------------------
# attacks: replicated placement, owner-shard counters (the audit pattern)
# ----------------------------------------------------------------------
class TestAttackSharding:
    def test_placement_replicated_and_merged(self, serial):
        merged = run_family_sharded("attack-mix", 2, "serial-driver")
        baseline = serial("attack-mix")
        assert merged.attackers == baseline.attackers
        assert merged.freerider_ids == baseline.freerider_ids
        assert len(merged.attackers) > 0
        # high-degree placement: every attacker sits in the top
        # capability stratum of the receivers.
        floor = min(baseline.capacities[n] for n in baseline.attackers)
        better = [n for n in baseline.receiver_ids(include_crashed=True)
                  if baseline.capacities[n] > floor]
        assert len(better) < len(baseline.attackers)

    def test_attacker_counters_survive_the_merge(self, serial):
        merged = run_family_sharded("attack-mix", 4, "serial-driver")
        baseline = serial("attack-mix")
        assert merged.attacker_stats == baseline.attacker_stats
        totals = {}
        for stats in merged.attacker_stats.values():
            for counter, value in stats.items():
                totals[counter] = totals.get(counter, 0) + value
        assert totals.get("spam_proposes", 0) > 0
        assert totals.get("ids_withheld", 0) > 0

    def test_attack_impact_summary_identical(self, serial):
        from repro.adversary import attack_impact

        for family in ("attack-mix", "poisoned-view"):
            merged = run_family_sharded(family, 2, "serial-driver")
            assert (json.dumps(attack_impact(merged), sort_keys=True)
                    == json.dumps(attack_impact(serial(family)), sort_keys=True))

    def test_poisoned_sampler_counters_nonzero(self, serial):
        baseline = serial("poisoned-view")
        poisoned = sum(s.get("entries_poisoned", 0)
                       for s in baseline.attacker_stats.values())
        assert poisoned > 0


# ----------------------------------------------------------------------
# loss: the per-pair model under both wire formats
# ----------------------------------------------------------------------
class TestLossSharding:
    def test_escape_hatch_wire_format_matches_serial(self, serial):
        config = base_config(shards=2, **FAMILIES["loss"])
        merged = run_sharded(config, processes=False, batch_wire=False)
        assert summary_blob(merged) == summary_blob(serial("loss"))

    def test_loss_counters_match_serial(self, serial):
        merged = run_family_sharded("loss", 2, "serial-driver")
        baseline = serial("loss")
        assert merged.net.stats.lost == baseline.net.stats.lost > 0
        assert merged.net.stats.sent == baseline.net.stats.sent
        assert merged.net.stats.delivered == baseline.net.stats.delivered


# ----------------------------------------------------------------------
# validation: no family raises under --shards any more
# ----------------------------------------------------------------------
class TestShardValidation:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_families_validate_under_shards(self, family):
        base_config(shards=2, **FAMILIES[family]).validate()
        base_config(shards=4, **FAMILIES[family]).validate()

    def test_shared_loss_still_rejected(self):
        with pytest.raises(ValueError, match="loss_rng='per-pair'"):
            base_config(shards=2, loss_rate=0.05).validate()
