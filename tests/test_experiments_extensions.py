"""Structure tests for the extension experiment definitions (tiny scale)."""

import pytest

from repro.experiments.extensions import (
    ext_capability_discovery,
    ext_freeriders,
    ext_membership,
    ext_size_estimation,
)
from repro.experiments.scales import Scale, clear_cache

TINY = Scale("tiny-ext", 30, 6.0, 15.0)


@pytest.fixture(autouse=True, scope="module")
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_ext_freeriders_rows_and_render():
    table = ext_freeriders(TINY, fractions=(0.0, 0.2))
    text = table.render()
    assert "freeriders" in text.lower()
    modes = {row[0] for row in table.rows}
    assert modes == {"nonserve", "underclaim"}
    # The fraction-0 baseline appears once (shared between modes).
    zero_rows = [row for row in table.rows if row[1] == "0%"]
    assert len(zero_rows) == 1
    # Detection column present for planted runs, dash for baseline.
    assert zero_rows[0][4] == "-"
    planted = [row for row in table.rows if row[1] != "0%"]
    assert all(row[4].startswith("P=") for row in planted)


def test_ext_membership_covers_grid():
    table = ext_membership(TINY)
    keys = {(row[0], row[1]) for row in table.rows}
    assert keys == {("directory", "standard"), ("directory", "heap"),
                    ("cyclon", "standard"), ("cyclon", "heap")}
    for row in table.rows:
        reached, total = (int(x) for x in row[2].split("/"))
        assert 0 <= reached <= total == TINY.n_nodes - 1


def test_ext_capability_discovery_rows():
    table = ext_capability_discovery(TINY)
    kinds = [row[0] for row in table.rows]
    assert kinds == ["configured", "discovery"]
    for row in table.rows:
        assert float(row[3]) > 0  # advertised/true ratio is positive


def test_ext_size_estimation_small_populations():
    table = ext_size_estimation(populations=(10, 25), seed=3)
    assert [row[0] for row in table.rows] == ["10", "25"]
    for row in table.rows:
        assert row[1] != "n/a"
        implied = float(row[3])
        assert 2.0 < implied < 8.0
