"""Router-protocol conformance suite.

Both delivery routers — the default :class:`InprocRouter` and a
:class:`ShardRouter` that owns the whole population (sharding degenerated
to one shard) — must implement identical delivery semantics: arrival
times, crash handling, dispatch-table routing, observer hooks, stats and
envelope recycling.  The suite runs every behavioural test against both.

On top of conformance, this file pins the two behaviours the router
redesign added:

* same-timestamp arrivals drain through one ``deliver_bucket`` call
  (one event, receiver stats accumulated per kind group);
* ``NetworkStats.add_received`` bulk accumulation is equivalent to n
  single accumulations (the receive-side stats satellite).
"""

import random

import pytest

from repro.net.latency import ConstantLatency, PerPairLatency
from repro.net.message import UDP_IP_HEADER_BYTES, Envelope, intern_kind
from repro.net.network import Network
from repro.net.router import InprocRouter, Router
from repro.net.shard import ShardRouter, decode_envelope, encode_envelope
from repro.net.stats import NetworkStats
from repro.sim.engine import Simulator


class FakePayload:
    def __init__(self, kind="test", size=100):
        self.kind = kind
        self.kind_id = intern_kind(kind, register=True)
        self._size = size

    def wire_size(self):
        return self._size


class Sink:
    def __init__(self):
        self.received = []

    def on_message(self, envelope):
        self.received.append(envelope)


def _inproc():
    return InprocRouter()


def _single_shard():
    # A ShardRouter owning every node id we use in the tests: all
    # destinations take the local path, so semantics must be identical.
    return ShardRouter(owned=set(range(64)), shards=1)


ROUTERS = [pytest.param(_inproc, id="inproc"),
           pytest.param(_single_shard, id="shard-local")]


def make_net(router_factory, latency=0.05, reuse=False):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(latency),
                  reuse_envelopes=reuse, router=router_factory())
    return sim, net


@pytest.mark.parametrize("router_factory", ROUTERS)
class TestRouterConformance:
    def test_router_protocol_shape(self, router_factory):
        assert isinstance(router_factory(), Router)

    def test_delivery_with_latency_and_serialization(self, router_factory):
        sim, net = make_net(router_factory)
        sink = Sink()
        net.attach(1, Sink(), upload_capacity_bps=1_000_000)
        net.attach(2, sink, upload_capacity_bps=1_000_000)
        net.send(1, 2, FakePayload(size=972))  # 1000B -> 8ms at 1Mbps
        sim.run()
        assert len(sink.received) == 1
        assert sink.received[0].arrival_time == pytest.approx(0.058)

    def test_crashed_receiver_drops(self, router_factory):
        sim, net = make_net(router_factory, latency=0.5)
        sink = Sink()
        net.attach(1, Sink(), 1e9)
        net.attach(2, sink, 1e9)
        net.send(1, 2, FakePayload())
        net.crash(2)
        sim.run()
        assert sink.received == []
        assert net.stats.dropped_dead == 1

    def test_queued_datagrams_die_with_sender(self, router_factory):
        sim, net = make_net(router_factory, latency=0.0)
        sink = Sink()
        net.attach(1, Sink(), upload_capacity_bps=8000.0)  # 1000B -> 1s each
        net.attach(2, sink, upload_capacity_bps=8000.0)
        for _ in range(4):
            net.send(1, 2, FakePayload(size=1000 - UDP_IP_HEADER_BYTES))
        sim.schedule(1.5, lambda: net.crash(1))
        sim.run()
        assert len(sink.received) == 1
        assert net.stats.dropped_dead == 3

    def test_dispatch_table_routing(self, router_factory):
        sim, net = make_net(router_factory)

        class Endpoint:
            def __init__(self):
                self.table_hits = []
                self.fallback = []

            def dispatch_table(self):
                return {FakePayload("routed").kind_id: self.table_hits.append}

            def on_message(self, envelope):
                self.fallback.append(envelope)

        endpoint = Endpoint()
        net.attach(1, Sink(), 1e9)
        net.attach(2, endpoint, 1e9)
        net.send(1, 2, FakePayload(kind="routed"))
        net.send(1, 2, FakePayload(kind="unrouted"))
        sim.run()
        assert [e.payload.kind for e in endpoint.table_hits] == ["routed"]
        assert [e.payload.kind for e in endpoint.fallback] == ["unrouted"]

    def test_on_deliver_observer_sees_every_envelope(self, router_factory):
        sim, net = make_net(router_factory)
        seen = []
        net.on_deliver = lambda env: seen.append(env.payload.kind)
        net.attach(1, Sink(), 1e9)
        net.attach(2, Sink(), 1e9)
        net.send(1, 2, FakePayload(kind="x"))
        sim.run()
        assert seen == ["x"]

    def test_envelope_recycled_after_delivery(self, router_factory):
        sim, net = make_net(router_factory, reuse=True)
        seen = []

        class Reader:
            def on_message(self, envelope):
                seen.append(id(envelope))

        net.attach(1, Reader(), 1e9)
        net.attach(2, Reader(), 1e9)
        net.send(1, 2, FakePayload())
        sim.run()
        net.send(1, 2, FakePayload())
        sim.run()
        assert len(seen) == 2 and seen[0] == seen[1]

    def test_receive_stats_mirror_send_stats(self, router_factory):
        sim, net = make_net(router_factory)
        net.attach(1, Sink(), 1e9)
        net.attach(2, Sink(), 1e9)
        net.send(1, 2, FakePayload(kind="propose", size=72))
        net.send(1, 2, FakePayload(kind="serve", size=1372))
        sim.run()
        stats = net.stats
        assert stats.delivered == 2
        assert stats.bytes_received == stats.bytes_sent
        assert stats.received_count_by_kind == {"propose": 1, "serve": 1}
        assert (stats.received_bytes_by_kind["serve"]
                == 1372 + UDP_IP_HEADER_BYTES)


class TestArrivalBucketing:
    """The batched-delivery behaviour of the redesigned delivery side."""

    def _bulk_net(self, latency=0.05):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(latency))
        net.attach(0, Sink(), 1e12)
        sinks = [Sink() for _ in range(8)]
        for i, sink in enumerate(sinks):
            net.attach(1 + i, sink, 1e12)
        return sim, net, sinks

    def test_same_timestamp_bucket_is_one_event(self):
        # At (practically) infinite uplink capacity the per-destination
        # exit times stay distinct but minuscule; use send_many at t=0 so
        # every arrival shares... exit times differ per datagram, so ties
        # need equal sizes from *different senders* instead.
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.05))
        sinks = {i: Sink() for i in (10, 11)}
        net.attach(0, Sink(), 8e6)
        net.attach(1, Sink(), 8e6)
        for i, sink in sinks.items():
            net.attach(i, sink, 8e6)
        payload = FakePayload(kind="bulk", size=972)  # same size, same exit
        net.send(0, 10, payload)
        net.send(1, 11, payload)
        sim.run()
        # Both arrivals at exactly 0.001 + 0.05 -> one coalesced bucket.
        assert sim.events_executed == 1
        assert all(len(s.received) == 1 for s in sinks.values())
        assert net.stats.delivered == 2
        assert net.stats.received_count_by_kind["bulk"] == 2

    def test_interleaved_event_prevents_unsound_coalescing(self):
        # An event scheduled between two same-timestamp routes must keep
        # its enqueue position: the second arrival starts a new bucket.
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.05))
        order = []

        class Recorder:
            def __init__(self, name):
                self.name = name

            def on_message(self, envelope):
                order.append(self.name)

        net.attach(0, Sink(), 8e6)
        net.attach(1, Sink(), 8e6)
        net.attach(10, Recorder("a"), 8e6)
        net.attach(11, Recorder("b"), 8e6)
        payload = FakePayload(kind="tick", size=972)
        first = net.send(0, 10, payload)            # arrival t*
        sim.post_at(first.arrival_time, lambda: order.append("timer"))
        net.send(1, 11, payload)                    # same arrival t*
        sim.run()
        assert order == ["a", "timer", "b"]
        assert sim.events_executed == 3  # two buckets plus the timer

    def test_bucket_stats_equal_singleton_deliveries(self):
        def totals(batched):
            sim = Simulator()
            net = Network(sim, latency=ConstantLatency(0.05))
            senders = range(4)
            for i in senders:
                net.attach(i, Sink(), 8e6)
            sink = Sink()
            net.attach(9, sink, 8e6)
            payload = FakePayload(kind="eq", size=972)
            for i in senders:
                net.send(i, 9, payload)
                if not batched:
                    # Distinct enqueue times -> distinct arrival buckets.
                    sim.run()
            sim.run()
            stats = net.stats
            return (stats.delivered, stats.bytes_received,
                    dict(stats.received_count_by_kind),
                    dict(stats.received_bytes_by_kind),
                    stats.per_node[9].bytes_down,
                    len(sink.received))

        assert totals(batched=True) == totals(batched=False)


class TestAddReceived:
    """Satellite: the bulk receive accumulator is defined to equal n
    single accumulations."""

    def test_bulk_equals_n_singles(self):
        kind_a = intern_kind("recv-a", register=True)
        kind_b = intern_kind("recv-b", register=True)
        bulk = NetworkStats()
        singles = NetworkStats()
        bulk.add_received(kind_a, 7, 7 * 131)
        bulk.add_received(kind_b, 3, 3 * 40)
        for _ in range(7):
            singles.add_received(kind_a, 1, 131)
        for _ in range(3):
            singles.add_received(kind_b, 1, 40)
        assert bulk.delivered == singles.delivered == 10
        assert bulk.bytes_received == singles.bytes_received
        assert bulk.received_count_by_kind == singles.received_count_by_kind
        assert bulk.received_bytes_by_kind == singles.received_bytes_by_kind

    def test_add_received_grows_late_registered_kinds(self):
        stats = NetworkStats()
        late = intern_kind("recv-late", register=True)
        stats.add_received(late, 2, 100)
        assert stats.received_count_by_kind == {"recv-late": 2}

    def test_merge_from_sums_both_directions(self):
        kind = intern_kind("recv-merge", register=True)
        a, b = NetworkStats(), NetworkStats()
        a.add_received(kind, 2, 200)
        a.sent = 5
        a.bytes_sent = 500
        a.node(1).bytes_up = 500
        b.add_received(kind, 3, 300)
        b.sent = 1
        b.bytes_sent = 100
        b.node(1).bytes_down = 300
        a.merge_from(b)
        assert a.sent == 6 and a.bytes_sent == 600
        assert a.delivered == 5 and a.bytes_received == 500
        assert a.received_count_by_kind == {"recv-merge": 5}
        assert a.node(1).bytes_up == 500 and a.node(1).bytes_down == 300


class TestShardRouterLocalParts:
    """ShardRouter mechanics that do not need a full sharded run."""

    def test_remote_destination_lands_in_target_outbox(self):
        # Escape hatch: the pre-batching per-envelope wire tuples.
        sim = Simulator()
        router = ShardRouter(owned={0, 2}, shards=2, batch_wire=False)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        net.attach(0, Sink(), 1e9)
        remote_sink = Sink()
        net.attach(1, remote_sink, 1e9)  # attached but owned by shard 1
        net.send(0, 1, FakePayload(kind="remote", size=50))
        sim.run()
        assert remote_sink.received == []  # not delivered locally
        outboxes = router.take_outboxes()
        assert len(outboxes[1]) == 1 and outboxes[0] == []
        assert router.take_outboxes() == [[], []]  # drained
        src, dst, kind_id, size, *_ = outboxes[1][0]
        assert (src, dst) == (0, 1)
        assert kind_id == FakePayload("remote").kind_id
        assert size == 50 + UDP_IP_HEADER_BYTES

    def test_remote_destination_lands_in_packed_buffer(self):
        # Default: the window's outbox to a peer shard is one packed
        # buffer (tagged tuple), not per-envelope tuples.
        from repro.net.shard import WIRE_BATCH_TAG

        sim = Simulator()
        router = ShardRouter(owned={0, 2}, shards=2)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        net.attach(0, Sink(), 1e9)
        net.attach(1, Sink(), 1e9)  # owned by shard 1
        net.send(0, 1, FakePayload(kind="packed", size=50))
        net.send(0, 1, FakePayload(kind="packed", size=50))
        sim.run()
        outboxes = router.take_outboxes()
        assert outboxes[0] == []
        assert len(outboxes[1]) == 1  # ONE buffer for two envelopes
        tag, n_rows, header, blob = outboxes[1][0]
        assert tag == WIRE_BATCH_TAG and n_rows == 2
        assert isinstance(header, bytes) and isinstance(blob, bytes)
        assert router.take_outboxes() == [[], []]  # drained
        assert net.stats.wire_buffers == 1
        assert net.stats.wire_envelopes == 2
        assert net.stats.wire_bytes == len(header) + len(blob)

    def test_wire_round_trip_preserves_envelope(self):
        payload = FakePayload(kind="wire", size=64)
        envelope = Envelope(3, 4, payload, 92, 1.0, 1.25)
        envelope._exit_time = 1.1
        wire = encode_envelope(envelope, payload.kind_id)
        decoded = decode_envelope(wire)
        assert (decoded.src, decoded.dst) == (3, 4)
        assert decoded.size_bytes == 92
        assert decoded.send_time == 1.0
        assert decoded.arrival_time == 1.25
        assert decoded._exit_time == 1.1
        assert decoded.payload.kind == "wire"
        assert decoded.payload.kind_id == payload.kind_id

    def test_wire_kind_mismatch_raises(self):
        payload = FakePayload(kind="wire-a")
        other = FakePayload(kind="wire-b")
        envelope = Envelope(0, 1, payload, 92, 0.0, 0.1)
        wire = encode_envelope(envelope, other.kind_id)
        with pytest.raises(ValueError, match="kind mismatch"):
            decode_envelope(wire)

    def test_injected_envelopes_deliver_locally(self):
        sim = Simulator()
        router = ShardRouter(owned={1}, shards=2)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        sink = Sink()
        net.attach(1, sink, 1e9)
        payload = FakePayload(kind="inject", size=30)
        envelope = Envelope(0, 1, payload, 58, 0.0, 0.2)
        router.inject([encode_envelope(envelope, payload.kind_id)])
        sim.run()
        assert len(sink.received) == 1
        assert sink.received[0].arrival_time == 0.2
        assert net.stats.delivered == 1

    def test_per_pair_latency_is_order_independent(self):
        a = PerPairLatency(123, jitter=0.01)
        b = PerPairLatency(123, jitter=0.01)
        # Different global interleavings, same per-link sequences.
        seq_a = [a.sample(0, 1), a.sample(0, 1), a.sample(2, 3)]
        first_b = b.sample(2, 3)
        seq_b = [b.sample(0, 1), b.sample(0, 1), first_b]
        assert seq_a == seq_b
        assert a.lower_bound() == a.floor > 0

    def test_shared_pairwise_latency_is_order_dependent(self):
        from repro.net.latency import PairwiseLatency

        a = PairwiseLatency(random.Random(5))
        b = PairwiseLatency(random.Random(5))
        b.sample(2, 3)  # consume one shared draw first
        assert a.sample(0, 1) != b.sample(0, 1)
