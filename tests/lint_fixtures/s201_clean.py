"""S201 clean twin: module-level callables cross the boundary."""

import multiprocessing


def run_cell(cell):
    return cell.run()


def run_cells(pool, cells):
    futures = [pool.submit(run_cell, cell) for cell in cells]
    worker = multiprocessing.Process(target=run_cell, args=(cells[0],))
    return run_grid(cells, run_cell), futures, worker  # noqa: F821
