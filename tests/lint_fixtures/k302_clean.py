"""K302 clean twin: intern_kind as a pure (raising) lookup."""

from repro.net.message import intern_kind


def resolve(name):
    return intern_kind(name)
