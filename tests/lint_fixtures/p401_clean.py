"""P401 clean twin: slotted classes plus the exempt shapes."""

from dataclasses import dataclass
from typing import Protocol


class EventRecord:
    __slots__ = ("seq",)

    def __init__(self, seq):
        self.seq = seq


@dataclass(frozen=True, slots=True)
class PacketRecord:
    packet_id: int


class Endpoint(Protocol):
    def on_message(self, envelope):
        ...


class FixtureError(RuntimeError):
    pass
