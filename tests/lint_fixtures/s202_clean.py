"""S202 clean twin: the payload class lives at module level."""


class Probe:
    kind = "probe"
    kind_id = 7

    def wire_size(self):
        return 8


def make_probe_payload():
    return Probe()
