"""D102 clean twin: a seeded random.Random stream."""

import random


def shuffle_peers(peers, seed):
    rng = random.Random(seed)
    rng.shuffle(peers)
    return rng
