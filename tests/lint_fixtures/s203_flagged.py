"""S203 fixture: payload attribute writes after send/send_many."""


def announce(net, src, peers, payload):
    net.send_many(src, peers, payload)
    payload.round += 1
    net.send(src, peers[0], payload=payload)
    payload.ids = []
