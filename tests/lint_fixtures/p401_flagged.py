"""P401 fixture: dict-carrying classes (hot-module scope forced by the
test's wildcard config)."""

from dataclasses import dataclass


class EventRecord:
    def __init__(self, seq):
        self.seq = seq


@dataclass(frozen=True)
class PacketRecord:
    packet_id: int
