"""D101 clean twin: timestamps come from the simulator clock."""


def stamp_events(log, sim):
    log.append(sim.now)
