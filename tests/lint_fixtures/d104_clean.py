"""D104 clean twin: orderings on stable identities."""


def order_endpoints(endpoints, a, b):
    ranked = sorted(endpoints, key=lambda e: e.node_id)
    lowest = min(endpoints, key=lambda e: e.node_id)
    earlier = a.node_id < b.node_id
    return ranked, lowest, earlier
