"""S203 clean twin: the payload is finalized before it is sent."""


def announce(net, src, peers, payload):
    payload.round += 1
    payload.ids = []
    net.send_many(src, peers, payload)
    net.send(src, peers[0], payload=payload)
