"""D101 fixture: wall-clock reads (deterministic-module scope forced
by the test's wildcard config)."""

import time
from datetime import datetime


def stamp_events(log):
    log.append(time.time())
    log.append(datetime.now())
