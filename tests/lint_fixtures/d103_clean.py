"""D103 clean twin: every set iteration goes through sorted(...)."""


def merge_ids(batches):
    pending = set()
    for batch in batches:
        pending.update(batch)
    ordered = [packet_id for packet_id in sorted(pending)]
    for packet_id in sorted({0, 1, 2}):
        ordered.append(packet_id)
    return ordered, sorted(pending)
