"""K301 fixture: run-time / computed-name kind registration."""

from repro.net.message import register_kind


def register_probe():
    return register_kind("probe")


PROBE_KIND_ID = register_kind("pro" + "be")
