"""S202 fixture: a wire-crossing payload class defined in a function."""


def make_probe_payload():
    class Probe:
        kind = "probe"
        kind_id = 7

        def wire_size(self):
            return 8

    return Probe()
