"""D103 fixture: hash-ordered iteration over sets."""


def merge_ids(batches):
    pending = set()
    for batch in batches:
        pending.update(batch)
    ordered = [packet_id for packet_id in pending]
    for packet_id in {0, 1, 2}:
        ordered.append(packet_id)
    return ordered, list(pending)
