"""D104 fixture: orderings built on id() values."""


def order_endpoints(endpoints, a, b):
    ranked = sorted(endpoints, key=id)
    lowest = min(endpoints, key=lambda e: id(e))
    earlier = id(a) < id(b)
    return ranked, lowest, earlier
