"""S201 fixture: unpicklable callables handed to process sinks."""

import multiprocessing


def run_cells(pool, cells):
    futures = [pool.submit(lambda cell=cell: cell.run()) for cell in cells]

    def run_one(cell):
        return cell.run()

    worker = multiprocessing.Process(target=lambda: run_one(cells[0]))
    return run_grid(cells, run_one), futures, worker  # noqa: F821
