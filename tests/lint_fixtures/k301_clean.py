"""K301 clean twin: import-time registration with a literal name."""

from repro.net.message import register_kind


class Probe:
    kind = "probe"
    kind_id = register_kind("probe")
