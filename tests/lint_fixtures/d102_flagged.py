"""D102 fixture: unseeded / OS-entropy randomness."""

import os
import random


def shuffle_peers(peers):
    rng = random.Random()
    random.shuffle(peers)
    return os.urandom(8), rng
