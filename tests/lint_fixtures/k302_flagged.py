"""K302 fixture: run-time registration through intern_kind."""

from repro.net.message import intern_kind


def resolve(name):
    return intern_kind(name, register=True)
