"""Unit tests for LocalView and selectors."""

import random

import pytest

from repro.membership.selector import CapabilityBiasedSelector, UniformSelector
from repro.membership.view import LocalView


class TestLocalView:
    def test_excludes_owner_on_construction(self):
        view = LocalView(owner=1, members=[1, 2, 3])
        assert 1 not in view
        assert len(view) == 2

    def test_add_and_remove(self):
        view = LocalView(owner=0)
        view.add(5)
        assert 5 in view
        view.remove(5)
        assert 5 not in view

    def test_add_owner_is_noop(self):
        view = LocalView(owner=0)
        view.add(0)
        assert len(view) == 0

    def test_remove_absent_is_noop(self):
        view = LocalView(owner=0, members=[1])
        view.remove(99)
        assert len(view) == 1

    def test_members_returns_copy(self):
        view = LocalView(owner=0, members=[1, 2])
        members = view.members()
        members.add(99)
        assert 99 not in view

    def test_sample_uniform_without_replacement(self):
        view = LocalView(owner=0, members=range(1, 11))
        rng = random.Random(1)
        sample = view.sample(5, rng)
        assert len(sample) == 5
        assert len(set(sample)) == 5
        assert all(s in view for s in sample)

    def test_sample_more_than_available_returns_all(self):
        view = LocalView(owner=0, members=[1, 2, 3])
        assert sorted(view.sample(10, random.Random(1))) == [1, 2, 3]

    def test_sample_zero_or_negative(self):
        view = LocalView(owner=0, members=[1, 2, 3])
        assert view.sample(0, random.Random(1)) == []
        assert view.sample(-1, random.Random(1)) == []

    def test_sample_respects_exclude(self):
        view = LocalView(owner=0, members=[1, 2, 3, 4])
        sample = view.sample(10, random.Random(1), exclude={2, 4})
        assert sorted(sample) == [1, 3]

    def test_sample_deterministic_given_seed(self):
        view_a = LocalView(owner=0, members=range(1, 100))
        view_b = LocalView(owner=0, members=range(1, 100))
        assert view_a.sample(10, random.Random(7)) == view_b.sample(10, random.Random(7))

    def test_sample_roughly_uniform(self):
        view = LocalView(owner=0, members=range(1, 21))
        rng = random.Random(11)
        counts = {i: 0 for i in range(1, 21)}
        for _ in range(4000):
            for member in view.sample(2, rng):
                counts[member] += 1
        # Each of 20 members expected 400 times; allow generous slack.
        assert all(280 < c < 520 for c in counts.values())


class TestUniformSelector:
    def test_select_delegates_to_view(self):
        view = LocalView(owner=0, members=range(1, 30))
        selector = UniformSelector(random.Random(3))
        chosen = selector.select(view, 7)
        assert len(chosen) == 7
        assert len(set(chosen)) == 7


class TestCapabilityBiasedSelector:
    def capability(self, node_id):
        return 3000.0 if node_id < 5 else 100.0

    def test_bias_prefers_rich_nodes(self):
        view = LocalView(owner=99, members=range(0, 50))
        selector = CapabilityBiasedSelector(random.Random(5), self.capability, bias=2.0)
        rich_picks = 0
        for _ in range(300):
            chosen = selector.select(view, 3)
            rich_picks += sum(1 for c in chosen if c < 5)
        uniform_expectation = 300 * 3 * (5 / 50)
        assert rich_picks > 2 * uniform_expectation

    def test_bias_zero_is_uniform(self):
        view = LocalView(owner=99, members=range(0, 50))
        selector = CapabilityBiasedSelector(random.Random(5), self.capability, bias=0.0)
        chosen = selector.select(view, 10)
        assert len(set(chosen)) == 10

    def test_select_all_returns_everything(self):
        view = LocalView(owner=99, members=[1, 2, 3])
        selector = CapabilityBiasedSelector(random.Random(5), self.capability)
        assert sorted(selector.select(view, 5)) == [1, 2, 3]

    def test_no_duplicates(self):
        view = LocalView(owner=99, members=range(0, 20))
        selector = CapabilityBiasedSelector(random.Random(6), self.capability, bias=1.0)
        for _ in range(50):
            chosen = selector.select(view, 8)
            assert len(chosen) == len(set(chosen))

    def test_negative_bias_rejected(self):
        with pytest.raises(ValueError):
            CapabilityBiasedSelector(random.Random(1), self.capability, bias=-1.0)
