"""Property-based tests of substrate invariants (engine, uplink, views).

These guard the foundations everything else rests on: event ordering
under arbitrary schedule/cancel interleavings, work conservation of the
uplink queue, and sampling sanity of membership views.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.membership.view import LocalView
from repro.net.bandwidth import UplinkQueue
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=50))
def test_engine_executes_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=50, deadline=None)
@given(entries=st.lists(st.tuples(st.floats(min_value=0.0, max_value=10.0),
                                  st.booleans()),
                        min_size=1, max_size=40))
def test_engine_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for i, (delay, cancel) in enumerate(entries):
        handles.append((sim.schedule(delay, lambda i=i: fired.append(i)), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    cancelled = {i for i, (_, cancel) in enumerate(entries) if cancel}
    assert set(fired) == set(range(len(entries))) - cancelled


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_engine_nested_scheduling_keeps_clock_monotone(seed):
    rng = random.Random(seed)
    sim = Simulator()
    observed = []

    def spawn(depth):
        observed.append(sim.now)
        if depth > 0:
            for _ in range(rng.randint(0, 2)):
                sim.schedule(rng.uniform(0.0, 1.0), lambda: spawn(depth - 1))

    sim.schedule(0.0, lambda: spawn(4))
    sim.run()
    assert observed == sorted(observed)


# ----------------------------------------------------------------------
# uplink queue
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=100_000),
                      min_size=1, max_size=30),
       capacity=st.floats(min_value=1_000.0, max_value=1e8))
def test_uplink_work_conservation(sizes, capacity):
    """Back-to-back datagrams finish exactly after total wire time."""
    link = UplinkQueue(capacity)
    last_exit = 0.0
    for size in sizes:
        last_exit = link.enqueue(0.0, size)
    total_bits = sum(sizes) * 8.0
    assert last_exit * capacity >= total_bits * 0.999999
    assert last_exit * capacity <= total_bits * 1.000001


@settings(max_examples=50, deadline=None)
@given(events=st.lists(st.tuples(st.floats(min_value=0.0, max_value=10.0),
                                 st.integers(min_value=1, max_value=10_000)),
                       min_size=1, max_size=30),
       capacity=st.floats(min_value=1_000.0, max_value=1e7))
def test_uplink_fifo_exit_times_monotone(events, capacity):
    """Exit times never decrease regardless of arrival pattern, and every
    datagram exits no earlier than arrival + its own wire time."""
    link = UplinkQueue(capacity)
    last_exit = 0.0
    for arrival, size in sorted(events):
        exit_time = link.enqueue(arrival, size)
        assert exit_time >= last_exit
        assert exit_time >= arrival + size * 8.0 / capacity - 1e-9
        last_exit = exit_time


@settings(max_examples=50, deadline=None)
@given(events=st.lists(st.tuples(st.floats(min_value=0.0, max_value=5.0),
                                 st.integers(min_value=1, max_value=5_000)),
                       min_size=1, max_size=30))
def test_uplink_utilization_bounded(events):
    link = UplinkQueue(100_000.0)
    for arrival, size in sorted(events):
        link.enqueue(arrival, size)
    assert 0.0 <= link.utilization(5.0) <= 1.0
    assert link.bytes_sent == sum(size for _, size in events)


# ----------------------------------------------------------------------
# membership views
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(members=st.sets(st.integers(0, 100), max_size=40),
       k=st.integers(0, 50), seed=st.integers(0, 1000))
def test_view_sampling_properties(members, k, seed):
    view = LocalView(owner=999, members=members)
    sample = view.sample(k, random.Random(seed))
    assert len(sample) == min(max(k, 0), len(members))
    assert len(set(sample)) == len(sample)
    assert all(member in members for member in sample)
    assert 999 not in sample
