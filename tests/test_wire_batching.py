"""Cross-shard wire batching: packing, interning, parity and counters.

The contract under test: batching a window's cross-shard outbox into one
packed buffer per peer shard is a pure *wire encoding* change — the
sharded run's metric summaries stay byte-identical to the per-envelope
escape hatch (``ShardRouter(batch_wire=False)``, the PR 4 format kept
for exactly this comparison) and therefore to the serial run — while the
serialized bytes drop, because multicast payloads are interned (one blob
per peer shard, not one per destination) and header fields travel as
struct rows instead of pickled tuples.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import ConstantLatency
from repro.net.message import Envelope, intern_kind
from repro.net.network import Network
from repro.net.shard import (EVENT_CRASH, EVENT_JOIN, WIRE_BATCH_TAG,
                             WIRE_CONTROL_TAG, ShardRouter, _decode_batch,
                             encode_envelope, run_sharded, window_count)
from repro.net.stats import NetworkStats
from repro.sim.engine import Simulator
from repro.workloads.distributions import REF_691
from repro.workloads.scenario import ScenarioConfig


class FakePayload:
    __slots__ = ("kind", "kind_id", "_size")

    def __init__(self, kind="wb-test", size=100):
        self.kind = kind
        self.kind_id = intern_kind(kind, register=True)
        self._size = size

    def wire_size(self):
        return self._size


class Sink:
    def __init__(self):
        self.received = []

    def on_message(self, envelope):
        self.received.append(envelope)


def sharded_config(**overrides) -> ScenarioConfig:
    base = dict(protocol="heap", n_nodes=60, duration=2.0, drain=4.0,
                seed=9, distribution=REF_691,
                latency_rng="per-pair", latency_floor=0.02)
    base.update(overrides)
    return ScenarioConfig(**base)


def summary_blob(result) -> str:
    from repro.metrics.summary import standard_bundle, summarize

    return json.dumps(summarize(result, standard_bundle()), sort_keys=True)


# ----------------------------------------------------------------------
# parity: batching is invisible to the results
# ----------------------------------------------------------------------
class TestBatchingParity:
    def test_batched_matches_escape_hatch_and_serial(self):
        from repro.experiments.runner import run_scenario

        config = sharded_config()
        serial = summary_blob(run_scenario(config))
        sharded = config.with_(shards=2)
        batched = run_sharded(sharded, processes=False)
        escape = run_sharded(sharded, processes=False, batch_wire=False)
        assert summary_blob(batched) == serial
        assert summary_blob(escape) == serial

    def test_batched_process_workers_match_escape_hatch(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork workers")
        config = sharded_config(n_nodes=50, shards=2)
        batched = run_sharded(config, processes=True)
        escape = run_sharded(config, processes=True, batch_wire=False)
        assert summary_blob(batched) == summary_blob(escape)

    def test_batching_reduces_serialized_bytes(self):
        """The point of the PR: fewer bytes cross the shard boundary."""
        config = sharded_config(shards=2)
        batched = run_sharded(config, processes=False)
        escape = run_sharded(config, processes=False, batch_wire=False)
        b, e = batched.net.stats, escape.net.stats
        assert b.wire_envelopes == e.wire_envelopes  # same traffic ...
        assert b.wire_buffers < e.wire_buffers       # ... fewer units
        assert 0 < b.wire_bytes < e.wire_bytes       # ... fewer bytes
        # Interning bites: the batched payload bytes beat per-envelope
        # pickling, which by construction cannot dedup anything.
        assert b.wire_payload_bytes < b.wire_payload_bytes_before
        assert b.wire_payload_bytes_before == e.wire_payload_bytes_before
        assert e.wire_payload_bytes == e.wire_payload_bytes_before

    def test_wire_counters_survive_the_harvest_merge(self):
        config = sharded_config(shards=3)
        merged = run_sharded(config, processes=False)
        summary = merged.net.stats.wire_summary()
        assert summary["buffers"] > 0
        assert summary["envelopes"] > 0
        assert summary["bytes"] > 0
        assert (summary["payload_bytes_after_interning"]
                <= summary["payload_bytes_before_interning"])

    def test_window_count_matches_wire_buffer_ceiling(self):
        config = sharded_config(shards=2)
        windows = window_count(config)
        assert windows == pytest.approx(config.end_time
                                        / config.latency_floor, abs=1)
        merged = run_sharded(config, processes=False)
        # Per shard pair at most one buffer per window in each direction.
        assert merged.net.stats.wire_buffers <= windows * 2


# ----------------------------------------------------------------------
# interning: one payload blob per peer shard
# ----------------------------------------------------------------------
class TestMulticastInterning:
    def _fanout_outboxes(self):
        """send_many one payload from node 0 across two peer shards."""
        sim = Simulator()
        router = ShardRouter(owned={0, 3, 6}, shards=3)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        for node in range(8):
            net.attach(node, Sink(), 1e9)
        payload = FakePayload(kind="wb-fanout", size=64)
        # Shard 1 owns {1, 4, 7}; shard 2 owns {2, 5}.
        net.send_many(0, [1, 4, 7, 2, 5], payload)
        sim.run()
        return net, router.take_outboxes(), payload

    def test_one_payload_blob_per_peer_shard(self):
        net, outboxes, payload = self._fanout_outboxes()
        assert outboxes[0] == []
        assert len(outboxes[1]) == 1 and len(outboxes[2]) == 1
        for target, expected_rows in ((1, 3), (2, 2)):
            tag, n_rows, header, blob = outboxes[target][0]
            assert tag == WIRE_BATCH_TAG
            assert n_rows == expected_rows
            pool = pickle.loads(blob)
            assert len(pool) == 1  # ONE blob despite the fan-out
            assert pool[0].kind == "wb-fanout"

    def test_decoded_rows_share_the_interned_payload(self):
        net, outboxes, payload = self._fanout_outboxes()
        envelopes = list(_decode_batch(outboxes[1][0]))
        assert [e.dst for e in envelopes] == [1, 4, 7]
        assert len({id(e.payload) for e in envelopes}) == 1
        assert all(e.size_bytes == envelopes[0].size_bytes
                   for e in envelopes)

    def test_interning_counters_are_exact(self):
        net, outboxes, payload = self._fanout_outboxes()
        stats = net.stats
        individual = len(pickle.dumps(payload,
                                      protocol=pickle.HIGHEST_PROTOCOL))
        pooled = len(pickle.dumps([payload],
                                  protocol=pickle.HIGHEST_PROTOCOL))
        assert stats.wire_buffers == 2
        assert stats.wire_envelopes == 5
        assert stats.wire_payload_bytes_before == 5 * individual
        assert stats.wire_payload_bytes == 2 * pooled
        assert stats.wire_payload_bytes < stats.wire_payload_bytes_before

    def test_interning_resets_at_the_barrier(self):
        sim = Simulator()
        router = ShardRouter(owned={0}, shards=2)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        net.attach(0, Sink(), 1e9)
        net.attach(1, Sink(), 1e9)
        payload = FakePayload(kind="wb-rewindow", size=32)
        net.send(0, 1, payload)
        sim.run()
        first = router.take_outboxes()
        net.send(0, 1, payload)  # same object, next window
        sim.run(until=sim.now + 1.0)
        second = router.take_outboxes()
        # A fresh window re-ships the payload: no cross-window interning.
        assert len(first[1]) == 1 and len(second[1]) == 1
        assert len(pickle.loads(second[1][0][3])) == 1


# ----------------------------------------------------------------------
# decode: batches deliver exactly like per-envelope wires
# ----------------------------------------------------------------------
class TestBatchInjectEquivalence:
    def _sender_outbox(self, batch_wire):
        """Route a mixed-arrival burst at shard 1 and take the outbox."""
        sim = Simulator()
        router = ShardRouter(owned={0}, shards=2, batch_wire=batch_wire)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        net.attach(0, Sink(), 1e9)
        small = FakePayload(kind="wb-small", size=40)
        big = FakePayload(kind="wb-big", size=400)
        for payload, arrival in ((small, 0.2), (small, 0.2), (big, 0.3),
                                 (small, 0.2), (big, 0.3)):
            envelope = Envelope(0, 1, payload, payload.wire_size() + 28,
                                0.1, arrival)
            router.route(envelope)
        return router.take_outboxes()[1]

    def _deliver(self, wires):
        sim = Simulator()
        router = ShardRouter(owned={1}, shards=2)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        sink = Sink()
        net.attach(1, sink, 1e9)
        router.inject(wires)
        sim.run()
        order = [(e.payload.kind, e.arrival_time, e.size_bytes)
                 for e in sink.received]
        return order, sim.events_executed, net.stats

    def test_batch_and_per_envelope_wires_deliver_identically(self):
        batched_order, batched_events, batched_stats = self._deliver(
            self._sender_outbox(batch_wire=True))
        escape_order, escape_events, escape_stats = self._deliver(
            self._sender_outbox(batch_wire=False))
        assert batched_order == escape_order
        assert len(batched_order) == 5
        # route_many groups same-arrival rows into the same arrival
        # buckets route() would have used: same event count, same
        # receiver-side accounting.
        assert batched_events == escape_events == 2
        assert batched_stats.delivered == escape_stats.delivered == 5
        assert (batched_stats.received_bytes_by_kind
                == escape_stats.received_bytes_by_kind)

    def test_corrupt_header_length_raises(self):
        (tag, n_rows, header, blob), = self._sender_outbox(batch_wire=True)
        with pytest.raises(ValueError, match="corrupt"):
            self._deliver([(tag, n_rows + 1, header, blob)])

    def test_kind_mismatch_in_batch_raises(self):
        import struct

        from repro.net.shard import _ROW

        (tag, n_rows, header, blob), = self._sender_outbox(batch_wire=True)
        row = list(_ROW.unpack(header[:_ROW.size]))
        row[0] = intern_kind("wb-wrong-kind", register=True)
        tampered = _ROW.pack(*row) + header[_ROW.size:]
        with pytest.raises(ValueError, match="kind mismatch"):
            self._deliver([(tag, n_rows, tampered, blob)])

    def test_inject_accepts_mixed_wire_formats(self):
        payload = FakePayload(kind="wb-mixed", size=24)
        envelope = Envelope(0, 1, payload, 52, 0.0, 0.4)
        single = encode_envelope(envelope, payload.kind_id)
        order, events, stats = self._deliver(
            self._sender_outbox(batch_wire=True) + [single])
        assert len(order) == 6
        assert order[-1] == ("wb-mixed", 0.4, 52)


# ----------------------------------------------------------------------
# property: any envelope/control mix survives the codec byte-exact
# ----------------------------------------------------------------------
_times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False, width=64)

#: ("env", src, dst(odd -> shard 1), payload_idx, size, send, exit, arrival)
_envelope_items = st.tuples(
    st.just("env"), st.integers(0, 19),
    st.integers(0, 9).map(lambda n: 2 * n + 1),
    st.integers(0, 3), st.integers(0, 10**9), _times, _times, _times)

#: ("ctl", event, node_id(even -> owned by the sender), event_time)
_control_items = st.tuples(
    st.just("ctl"), st.sampled_from((EVENT_CRASH, EVENT_JOIN)),
    st.integers(0, 9).map(lambda n: 2 * n), _times)


class TestPackedBufferRoundTrip:
    """The packed window buffer is lossless for arbitrary row mixes.

    Rows are driven through the real sender (``route`` for envelopes,
    ``on_membership_event`` for membership announcements) and the real
    decoder, so the property covers the full codec path: struct packing,
    payload-pool interning, negative-``kind_id`` escape for control rows
    — including control-only buffers, whose payload pool is empty.
    """

    @settings(max_examples=40, deadline=None)
    @given(items=st.lists(st.one_of(_envelope_items, _control_items),
                          max_size=40))
    def test_round_trip_preserves_every_row(self, items):
        sim = Simulator()
        router = ShardRouter(owned=set(range(0, 20, 2)), shards=2)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        pool = [FakePayload(kind=f"wb-prop-{i}", size=10 * (i + 1))
                for i in range(4)]
        sent_envelopes, sent_controls = [], []
        for item in items:
            if item[0] == "env":
                _, src, dst, idx, size, send, exit_, arrival = item
                envelope = Envelope(src, dst, pool[idx], size, send, arrival)
                envelope._exit_time = exit_
                router.route(envelope)
                sent_envelopes.append(
                    (src, dst, pool[idx].kind, size, send, exit_, arrival))
            else:
                _, event, node_id, event_time = item
                router.on_membership_event(event, node_id, event_time)
                sent_controls.append((event, node_id, 0, event_time))

        controls = []
        decoded = []
        for wire in router.take_outboxes()[1]:
            assert wire[0] == WIRE_BATCH_TAG
            decoded.extend(_decode_batch(
                wire, lambda *control: controls.append(control)))

        assert [(e.src, e.dst, e.payload.kind, e.size_bytes, e.send_time,
                 e._exit_time, e.arrival_time) for e in decoded] \
            == sent_envelopes
        assert controls == sent_controls
        assert net.stats.wire_control_rows == len(sent_controls)
        assert net.stats.wire_envelopes == len(sent_envelopes)
        # Interning: rows that shipped the same payload object still
        # share one object after the round trip.
        by_kind = {}
        for envelope in decoded:
            by_kind.setdefault(envelope.payload.kind, set()).add(
                id(envelope.payload))
        assert all(len(ids) == 1 for ids in by_kind.values())

    @settings(max_examples=25, deadline=None)
    @given(items=st.lists(_control_items, max_size=20))
    def test_escape_hatch_ships_verbatim_control_tuples(self, items):
        sim = Simulator()
        router = ShardRouter(owned=set(range(0, 20, 2)), shards=2,
                             batch_wire=False)
        Network(sim, latency=ConstantLatency(0.01), router=router)
        for _, event, node_id, event_time in items:
            router.on_membership_event(event, node_id, event_time)
        assert router.take_outboxes()[1] \
            == [(WIRE_CONTROL_TAG, event, node_id, 0, event_time)
                for _, event, node_id, event_time in items]


# ----------------------------------------------------------------------
# membership control rows: owner-emitted, replica-verified
# ----------------------------------------------------------------------
class TestMembershipControlRows:
    def _router(self, owned, batch_wire=True):
        sim = Simulator()
        router = ShardRouter(owned=owned, shards=2, batch_wire=batch_wire)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        for node in owned:
            net.attach(node, Sink(), 1e9)
        return router, net

    @pytest.mark.parametrize("batch_wire", (True, False))
    def test_replica_agreement_verifies_silently(self, batch_wire):
        sender, _ = self._router({0, 2}, batch_wire)
        receiver, _ = self._router({1, 3}, batch_wire)
        sender.on_membership_event(EVENT_CRASH, 0, 1.5)
        wires = sender.take_outboxes()[1]
        assert len(wires) == 1
        # The receiver's replica produced the same crash at the same time.
        receiver.on_membership_event(EVENT_CRASH, 0, 1.5)
        receiver.inject(wires)  # no divergence -> no error

    @pytest.mark.parametrize("batch_wire", (True, False))
    def test_missing_replica_event_raises(self, batch_wire):
        sender, _ = self._router({0, 2}, batch_wire)
        receiver, _ = self._router({1, 3}, batch_wire)
        sender.on_membership_event(EVENT_CRASH, 2, 0.75)
        wires = sender.take_outboxes()[1]
        with pytest.raises(RuntimeError, match="membership divergence"):
            receiver.inject(wires)

    def test_mismatched_event_time_raises(self):
        sender, _ = self._router({0, 2})
        receiver, _ = self._router({1, 3})
        sender.on_membership_event(EVENT_CRASH, 0, 1.5)
        wires = sender.take_outboxes()[1]
        receiver.on_membership_event(EVENT_CRASH, 0, 1.25)
        with pytest.raises(RuntimeError, match="out of sync"):
            receiver.inject(wires)

    def test_unowned_events_are_recorded_but_not_announced(self):
        router, net = self._router({0, 2})
        router.on_membership_event(EVENT_CRASH, 1, 2.0)  # shard 1's node
        assert router.take_outboxes() == [[], []]
        assert net.stats.wire_control_rows == 0

    def test_control_rows_do_not_count_as_envelopes(self):
        sender, net = self._router({0, 2})
        payload = FakePayload(kind="wb-ctl-mix", size=48)
        sender.route(Envelope(0, 1, payload, 76, 0.1, 0.2))
        sender.on_membership_event(EVENT_CRASH, 0, 0.15)
        sender.take_outboxes()
        assert net.stats.wire_envelopes == 1
        assert net.stats.wire_control_rows == 1
        assert net.stats.wire_summary()["control_rows"] == 1

    def test_decoding_control_rows_without_handler_raises(self):
        sender, _ = self._router({0, 2})
        sender.on_membership_event(EVENT_CRASH, 0, 1.0)
        (wire,), = [sender.take_outboxes()[1]]
        with pytest.raises(ValueError, match="control handler"):
            list(_decode_batch(wire))


class TestEscapeHatchStats:
    def test_per_envelope_wire_bytes_count_whole_tuples(self):
        sim = Simulator()
        router = ShardRouter(owned={0}, shards=2, batch_wire=False)
        net = Network(sim, latency=ConstantLatency(0.01), router=router)
        net.attach(0, Sink(), 1e9)
        net.attach(1, Sink(), 1e9)
        net.send(0, 1, FakePayload(kind="wb-tuple", size=30))
        sim.run()
        wire = router.take_outboxes()[1][0]
        expected = len(pickle.dumps(wire, protocol=pickle.HIGHEST_PROTOCOL))
        assert net.stats.wire_bytes == expected
        assert net.stats.wire_buffers == net.stats.wire_envelopes == 1
