"""Behavioural tests for the gossip dissemination nodes."""

import dataclasses
import random

import pytest

from repro.core.config import GossipConfig
from repro.core.heap import HeapGossipNode
from repro.core.messages import Propose, Request, Serve
from repro.core.standard import StandardGossipNode
from repro.membership.directory import MembershipDirectory
from repro.net.latency import ConstantLatency
from repro.net.loss import BernoulliLoss
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.streaming.packets import StreamPacket


BASE_CONFIG = GossipConfig(randomize_phase=False)


def packet(packet_id, publish_time=0.0):
    return StreamPacket(packet_id=packet_id, window_id=0,
                        publish_time=publish_time, size_bytes=1316)


def build_cluster(n, node_class=StandardGossipNode, config=BASE_CONFIG,
                  capability=10e6, latency=0.01, seed=0, loss=None):
    sim = Simulator()
    loss_model = loss(random.Random(seed + 999)) if loss else None
    net = Network(sim, latency=ConstantLatency(latency), loss=loss_model)
    directory = MembershipDirectory(sim, random.Random(seed), mean_detection_delay=0.0)
    directory.register_all(range(n))
    nodes = []
    for node_id in range(n):
        cap = capability(node_id) if callable(capability) else capability
        node = node_class(sim, net, node_id, directory.view_of(node_id),
                          config, random.Random(seed * 1000 + node_id), cap)
        net.attach(node_id, node, upload_capacity_bps=cap)
        nodes.append(node)
    for node in nodes:
        node.start()
    return sim, net, directory, nodes


class TestThreePhaseFlow:
    def test_publish_delivers_locally_and_proposes(self):
        sim, net, directory, nodes = build_cluster(5)
        nodes[0].publish(packet(0))
        assert nodes[0].has_packet(0)
        assert nodes[0].proposes_sent == min(7, 4)  # view has only 4 peers

    def test_packet_reaches_all_nodes(self):
        sim, net, directory, nodes = build_cluster(10)
        nodes[0].publish(packet(0))
        sim.run(until=5.0)
        assert all(node.has_packet(0) for node in nodes)

    def test_no_node_delivers_twice(self):
        sim, net, directory, nodes = build_cluster(12)
        for i in range(5):
            nodes[0].publish(packet(i))
        sim.run(until=5.0)
        for node in nodes:
            assert node.log.duplicates == 0

    def test_payload_fanin_is_one(self):
        """Each node receives each payload from exactly one serve message
        (three-phase property: 'a packet may never be delivered more than
        once to the same node')."""
        sim, net, directory, nodes = build_cluster(10)
        serves_by_dst = {}
        original = net.on_deliver

        def observe(env):
            if env.payload.kind == "serve":
                for p in env.payload.packets:
                    key = (env.dst, p.packet_id)
                    serves_by_dst[key] = serves_by_dst.get(key, 0) + 1

        net.on_deliver = observe
        nodes[0].publish(packet(0))
        sim.run(until=5.0)
        assert all(count == 1 for count in serves_by_dst.values())

    def test_infect_and_die_proposes_each_id_once(self):
        """A node proposes a given id in at most one round (to <= fanout peers)."""
        sim, net, directory, nodes = build_cluster(8)
        propose_rounds = {}  # (src, id) -> set of send times

        def observe(env):
            if env.payload.kind == "propose":
                for packet_id in env.payload.ids:
                    propose_rounds.setdefault((env.src, packet_id), set()).add(
                        round(env.send_time, 6))

        net.on_deliver = observe
        nodes[0].publish(packet(0))
        sim.run(until=5.0)
        for (src, packet_id), times in propose_rounds.items():
            assert len(times) == 1, f"node {src} proposed {packet_id} in {times}"

    def test_ids_batched_per_round(self):
        """Packets delivered within one period are proposed together."""
        sim, net, directory, nodes = build_cluster(6)
        batches = []

        def observe(env):
            if env.payload.kind == "propose" and env.src == 1:
                batches.append(len(env.payload.ids))

        net.on_deliver = observe
        # Feed node 1 three packets directly within a single period.
        for i in range(3):
            nodes[1]._on_serve(0, Serve([packet(i)]))
        sim.run(until=1.0)
        assert batches
        assert max(batches) == 3

    def test_request_only_new_ids(self):
        config = dataclasses.replace(BASE_CONFIG, retransmission=False)
        sim, net, directory, nodes = build_cluster(4, config=config)
        node = nodes[1]
        node._on_serve(0, Serve([packet(0)]))  # already has packet 0
        requests = []

        def observe(env):
            if env.payload.kind == "request" and env.src == 1:
                requests.append(tuple(env.payload.ids))

        net.on_deliver = observe
        node._on_propose(2, Propose([0, 1]))
        sim.run(until=1.0)
        assert requests == [(1,)]

    def test_second_proposer_not_requested(self):
        sim, net, directory, nodes = build_cluster(4)
        node = nodes[1]
        node._on_propose(2, Propose([5]))
        node._on_propose(3, Propose([5]))
        assert node.requests_sent == 1

    def test_serve_only_held_packets(self):
        sim, net, directory, nodes = build_cluster(4)
        for node in nodes:
            node.stop()  # quiesce: no proposal rounds interfere
        node = nodes[0]
        node._on_serve(3, Serve([packet(0)]))  # hand node 0 the packet
        serves = []

        def observe(env):
            if env.payload.kind == "serve":
                serves.append([p.packet_id for p in env.payload.packets])

        net.on_deliver = observe
        node._on_request(1, Request([0, 99]))
        sim.run(until=0.05)
        assert serves == [[0]]

    def test_request_for_unknown_ids_not_served(self):
        sim, net, directory, nodes = build_cluster(4)
        nodes[0]._on_request(1, Request([42]))
        assert nodes[0].serves_sent == 0


class TestRetransmission:
    def test_lost_serve_recovered_by_retry(self):
        # 10% loss: with retransmission everything arrives; without it, a
        # lost request or serve is a permanent hole (the id stays in
        # eRequested forever), so delivery is strictly worse.
        def run(retransmission):
            config = dataclasses.replace(
                BASE_CONFIG, retransmission=retransmission,
                retransmission_period=0.3, retransmission_retries=4)
            sim, net, directory, nodes = build_cluster(
                8, config=config, loss=lambda rng: BernoulliLoss(rng, 0.1), seed=3)
            for i in range(10):
                sim.schedule(i * 0.02, lambda i=i: nodes[0].publish(packet(i)))
            sim.run(until=30.0)
            return sum(node.has_packet(i) for node in nodes for i in range(10))

        assert run(retransmission=True) == 8 * 10
        assert run(retransmission=False) < 8 * 10

    def test_abandoned_ids_requestable_from_next_proposer(self):
        config = dataclasses.replace(BASE_CONFIG, retransmission_period=0.2,
                                     retransmission_retries=0)
        sim, net, directory, nodes = build_cluster(4, config=config)
        node = nodes[1]
        # Propose from node 2, but node 2 never serves (it has nothing).
        node._on_propose(2, Propose([7]))
        sim.run(until=1.0)  # retransmission gives up, releases id 7
        assert node.retransmission_stats.abandoned == 1
        node._on_propose(3, Propose([7]))
        assert node.requests_sent == 2


class TestFanouts:
    def test_standard_fanout_constant(self):
        sim, net, directory, nodes = build_cluster(30, StandardGossipNode)
        assert all(node.get_fanout() == 7 for node in nodes)
        assert nodes[0].current_fanout() == 7.0

    def test_heap_initial_fanout_is_base(self):
        sim, net, directory, nodes = build_cluster(10, HeapGossipNode)
        # Before aggregation converges the estimate equals own capability.
        assert nodes[0].current_fanout() == pytest.approx(7.0)

    def test_heap_fanout_adapts_to_relative_capability(self):
        def capability(node_id):
            return 2_000_000.0 if node_id < 2 else 500_000.0

        sim, net, directory, nodes = build_cluster(
            20, HeapGossipNode, capability=capability)
        sim.run(until=5.0)
        rich = nodes[0].current_fanout()
        poor = nodes[5].current_fanout()
        assert rich > 2.5 * poor
        true_average = (2 * 2_000_000 + 18 * 500_000) / 20
        assert nodes[0].current_fanout() == pytest.approx(
            7.0 * 2_000_000 / true_average, rel=0.15)

    def test_heap_average_fanout_near_base(self):
        def capability(node_id):
            return 3_000_000.0 if node_id < 3 else 512_000.0

        sim, net, directory, nodes = build_cluster(
            30, HeapGossipNode, capability=capability)
        sim.run(until=5.0)
        mean = sum(node.current_fanout() for node in nodes) / 30
        assert mean == pytest.approx(7.0, rel=0.1)

    def test_heap_min_fanout_floor(self):
        config = dataclasses.replace(BASE_CONFIG, min_fanout=1.0)

        def capability(node_id):
            return 10_000_000.0 if node_id == 0 else 100_000.0

        sim, net, directory, nodes = build_cluster(
            10, HeapGossipNode, config=config, capability=capability)
        sim.run(until=5.0)
        assert nodes[5].current_fanout() >= 1.0


class TestLifecycle:
    def test_stop_halts_gossip(self):
        sim, net, directory, nodes = build_cluster(5)
        nodes[0].publish(packet(0))
        for node in nodes:
            node.stop()
        before = net.stats.count_by_kind["propose"]
        sim.run(until=5.0)
        # Reactive request/serve responses to in-flight proposals still
        # happen, but no node starts a new gossip round.
        assert net.stats.count_by_kind["propose"] == before

    def test_running_property(self):
        sim, net, directory, nodes = build_cluster(3)
        assert nodes[0].running
        nodes[0].stop()
        assert not nodes[0].running

    def test_heap_stop_also_stops_aggregation(self):
        sim, net, directory, nodes = build_cluster(5, HeapGossipNode)
        nodes[0].stop()
        assert not nodes[0].aggregator._timer.running
