"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_executed == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]
    assert sim.now == 1.5


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, lambda label=label: order.append(label))
    sim.run()
    assert order == list("abcde")


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(2.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.0]


def test_schedule_in_the_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.events_executed == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert not handle.pending


def test_events_scheduled_during_execution_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_call_soon_runs_at_current_time_after_peers():
    sim = Simulator()
    order = []

    def event():
        order.append("event")
        sim.call_soon(lambda: order.append("soon"))

    sim.schedule(1.0, event)
    sim.schedule(1.0, lambda: order.append("peer"))
    sim.run()
    assert order == ["event", "peer", "soon"]


def test_run_until_stops_at_horizon_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    stopped = sim.run(until=3.0)
    assert fired == [1]
    assert stopped == 3.0
    assert sim.now == 3.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_includes_events_at_exact_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("edge"))
    sim.run(until=3.0)
    assert fired == ["edge"]


def test_run_max_events_stops_early_without_clock_jump():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(until=100.0, max_events=2)
    assert fired == [0, 1]
    assert sim.now == 2.0


def test_step_returns_false_on_empty_heap():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count == 1
    assert keep.pending


def test_drain_guards_against_runaway():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    with pytest.raises(SimulationError):
        sim.drain(limit=100)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_many_events_deterministic_order():
    sim = Simulator()
    order = []
    import random
    rng = random.Random(42)
    times = [rng.uniform(0, 100) for _ in range(500)]
    for i, t in enumerate(times):
        sim.schedule(t, lambda i=i: order.append(i))
    sim.run()
    expected = [i for _, i in sorted(zip(times, range(500)))]
    assert order == expected
