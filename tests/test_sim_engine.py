"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_executed == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]
    assert sim.now == 1.5


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, lambda label=label: order.append(label))
    sim.run()
    assert order == list("abcde")


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(2.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.0]


def test_schedule_in_the_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.events_executed == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert not handle.pending


def test_events_scheduled_during_execution_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_call_soon_runs_at_current_time_after_peers():
    sim = Simulator()
    order = []

    def event():
        order.append("event")
        sim.call_soon(lambda: order.append("soon"))

    sim.schedule(1.0, event)
    sim.schedule(1.0, lambda: order.append("peer"))
    sim.run()
    assert order == ["event", "peer", "soon"]


def test_run_until_stops_at_horizon_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    stopped = sim.run(until=3.0)
    assert fired == [1]
    assert stopped == 3.0
    assert sim.now == 3.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_includes_events_at_exact_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("edge"))
    sim.run(until=3.0)
    assert fired == ["edge"]


def test_run_max_events_stops_early_without_clock_jump():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(until=100.0, max_events=2)
    assert fired == [0, 1]
    assert sim.now == 2.0


def test_step_returns_false_on_empty_heap():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count == 1
    assert keep.pending


def test_drain_guards_against_runaway():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    with pytest.raises(SimulationError):
        sim.drain(limit=100)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_many_events_deterministic_order():
    sim = Simulator()
    order = []
    import random
    rng = random.Random(42)
    times = [rng.uniform(0, 100) for _ in range(500)]
    for i, t in enumerate(times):
        sim.schedule(t, lambda i=i: order.append(i))
    sim.run()
    expected = [i for _, i in sorted(zip(times, range(500)))]
    assert order == expected


# ----------------------------------------------------------------------
# live pending counter (replaces the historical O(n) heap scan)
# ----------------------------------------------------------------------
class TestPendingCounter:
    def test_counts_scheduled_and_fired(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_count == 2
        sim.run(until=1.0)
        assert sim.pending_count == 1
        sim.run()
        assert sim.pending_count == 0

    def test_cancel_decrements_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_count == 1
        handle.cancel()  # idempotent: must not decrement again
        assert sim.pending_count == 1

    def test_cancel_after_fire_keeps_count_consistent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.0)
        assert sim.pending_count == 1
        handle.cancel()  # already fired: a no-op for accounting
        assert sim.pending_count == 1
        assert handle.cancelled
        assert not handle.pending

    def test_post_at_events_are_counted(self):
        sim = Simulator()
        sim.post_at(1.0, lambda: None)
        sim.post(2.0, lambda: None)
        assert sim.pending_count == 2
        sim.run()
        assert sim.pending_count == 0

    def test_counter_is_not_a_heap_scan(self):
        # Regression guard for the O(n) pending_count scan: the property
        # must answer from counters even with a large pending backlog.
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None)
                   for i in range(5000)]
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending_count == 2500


# ----------------------------------------------------------------------
# cancel()-after-fire and run(until=...) clock-advance edge cases
# ----------------------------------------------------------------------
class TestCancelAndClockEdges:
    def test_cancelled_event_is_skipped_then_cancel_after_fire_is_safe(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, lambda: fired.append("first"))
        sim.run()
        first.cancel()
        # The simulator must stay fully usable after a late cancel.
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]

    def test_run_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0

    def test_run_until_advances_clock_when_queue_drains_early(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_repeated_run_until_is_monotonic(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 4.0, 9.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        assert sim.run(until=2.0) == 2.0
        assert sim.run(until=2.0) == 2.0  # re-running at the horizon: no-op
        assert sim.run(until=5.0) == 5.0
        assert fired == [1.0, 4.0]
        sim.run()
        assert fired == [1.0, 4.0, 9.0]

    def test_scheduling_below_advanced_clock_raises(self):
        sim = Simulator()
        sim.run(until=3.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(2.9, lambda: None)

    def test_max_events_stops_inside_a_same_time_bucket_and_resumes(self):
        sim = Simulator()
        order = []
        for label in "abcd":
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run(max_events=2)
        assert order == ["a", "b"]
        assert sim.now == 1.0
        assert sim.pending_count == 2
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_max_events_resume_honors_horizon(self):
        sim = Simulator()
        order = []
        for label in "ab":
            sim.schedule(2.0, lambda label=label: order.append(label))
        sim.run(max_events=1)
        assert order == ["a"]
        # The interrupted bucket sits at t=2.0, beyond this horizon:
        sim.run(until=1.0)
        assert order == ["a"]
        sim.run(until=2.0)
        assert order == ["a", "b"]


# ----------------------------------------------------------------------
# the fire-and-forget fast path
# ----------------------------------------------------------------------
class TestPostAt:
    def test_post_at_interleaves_with_handles_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append("h1"))
        sim.post_at(1.0, lambda: order.append("p1"))
        sim.schedule_at(1.0, lambda: order.append("h2"))
        sim.post_at(0.5, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "h1", "p1", "h2"]

    def test_post_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            sim.post(-0.1, lambda: None)

    def test_post_events_count_as_executed(self):
        sim = Simulator()
        sim.post(1.0, lambda: None)
        sim.post(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 2


# ----------------------------------------------------------------------
# bucket-queue vs reference-heap ordering equivalence
# ----------------------------------------------------------------------
class ReferenceHeapScheduler:
    """The seed's (time, sequence-number) binary heap, kept as an oracle."""

    def __init__(self):
        import heapq
        self._heapq = heapq
        self._heap = []
        self._seq = 0
        self.now = 0.0

    def schedule_at(self, time, callback):
        self._heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def run(self):
        while self._heap:
            time, _, callback = self._heapq.heappop(self._heap)
            self.now = time
            callback()


def test_bucket_queue_matches_reference_heap_under_timestamp_ties():
    # The satellite concern: the calendar-bucket engine must order
    # same-timestamp events exactly like the (time, seq) heap it
    # replaced, including heavy tie pile-ups and post_at/schedule mixes.
    import random

    rng = random.Random(20260726)
    times = [rng.choice([0.5, 1.0, 1.0, 1.0, 2.5, 2.5, round(rng.uniform(0, 3), 2)])
             for _ in range(400)]

    sim = Simulator()
    reference = ReferenceHeapScheduler()
    got, expected = [], []
    for i, t in enumerate(times):
        if i % 3 == 0:
            sim.post_at(t, lambda i=i: got.append((sim.now, i)))
        else:
            sim.schedule_at(t, lambda i=i: got.append((sim.now, i)))
        reference.schedule_at(
            t, lambda i=i, t=t: expected.append((t, i)))
    sim.run()
    reference.run()
    assert got == expected


def test_bucket_queue_matches_reference_heap_with_nested_scheduling():
    rng_times = [1.0, 1.0, 2.0, 1.0, 3.0]

    sim = Simulator()
    order = []

    def spawn(i, t):
        order.append(i)
        if i < 40:
            # Re-schedule at the same timestamp and a later one: the
            # same-time event must run after all already-queued t events.
            sim.schedule_at(t, lambda: order.append((i, "same")))
            sim.schedule_at(t + 1.0, lambda: order.append((i, "later")))

    for i, t in enumerate(rng_times):
        sim.schedule_at(t, lambda i=i, t=t: spawn(i, t))
    sim.run()

    # Same workload on the reference heap.
    reference = ReferenceHeapScheduler()
    expected = []

    def ref_spawn(i, t):
        expected.append(i)
        if i < 40:
            reference.schedule_at(t, lambda: expected.append((i, "same")))
            reference.schedule_at(t + 1.0, lambda: expected.append((i, "later")))

    for i, t in enumerate(rng_times):
        reference.schedule_at(t, lambda i=i, t=t: ref_spawn(i, t))
    reference.run()
    assert order == expected


def test_exception_during_counted_resume_does_not_replay_events():
    # Regression: a callback raising while run() drains a bucket resumed
    # from a max_events stop must discard the bucket's remainder — not
    # leave it behind to re-execute fired events and corrupt accounting.
    sim = Simulator()
    order = []

    def boom():
        order.append("c")
        raise RuntimeError("boom")

    for entry in ("a", "b"):
        sim.post(1.0, lambda entry=entry: order.append(entry))
    sim.post(1.0, boom)
    sim.post(1.0, lambda: order.append("d"))
    sim.run(max_events=1)
    assert order == ["a"]
    with pytest.raises(RuntimeError):
        sim.run(max_events=10)
    # "d" is discarded with the failing bucket; nothing replays.
    sim.run()
    assert order == ["a", "b", "c"]
    # As in the original heap engine, a callback that raises is not
    # counted as executed ("a" and "b" are).
    assert sim.events_executed == 2
    assert sim.pending_count >= 0
