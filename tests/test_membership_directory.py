"""Unit tests for the membership directory and delayed failure detection."""

import random

import pytest

from repro.membership.directory import MembershipDirectory
from repro.sim.engine import Simulator


def make_directory(n=10, mean_delay=10.0, seed=1):
    sim = Simulator()
    directory = MembershipDirectory(sim, random.Random(seed), mean_detection_delay=mean_delay)
    directory.register_all(range(n))
    return sim, directory


def test_register_populates_views_symmetrically():
    _, directory = make_directory(n=5)
    for node in range(5):
        view = directory.view_of(node)
        assert len(view) == 4
        assert node not in view


def test_register_all_and_alive_count():
    _, directory = make_directory(n=7)
    assert directory.alive_count() == 7
    assert directory.alive_nodes == set(range(7))


def test_duplicate_register_rejected():
    _, directory = make_directory(n=3)
    with pytest.raises(ValueError):
        directory.register(0)


def test_late_join_becomes_visible_everywhere():
    _, directory = make_directory(n=3)
    directory.register(99)
    for node in range(3):
        assert 99 in directory.view_of(node)
    assert len(directory.view_of(99)) == 3


def test_crash_marks_dead_immediately_in_truth():
    sim, directory = make_directory(n=5)
    directory.crash(2)
    assert not directory.is_alive(2)
    assert directory.alive_count() == 4


def test_crash_removal_from_views_is_delayed():
    sim, directory = make_directory(n=5, mean_delay=10.0)
    directory.crash(2)
    # Immediately after the crash survivors still see node 2.
    assert 2 in directory.view_of(0)
    sim.run(until=20.0)  # max delay is 2 * mean = 20s
    for node in (0, 1, 3, 4):
        assert 2 not in directory.view_of(node)


def test_detection_delay_zero_is_immediate():
    sim, directory = make_directory(n=4, mean_delay=0.0)
    directory.crash(1)
    assert 1 not in directory.view_of(0)


def test_detection_delays_average_near_mean():
    sim = Simulator()
    rng = random.Random(42)
    directory = MembershipDirectory(sim, rng, mean_detection_delay=10.0)
    directory.register_all(range(200))
    directory.crash(0)
    # Sample the fraction of views that still contain node 0 at t=10:
    # uniform [0, 20] delays mean about half should have learned by then.
    sim.run(until=10.0)
    still_seeing = sum(1 for n in range(1, 200) if 0 in directory.view_of(n))
    assert 60 < still_seeing < 140
    sim.run(until=20.0)
    assert all(0 not in directory.view_of(n) for n in range(1, 200))


def test_crash_twice_is_noop():
    sim, directory = make_directory(n=3)
    directory.crash(1)
    directory.crash(1)
    assert directory.alive_count() == 2


def test_crash_many():
    sim, directory = make_directory(n=10, mean_delay=0.0)
    directory.crash_many([1, 2, 3])
    assert directory.alive_count() == 7


def test_pick_crash_victims_respects_fraction_and_protection():
    sim, directory = make_directory(n=100)
    victims = directory.pick_crash_victims(0.2, random.Random(7), protect=[0])
    assert len(victims) == 20
    assert 0 not in victims
    assert len(set(victims)) == 20


def test_pick_crash_victims_rejects_bad_fraction():
    _, directory = make_directory(n=10)
    with pytest.raises(ValueError):
        directory.pick_crash_victims(1.5, random.Random(1))


def test_pick_crash_victims_deterministic():
    _, d1 = make_directory(n=50)
    _, d2 = make_directory(n=50)
    v1 = d1.pick_crash_victims(0.5, random.Random(3))
    v2 = d2.pick_crash_victims(0.5, random.Random(3))
    assert v1 == v2


def test_negative_detection_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        MembershipDirectory(sim, random.Random(1), mean_detection_delay=-1.0)
