"""Tests for the metrics layer, on a shared small experiment run."""

import math

import pytest

from repro import ScenarioConfig, run_scenario
from repro.analysis.cdf import Cdf
from repro.metrics import (
    ascii_table,
    cdf_row,
    format_percent,
    jitter_cdf,
    jitter_free_fraction_by_class,
    jitter_free_node_percentage_by_class,
    lag_cdf_delivery_ratio,
    lag_cdf_jitter_free,
    lag_cdf_max_jitter,
    mean_jittered_delivery_by_class,
    mean_lag_by_class,
    per_node_lag_jitter_free,
    per_node_lag_max_jitter,
    utilization_by_class,
    window_delivery_over_time,
)
from repro.metrics.bandwidth import absolute_upload_by_class
from repro.metrics.report import format_seconds
from repro.workloads import REF_691


@pytest.fixture(scope="module")
def result():
    return run_scenario(ScenarioConfig(
        protocol="heap", distribution=REF_691,
        n_nodes=35, duration=8.0, drain=15.0, seed=13))


class TestLagMetrics:
    def test_per_node_lag_covers_all_receivers(self, result):
        lags = per_node_lag_jitter_free(result)
        assert set(lags) == set(result.receiver_ids())
        assert all(lag >= 0 for lag in lags.values())

    def test_max_jitter_lag_never_exceeds_jitter_free(self, result):
        strict = per_node_lag_jitter_free(result)
        relaxed = per_node_lag_max_jitter(result, 0.2)
        for node_id in strict:
            assert relaxed[node_id] <= strict[node_id]

    def test_lag_cdfs_are_consistent(self, result):
        strict = lag_cdf_jitter_free(result)
        relaxed = lag_cdf_max_jitter(result, 0.2)
        for x in (0.5, 1.0, 5.0, 20.0):
            assert relaxed.fraction_at(x) >= strict.fraction_at(x)

    def test_delivery_ratio_cdf(self, result):
        cdf = lag_cdf_delivery_ratio(result, ratio=0.99)
        assert len(cdf) == len(result.receiver_ids())
        assert cdf.fraction_at(60.0) > 0.9

    def test_mean_lag_by_class_has_all_classes(self, result):
        means = mean_lag_by_class(result)
        assert set(means) == {"256kbps", "768kbps", "2Mbps"}
        assert all(m >= 0 for m in means.values())

    def test_jitter_free_node_percentage(self, result):
        at_big_lag = jitter_free_node_percentage_by_class(result, 30.0)
        at_zero_lag = jitter_free_node_percentage_by_class(result, 0.0)
        for label in at_big_lag:
            assert at_big_lag[label] >= at_zero_lag[label]
            assert 0.0 <= at_big_lag[label] <= 100.0


class TestJitterMetrics:
    def test_jitter_free_fraction_monotone_in_lag(self, result):
        small = jitter_free_fraction_by_class(result, 0.5)
        large = jitter_free_fraction_by_class(result, 20.0)
        for label in small:
            assert large[label] >= small[label] - 1e-9

    def test_jitter_cdf_offline_near_zero_jitter(self, result):
        cdf = jitter_cdf(result)  # offline
        assert cdf.fraction_at(0.0) == pytest.approx(1.0)

    def test_jittered_delivery_percent_range(self, result):
        table = mean_jittered_delivery_by_class(result, lag=0.5)
        for value in table.values():
            assert 0.0 <= value <= 100.0


class TestBandwidthMetrics:
    def test_utilization_in_range(self, result):
        util = utilization_by_class(result)
        for value in util.values():
            assert 0.0 <= value <= 100.0

    def test_absolute_upload_positive(self, result):
        rates = absolute_upload_by_class(result)
        assert all(rate > 0 for rate in rates.values())

    def test_absolute_upload_bounded_by_capacity(self, result):
        rates = absolute_upload_by_class(result)
        caps = {"256kbps": 256 * 1024, "768kbps": 768 * 1024, "2Mbps": 2048 * 1024}
        for label, rate in rates.items():
            # Drain-phase sends may exceed the in-window average slightly;
            # capacity is still a hard per-second bound.
            assert rate <= caps[label] * (1 + result.config.drain / result.config.duration)


class TestWindowsMetric:
    def test_series_covers_all_windows(self, result):
        series = window_delivery_over_time(result, lag=20.0)
        assert [w for w, _, _ in series] == list(result.windows())
        times = [t for _, t, _ in series]
        assert times == sorted(times)
        assert all(0.0 <= frac <= 100.0 for _, _, frac in series)

    def test_generous_lag_reaches_everyone(self, result):
        series = window_delivery_over_time(result, lag=30.0)
        assert all(frac == 100.0 for _, _, frac in series)


class TestReport:
    def test_format_percent(self):
        assert format_percent(12.345) == "12.3%"
        assert format_percent(float("nan")) == "n/a"

    def test_format_seconds(self):
        assert format_seconds(1.234) == "1.2s"
        assert format_seconds(math.inf) == "never"

    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [["a", "1"], ["long-name", "22"]],
                            title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows same width

    def test_cdf_row_samples_cdf(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        row = cdf_row("label", cdf, [2.0, 10.0])
        assert row == ["label", "50.0%", "100.0%"]
