"""Tests for CDF, statistics and grouping helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cdf import Cdf
from repro.analysis.grouping import group_by
from repro.analysis.stats import mean, median, percentile, stdev


class TestCdf:
    def test_fraction_at(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at(0.5) == 0.0
        assert cdf.fraction_at(1.0) == 0.25
        assert cdf.fraction_at(2.5) == 0.5
        assert cdf.fraction_at(10.0) == 1.0

    def test_fraction_at_with_duplicates(self):
        cdf = Cdf([1.0, 1.0, 1.0, 5.0])
        assert cdf.fraction_at(1.0) == 0.75

    def test_percentile(self):
        cdf = Cdf([10.0, 20.0, 30.0, 40.0])
        assert cdf.percentile(0.25) == 10.0
        assert cdf.percentile(0.5) == 20.0
        assert cdf.percentile(1.0) == 40.0

    def test_percentile_validation(self):
        cdf = Cdf([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(0.0)
        with pytest.raises(ValueError):
            Cdf([]).percentile(0.5)

    def test_infinities_weigh_denominator(self):
        # 2 of 4 nodes never succeed: the CDF saturates at 50%.
        cdf = Cdf([1.0, 2.0, math.inf, math.inf])
        assert cdf.fraction_at(1e12) == 0.5
        assert cdf.finite_fraction() == 0.5

    def test_empty_cdf(self):
        cdf = Cdf([])
        assert cdf.fraction_at(1.0) == 0.0
        assert len(cdf) == 0
        assert cdf.finite_fraction() == 0.0
        assert cdf.points() == []

    def test_points_cover_range(self):
        values = [float(i) for i in range(100)]
        cdf = Cdf(values)
        points = cdf.points(max_points=10)
        assert points[0][0] == 0.0
        assert points[-1] == (99.0, 1.0)
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_property_fraction_monotone(self, values):
        cdf = Cdf(values)
        lo, hi = min(values), max(values)
        assert cdf.fraction_at(lo - 1) == 0.0
        assert cdf.fraction_at(hi) == 1.0
        mid = (lo + hi) / 2
        assert cdf.fraction_at(lo) <= cdf.fraction_at(mid) <= 1.0

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1))
    def test_property_percentile_inverse_of_fraction(self, values):
        cdf = Cdf(values)
        for q in (0.25, 0.5, 0.9, 1.0):
            x = cdf.percentile(q)
            assert cdf.fraction_at(x) >= q


class TestStats:
    def test_mean_skips_infinities(self):
        assert mean([1.0, 3.0, math.inf]) == 2.0

    def test_mean_empty_is_nan(self):
        assert math.isnan(mean([]))
        assert math.isnan(mean([math.inf]))

    def test_median_includes_infinities(self):
        assert median([1.0, math.inf, math.inf]) == math.inf
        assert median([1.0, 2.0, 3.0]) == 2.0
        assert median([1.0, 3.0]) == 2.0

    def test_median_empty_is_nan(self):
        assert math.isnan(median([]))

    def test_percentile(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0
        assert percentile([1.0, 2.0], 1.0) == 2.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        assert math.isnan(percentile([], 0.5))

    def test_stdev(self):
        assert stdev([2.0, 2.0, 2.0]) == 0.0
        assert stdev([1.0, 3.0]) == 1.0
        assert stdev([5.0]) == 0.0


class TestGrouping:
    def test_group_by_key(self):
        groups = group_by(range(6), key=lambda x: x % 2)
        assert groups == {0: [0, 2, 4], 1: [1, 3, 5]}

    def test_group_by_preserves_order(self):
        groups = group_by(["bb", "a", "cc", "d"], key=len)
        assert list(groups) == [2, 1]
        assert groups[2] == ["bb", "cc"]
