"""The adversarial scenario engine: registry, mixes, placement, impact.

Covers the PR 8 contracts:

* the attack catalog registers at import time, rejects duplicates, and
  answers by name;
* ``AttackMix`` parses the CLI syntax, validates exhaustively (every
  violation in one report), and keys stably;
* placement policies are deterministic, topology-aware, and — via a
  hypothesis property — a pure function of (seed, population, capability
  topology);
* the deprecated ``freerider_*`` fields remain a bit-compatible shim
  over ``adversary`` (identical placement, identical run results);
* ``ScenarioConfig.validate`` reports *all* violations in one
  ``ValueError``;
* attack implementations actually misbehave (counters move, advertised
  capability lies) and the ``attack_impact`` reduction is JSON-able.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (AttackMix, attack, attack_catalog, attack_names,
                             attack_impact, effective_adversary, get_attack,
                             is_registered, place_attackers, place_ids)
from repro.adversary.mix import Placement  # noqa: F401  (public alias)
from repro.experiments.runner import run_scenario
from repro.metrics.summary import standard_bundle, summarize
from repro.sim.rng import derive_seed
from repro.workloads.distributions import REF_691
from repro.workloads.scenario import ScenarioConfig, scenario_key


def quick_config(**overrides) -> ScenarioConfig:
    base = dict(protocol="heap", n_nodes=40, duration=2.0, drain=4.0,
                seed=7, distribution=REF_691)
    base.update(overrides)
    return ScenarioConfig(**base)


def blob(result) -> str:
    return json.dumps(summarize(result, standard_bundle()), sort_keys=True)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_catalog_holds_the_five_intree_attacks(self):
        assert set(attack_names()) >= {"underclaim", "nonserve", "spam",
                                       "withhold", "poisoned-view"}

    def test_catalog_entries_are_complete(self):
        for entry in attack_catalog():
            assert entry.role in ("node", "sampler")
            assert entry.channel and entry.detection and entry.param_doc
            assert 0.0 < entry.default_param <= 1.0
            assert isinstance(entry.impl, type)

    def test_get_attack_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="nonserve"):
            get_attack("no-such-attack")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @attack("spam", channel="x", detection="y",
                    default_param=0.5, param_doc="z")
            class Duplicate:  # pragma: no cover
                pass

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown attack role"):
            attack("fresh-name", role="router", channel="x", detection="y",
                   default_param=0.5, param_doc="z")

    def test_is_registered(self):
        assert is_registered("spam")
        assert not is_registered("no-such-attack")

    def test_poisoned_view_requires_cyclon(self):
        assert get_attack("poisoned-view").requires_membership == "cyclon"
        assert get_attack("spam").requires_membership is None


# ----------------------------------------------------------------------
# AttackMix: parsing, validation, identity
# ----------------------------------------------------------------------
class TestAttackMix:
    def test_parse_cli_syntax(self):
        mix = AttackMix.parse("spam=0.1, withhold=0.05",
                              params_text="spam=0.5",
                              victim_policy="edge")
        assert mix.attacks == (("spam", 0.1), ("withhold", 0.05))
        assert mix.param_for("spam") == 0.5
        assert mix.param_for("withhold") == get_attack("withhold").default_param
        assert mix.victim_policy == "edge"
        assert mix.total_fraction == pytest.approx(0.15)
        assert mix.violations() == []

    @pytest.mark.parametrize("text", ("spam", "spam=abc", "=0.1"))
    def test_parse_rejects_malformed_pairs(self, text):
        with pytest.raises(ValueError, match="--attacks"):
            AttackMix.parse(text)

    def test_violations_reported_exhaustively(self):
        mix = AttackMix(attacks=(("no-such", 0.2), ("spam", 1.5)),
                        params=(("withhold", 2.0),),
                        victim_policy="everywhere")
        problems = "\n".join(mix.violations())
        assert "unknown attack 'no-such'" in problems
        assert "attack fraction for 'spam'" in problems
        assert "total attacked fraction" in problems
        assert "parameter override for 'withhold'" in problems
        assert "attack parameter for 'withhold'" in problems
        assert "unknown victim policy 'everywhere'" in problems

    def test_single_equals_parse(self):
        assert (AttackMix.single("nonserve", 0.2, 0.1)
                == AttackMix.parse("nonserve=0.2", params_text="nonserve=0.1"))

    def test_key_is_stable_and_discriminating(self):
        a = AttackMix.parse("spam=0.1")
        assert a.key() == AttackMix.parse("spam=0.1").key()
        assert a.key() != AttackMix.parse("spam=0.2").key()
        assert a.key() != AttackMix.parse("spam=0.1",
                                          victim_policy="edge").key()

    def test_required_membership_bubbles_up(self):
        assert AttackMix.parse("poisoned-view=0.1").required_membership() == "cyclon"
        assert AttackMix.parse("spam=0.1").required_membership() is None


# ----------------------------------------------------------------------
# placement policies
# ----------------------------------------------------------------------
class TestPlacement:
    CAPS = [9e9] + [100.0, 90.0, 80.0, 70.0, 60.0, 50.0, 40.0, 30.0,
                    20.0, 10.0]  # node 0 is the source

    def receivers(self):
        return range(1, len(self.CAPS))

    def test_high_degree_takes_the_hubs(self):
        ids = place_ids("high-degree", random.Random(1), self.receivers(),
                        self.CAPS, 3)
        assert ids == [1, 2, 3]

    def test_edge_takes_the_leaves(self):
        ids = place_ids("edge", random.Random(1), self.receivers(),
                        self.CAPS, 3)
        assert ids == [8, 9, 10]

    def test_clustered_is_a_contiguous_block(self):
        receivers = list(self.receivers())
        for seed in range(20):
            ids = place_ids("clustered", random.Random(seed), receivers,
                            self.CAPS, 4)
            positions = {receivers.index(n) for n in ids}
            # A contiguous block, possibly wrapping around the id space.
            count = len(receivers)
            assert any(positions == {(start + i) % count for i in range(4)}
                       for start in range(count))

    def test_random_matches_legacy_freerider_selection(self):
        seed = 42
        rng = random.Random(derive_seed(seed, "freeriders"))
        legacy = sorted(random.Random(derive_seed(seed, "freeriders"))
                        .sample(list(self.receivers()), 3))
        assert place_ids("random", rng, self.receivers(),
                         self.CAPS, 3) == legacy

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown victim policy"):
            place_ids("nearest", random.Random(0), self.receivers(),
                      self.CAPS, 2)

    def test_count_clamped_to_population(self):
        ids = place_ids("random", random.Random(0), self.receivers(),
                        self.CAPS, 99)
        assert ids == list(self.receivers())


policies = st.sampled_from(("random", "high-degree", "edge", "clustered"))
capability_pools = st.lists(st.sampled_from((10.0, 50.0, 100.0, 500.0)),
                            min_size=4, max_size=40)


class TestPlacementPurity:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), caps=capability_pools,
           policy=policies,
           fraction=st.floats(0.05, 0.6),
           multi=st.booleans())
    def test_placement_is_a_pure_function_of_seed_population_topology(
            self, seed, caps, policy, fraction, multi):
        """The property sharded execution rests on: every shard, every
        process, every call — same (mix, seed, population, capacities),
        same placement."""
        n_nodes = len(caps) + 1
        capacities = [9e9] + caps
        if multi:
            mix = AttackMix(attacks=(("spam", fraction / 2),
                                     ("withhold", fraction / 2)),
                            victim_policy=policy)
        else:
            mix = AttackMix.single("nonserve", fraction,
                                   victim_policy=policy)
        first = place_attackers(mix, seed=seed, n_nodes=n_nodes,
                                capacities=capacities)
        again = place_attackers(mix, seed=seed, n_nodes=n_nodes,
                                capacities=capacities)
        assert first == again
        receivers = list(range(1, n_nodes))
        expected = min(round(mix.total_fraction * len(receivers)),
                       len(receivers))
        assert len(first) == expected
        assert sorted(first) == list(first)  # placement iterates sorted
        assert all(node_id in receivers for node_id in first)
        names = set(mix.attack_names())
        assert all(name in names for name, _param in first.values())

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), caps=capability_pools)
    def test_single_attack_mix_matches_legacy_stream(self, seed, caps):
        """Single-attack random placement reproduces the historical
        ``freeriders``-stream selection bit for bit (the shim contract)."""
        n_nodes = len(caps) + 1
        receivers = list(range(1, n_nodes))
        count = round(0.2 * len(receivers))
        legacy = sorted(random.Random(derive_seed(seed, "freeriders"))
                        .sample(receivers, count))
        mix = AttackMix.single("nonserve", 0.2, 0.1)
        placed = place_attackers(mix, seed=seed, n_nodes=n_nodes,
                                 capacities=[9e9] + caps)
        assert sorted(placed) == legacy
        assert all(placed[n] == ("nonserve", 0.1) for n in placed)


# ----------------------------------------------------------------------
# the freerider_* back-compat shim
# ----------------------------------------------------------------------
class TestFreeriderShim:
    def test_effective_adversary_lifts_the_triple(self):
        config = quick_config(freerider_fraction=0.2,
                              freerider_mode="nonserve",
                              freerider_param=0.3)
        assert (effective_adversary(config)
                == AttackMix.single("nonserve", 0.2, 0.3))
        assert effective_adversary(quick_config()) is None

    def test_explicit_adversary_wins(self):
        mix = AttackMix.single("spam", 0.1)
        assert effective_adversary(quick_config(adversary=mix)) is mix

    def test_shim_runs_bit_identical_to_explicit_mix(self):
        legacy = run_scenario(quick_config(freerider_fraction=0.2,
                                           freerider_mode="underclaim",
                                           freerider_param=0.1))
        explicit = run_scenario(quick_config(
            adversary=AttackMix.single("underclaim", 0.2, 0.1)))
        assert blob(legacy) == blob(explicit)
        assert legacy.freerider_ids == explicit.freerider_ids
        assert legacy.attackers == explicit.attackers

    def test_scenario_key_unchanged_for_honest_configs(self):
        key = scenario_key(quick_config())
        assert "adversary" not in key  # pre-PR-8 keys stay valid
        assert "adversary" in scenario_key(
            quick_config(adversary=AttackMix.single("spam", 0.1)))

    def test_shim_and_mix_share_no_scenario_key(self):
        # The shim triple and the explicit mix run identically but are
        # distinct config values; their cache keys must not collide
        # silently in either direction with the honest config.
        honest = scenario_key(quick_config())
        shim = scenario_key(quick_config(freerider_fraction=0.2))
        mix = scenario_key(quick_config(
            adversary=AttackMix.single("underclaim", 0.2)))
        assert len({honest, shim, mix}) == 3


# ----------------------------------------------------------------------
# ScenarioConfig.validate: exhaustive reporting
# ----------------------------------------------------------------------
class TestValidateAllViolations:
    def test_multiple_violations_reported_in_one_error(self):
        config = quick_config(duration=-1.0, loss_rate=1.5,
                              membership="gossipsub")
        with pytest.raises(ValueError) as excinfo:
            config.validate()
        message = str(excinfo.value)
        assert "duration must be positive" in message
        assert "loss rate must be in [0, 1)" in message
        assert "unknown membership 'gossipsub'" in message

    def test_adversary_violations_flow_into_the_report(self):
        config = quick_config(
            duration=-1.0,
            adversary=AttackMix.parse("no-such=0.1"))
        with pytest.raises(ValueError) as excinfo:
            config.validate()
        message = str(excinfo.value)
        assert "duration must be positive" in message
        assert "unknown attack 'no-such'" in message

    def test_adversary_and_shim_together_rejected(self):
        config = quick_config(freerider_fraction=0.2,
                              adversary=AttackMix.single("spam", 0.1))
        with pytest.raises(ValueError, match="not both"):
            config.validate()

    def test_sampler_attack_needs_cyclon(self):
        config = quick_config(
            adversary=AttackMix.single("poisoned-view", 0.1))
        with pytest.raises(ValueError, match="membership='cyclon'"):
            config.validate()
        quick_config(membership="cyclon",
                     adversary=AttackMix.single("poisoned-view", 0.1)
                     ).validate()

    def test_attacks_are_heap_only(self):
        config = quick_config(protocol="standard",
                              adversary=AttackMix.single("spam", 0.1))
        with pytest.raises(ValueError, match="heap protocol"):
            config.validate()

    def test_valid_config_still_validates(self):
        quick_config(adversary=AttackMix.parse(
            "spam=0.1,withhold=0.05", victim_policy="clustered")).validate()


# ----------------------------------------------------------------------
# the attacks actually misbehave
# ----------------------------------------------------------------------
class TestAttackBehaviour:
    def run_with(self, mix, **overrides):
        return run_scenario(quick_config(adversary=mix, **overrides))

    def test_underclaim_advertises_a_fraction(self):
        result = self.run_with(AttackMix.single("underclaim", 0.2, 0.25))
        assert result.attackers
        for node_id in result.attackers:
            node = result.nodes[node_id]
            assert node.capability_bps == pytest.approx(
                0.25 * node.true_capability_bps)
            # The physical uplink keeps the true capacity: only the
            # advertisement lies.
            assert result.net.uplink(node_id).capacity_bps == pytest.approx(
                node.true_capability_bps)

    def test_nonserve_drops_requests(self):
        result = self.run_with(AttackMix.single("nonserve", 0.2, 0.1))
        dropped = sum(s["requests_dropped"]
                      for s in result.attacker_stats.values())
        assert dropped > 0

    def test_spam_exceeds_the_fanout_budget(self):
        result = self.run_with(AttackMix.single("spam", 0.15, 0.5))
        spam = sum(s["spam_proposes"] for s in result.attacker_stats.values())
        assert spam > 0
        honest_ids = [n for n in result.receiver_ids()
                      if n not in result.attackers]
        mean_honest = (sum(result.nodes[n].proposes_sent for n in honest_ids)
                       / len(honest_ids))
        mean_spam = (sum(result.nodes[n].proposes_sent
                         for n in result.attackers)
                     / len(result.attackers))
        assert mean_spam > mean_honest

    def test_withhold_starves_its_forwarding(self):
        result = self.run_with(AttackMix.single("withhold", 0.2, 0.05))
        withheld = sum(s["ids_withheld"]
                       for s in result.attacker_stats.values())
        assert withheld > 0

    def test_poisoned_view_fabricates_entries(self):
        result = self.run_with(AttackMix.single("poisoned-view", 0.15),
                               membership="cyclon")
        poisoned = sum(s["entries_poisoned"]
                       for s in result.attacker_stats.values())
        assert poisoned > 0
        # The gossip node itself stays honest: no node-attack counters.
        for node_id in result.attackers:
            assert not hasattr(result.nodes[node_id], "spam_proposes")

    def test_weighted_mix_assigns_both_attacks(self):
        result = self.run_with(AttackMix.parse("spam=0.15,withhold=0.15"))
        planted = {name for name, _param in result.attackers.values()}
        assert planted == {"spam", "withhold"}


# ----------------------------------------------------------------------
# impact metrics
# ----------------------------------------------------------------------
class TestAttackImpact:
    def test_impact_is_json_able_and_shaped(self):
        result = run_scenario(quick_config(
            audit=True,
            adversary=AttackMix.single("nonserve", 0.2, 0.1)))
        impact = attack_impact(result)
        encoded = json.loads(json.dumps(impact))
        assert encoded["attackers"]["by_attack"] == {"nonserve":
                                                     impact["attackers"]["n"]}
        assert impact["honest"]["n"] + impact["attacked"]["n"] == len(
            result.receiver_ids())
        assert math.isfinite(impact["delta"]["delivery_pct"])
        assert impact["attacker_cost"]["counters"]["requests_dropped"] > 0

    def test_honest_run_reports_empty_attacker_side(self):
        impact = attack_impact(run_scenario(quick_config()))
        assert impact["attackers"] == {"n": 0, "by_attack": {}}
        assert impact["attacked"]["n"] == 0
        assert math.isnan(impact["attacked"]["delivery_pct"])
