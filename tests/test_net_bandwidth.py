"""Unit tests for the uplink serialization queue."""

import pytest

from repro.net.bandwidth import UplinkQueue


def test_serialization_time_matches_capacity():
    # 1000 bytes at 8000 bps -> 1 second.
    link = UplinkQueue(8000.0)
    assert link.serialization_time(1000) == pytest.approx(1.0)


def test_single_datagram_exits_after_serialization():
    link = UplinkQueue(8000.0)
    exit_time = link.enqueue(now=10.0, size_bytes=1000)
    assert exit_time == pytest.approx(11.0)
    assert link.busy_until == pytest.approx(11.0)


def test_back_to_back_datagrams_queue_fifo():
    link = UplinkQueue(8000.0)
    first = link.enqueue(0.0, 1000)
    second = link.enqueue(0.0, 1000)
    third = link.enqueue(0.0, 500)
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)
    assert third == pytest.approx(2.5)


def test_idle_link_does_not_accumulate_credit():
    link = UplinkQueue(8000.0)
    link.enqueue(0.0, 1000)  # busy until 1.0
    exit_time = link.enqueue(5.0, 1000)  # link idle 1.0 - 5.0
    assert exit_time == pytest.approx(6.0)


def test_queue_delay_reflects_backlog():
    link = UplinkQueue(8000.0)
    assert link.queue_delay(0.0) == 0.0
    link.enqueue(0.0, 2000)
    assert link.queue_delay(0.0) == pytest.approx(2.0)
    assert link.queue_delay(1.5) == pytest.approx(0.5)
    assert link.queue_delay(3.0) == 0.0


def test_overload_grows_queue_without_bound():
    # Offered load 2x capacity: backlog after k packets grows linearly.
    link = UplinkQueue(8000.0)
    for i in range(10):
        link.enqueue(i * 0.5, 1000)  # each takes 1s, arrive every 0.5s
    assert link.queue_delay(5.0) == pytest.approx(5.0)


def test_max_delay_drops_excess():
    link = UplinkQueue(8000.0, max_delay=1.5)
    assert link.enqueue(0.0, 1000) is not None  # wait 0
    assert link.enqueue(0.0, 1000) is not None  # wait 1.0
    assert link.enqueue(0.0, 1000) is None      # wait 2.0 > 1.5 -> dropped
    assert link.datagrams_dropped == 1
    assert link.datagrams_sent == 2


def test_byte_and_datagram_accounting():
    link = UplinkQueue(8000.0)
    link.enqueue(0.0, 300)
    link.enqueue(0.0, 700)
    assert link.bytes_sent == 1000
    assert link.datagrams_sent == 2


def test_mean_queue_delay():
    link = UplinkQueue(8000.0)
    link.enqueue(0.0, 1000)  # wait 0
    link.enqueue(0.0, 1000)  # wait 1
    assert link.mean_queue_delay() == pytest.approx(0.5)


def test_mean_queue_delay_empty_link():
    assert UplinkQueue(1000.0).mean_queue_delay() == 0.0


def test_utilization():
    link = UplinkQueue(8000.0)
    link.enqueue(0.0, 1000)  # 1 second of wire time
    assert link.utilization(elapsed=4.0) == pytest.approx(0.25)
    assert link.utilization(elapsed=0.0) == 0.0


def test_utilization_clamped_to_one():
    link = UplinkQueue(8000.0)
    for _ in range(10):
        link.enqueue(0.0, 1000)
    assert link.utilization(elapsed=1.0) == 1.0


def test_set_capacity_affects_future_datagrams():
    link = UplinkQueue(8000.0)
    first = link.enqueue(0.0, 1000)
    link.set_capacity(16000.0)
    second = link.enqueue(0.0, 1000)
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(1.5)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        UplinkQueue(0.0)
    with pytest.raises(ValueError):
        UplinkQueue(1000.0).set_capacity(-1.0)
    with pytest.raises(ValueError):
        UplinkQueue(1000.0, max_delay=-0.5)
