"""Tests for the payload kind-id registry and slotted protocol objects."""

import pytest

from repro.net.message import (
    intern_kind,
    kind_count,
    kind_id_of,
    kind_name,
    register_kind,
    registered_kinds,
)


class TestKindRegistry:
    def test_register_returns_dense_ids(self):
        a = register_kind("test-kind-dense-a")
        b = register_kind("test-kind-dense-b")
        assert b == a + 1
        assert kind_name(a) == "test-kind-dense-a"
        assert kind_id_of("test-kind-dense-b") == b

    def test_duplicate_registration_raises(self):
        register_kind("test-kind-dup")
        with pytest.raises(ValueError, match="already registered"):
            register_kind("test-kind-dup")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_kind("")

    def test_intern_unknown_kind_raises(self):
        """Regression: a lookup miss must never silently mint a kind-id —
        an accidental registration on one side of a fork/spawn boundary
        would skew every id after it between shard workers."""
        with pytest.raises(KeyError, match="unknown payload kind"):
            intern_kind("test-kind-never-registered")
        # The failed lookup must not have registered the name as a side
        # effect of composing the error message.
        assert "test-kind-never-registered" not in registered_kinds()

    def test_intern_register_is_idempotent(self):
        first = intern_kind("test-kind-intern", register=True)
        assert intern_kind("test-kind-intern", register=True) == first
        # Once registered, plain lookup resolves it.
        assert intern_kind("test-kind-intern") == first

    def test_registry_enumeration_is_consistent(self):
        kinds = registered_kinds()
        assert len(kinds) == kind_count()
        for kind_id, name in enumerate(kinds):
            assert kind_id_of(name) == kind_id

    def test_protocol_kinds_are_registered_with_distinct_ids(self):
        from repro.baselines.tree import TreePush
        from repro.core.aggregation import AggregationMessage
        from repro.core.messages import Propose, Request, Serve
        from repro.core.size_estimation import (SizeEstimateMessage,
                                                SizeEstimateReply)
        from repro.freeriders.detection import AuditReport
        from repro.membership.peer_sampling import ShuffleReply, ShuffleRequest

        classes = [Propose, Request, Serve, AggregationMessage,
                   SizeEstimateMessage, SizeEstimateReply, ShuffleRequest,
                   ShuffleReply, AuditReport, TreePush]
        ids = [cls.kind_id for cls in classes]
        assert len(set(ids)) == len(ids)
        for cls in classes:
            assert kind_name(cls.kind_id) == cls.kind
            assert kind_id_of(cls.kind) == cls.kind_id


class TestSlottedProtocolObjects:
    """The tentpole's memory contract: no per-instance __dict__ on node
    classes, payload messages, or per-node stats records."""

    def _assert_slotted(self, obj):
        assert not hasattr(obj, "__dict__"), type(obj).__name__

    def test_payload_messages_are_slotted(self):
        from repro.core.aggregation import AggregationMessage
        from repro.core.messages import Propose, Request, Serve
        from repro.membership.peer_sampling import ShuffleReply, ShuffleRequest

        for payload in (Propose([1]), Request([1]), Serve([]),
                        AggregationMessage([]), ShuffleRequest([]),
                        ShuffleReply([])):
            self._assert_slotted(payload)

    def test_stats_records_are_slotted(self):
        from repro.net.stats import NetworkStats, NodeTrafficStats

        self._assert_slotted(NodeTrafficStats())
        self._assert_slotted(NetworkStats())

    def test_gossip_nodes_are_slotted(self):
        import random

        from repro.core.config import GossipConfig
        from repro.core.heap import HeapGossipNode
        from repro.core.standard import StandardGossipNode
        from repro.membership.directory import MembershipDirectory
        from repro.net.network import Network
        from repro.sim.engine import Simulator

        sim = Simulator()
        net = Network(sim)
        directory = MembershipDirectory(sim, random.Random(0),
                                        mean_detection_delay=0.0)
        directory.register_all(range(4))
        config = GossipConfig(randomize_phase=False)
        for node_class in (StandardGossipNode, HeapGossipNode):
            node = node_class(sim, net, 0, directory.view_of(0), config,
                              random.Random(1), 1e6)
            self._assert_slotted(node)
