"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Process, run_process, sleep


def test_process_runs_to_completion():
    sim = Simulator()
    log = []

    def script():
        log.append(("start", sim.now))
        yield sleep(2.0)
        log.append(("mid", sim.now))
        yield sleep(3.0)
        log.append(("end", sim.now))

    proc = run_process(sim, script())
    sim.run()
    assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]
    assert proc.finished


def test_start_delay_offsets_whole_script():
    sim = Simulator()
    log = []

    def script():
        log.append(sim.now)
        yield sleep(1.0)
        log.append(sim.now)

    run_process(sim, script(), delay=10.0)
    sim.run()
    assert log == [10.0, 11.0]


def test_yield_none_resumes_same_time():
    sim = Simulator()
    log = []

    def script():
        log.append(sim.now)
        yield None
        log.append(sim.now)

    run_process(sim, script())
    sim.run()
    assert log == [0.0, 0.0]


def test_stop_halts_process():
    sim = Simulator()
    log = []

    def script():
        while True:
            log.append(sim.now)
            yield sleep(1.0)

    proc = run_process(sim, script())
    sim.run(until=3.5)
    proc.stop()
    sim.run(until=10.0)
    assert log == [0.0, 1.0, 2.0, 3.0]
    assert proc.finished


def test_double_start_rejected():
    sim = Simulator()

    def script():
        yield sleep(1.0)

    proc = Process(sim, script())
    proc.start()
    with pytest.raises(RuntimeError):
        proc.start()


def test_bad_yield_value_raises():
    sim = Simulator()

    def script():
        yield "nonsense"

    run_process(sim, script())
    with pytest.raises(TypeError):
        sim.run()


def test_negative_sleep_rejected():
    with pytest.raises(ValueError):
        sleep(-1.0)


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def ticker(name, period):
        while sim.now < 4.0:
            log.append((name, sim.now))
            yield sleep(period)

    run_process(sim, ticker("a", 2.0))
    run_process(sim, ticker("b", 3.0))
    sim.run()
    assert ("a", 0.0) in log and ("b", 0.0) in log
    assert ("a", 2.0) in log and ("b", 3.0) in log
