"""Integration: continuous (interval) churn through the scenario runner.

The runner accepts any churn object exposing ``schedule``; this checks
the IntervalChurn extension end to end — nodes keep dying throughout
the stream and the dissemination keeps serving the survivors.
"""

from repro import ScenarioConfig, run_scenario
from repro.metrics.windows import window_delivery_over_time
from repro.workloads import REF_691
from repro.workloads.churn import IntervalChurn


def test_interval_churn_end_to_end():
    churn = IntervalChurn(interval=3.0, start=4.0, stop=16.0)
    result = run_scenario(ScenarioConfig(
        protocol="heap", distribution=REF_691, n_nodes=40,
        duration=18.0, drain=25.0, seed=9, churn=churn))
    # One victim every 3s between ~7s and 16s.
    assert 2 <= len(churn.victims) <= 4
    assert 0 not in churn.victims
    assert set(churn.victims) == set(result.crash_times)
    # Crashed nodes stopped receiving at their crash times.
    for victim in churn.victims:
        log = result.log_of(victim)
        if len(log):
            assert max(t for _, t in log.items()) <= result.crash_times[victim]
    # Survivors still decode the stream's tail windows.
    series = window_delivery_over_time(result, lag=15.0)
    survivor_share = 100.0 * (39 - len(churn.victims)) / 39
    tail = [frac for _, publish_time, frac in series if publish_time > 16.0]
    assert tail and min(tail) >= survivor_share - 8.0
