"""Unit tests for stream configuration and packet model."""

import pytest

from repro.streaming.packets import StreamConfig, StreamPacket


def test_default_config_matches_paper():
    config = StreamConfig()
    assert config.packet_size_bytes == 1316
    assert config.source_packets_per_window == 101
    assert config.fec_packets_per_window == 9
    assert config.packets_per_window == 110
    # 600 kbps effective, 551 kbps of source data (the paper's numbers).
    assert config.effective_rate_bps == 600_000
    assert config.source_rate_bps == pytest.approx(551_000, rel=0.001)


def test_packet_interval():
    config = StreamConfig()
    # 1316 B * 8 / 600000 bps ~= 17.5 ms -> ~57 packets/s.
    assert config.packet_interval == pytest.approx(0.01755, abs=0.0001)
    assert 1.0 / config.packet_interval == pytest.approx(57.0, abs=0.2)


def test_window_duration_about_two_seconds():
    config = StreamConfig()
    assert config.window_duration == pytest.approx(1.93, abs=0.01)


def test_window_and_index_mapping():
    config = StreamConfig()
    assert config.window_of(0) == 0
    assert config.window_of(109) == 0
    assert config.window_of(110) == 1
    assert config.index_in_window(110) == 0
    assert config.index_in_window(219) == 109


def test_fec_classification():
    config = StreamConfig()
    # Indices 0..100 are source, 101..109 are FEC.
    assert not config.is_fec(0)
    assert not config.is_fec(100)
    assert config.is_fec(101)
    assert config.is_fec(109)
    assert not config.is_fec(110)  # first packet of window 1


def test_packets_for_duration_full_windows():
    config = StreamConfig()
    packets = config.packets_for_duration(60.0)
    assert packets % config.packets_per_window == 0
    assert packets == round(60.0 / config.window_duration) * 110


def test_packets_for_duration_minimum_one_window():
    config = StreamConfig()
    assert config.packets_for_duration(0.01) == 110


def test_validate_rejects_bad_configs():
    with pytest.raises(ValueError):
        StreamConfig(packet_size_bytes=0).validate()
    with pytest.raises(ValueError):
        StreamConfig(source_packets_per_window=0).validate()
    with pytest.raises(ValueError):
        StreamConfig(effective_rate_bps=0).validate()
    with pytest.raises(ValueError):
        StreamConfig(fec_packets_per_window=-1).validate()


def test_stream_packet_fields():
    packet = StreamPacket(packet_id=5, window_id=0, publish_time=1.5)
    assert packet.size_bytes == 1316
    assert not packet.is_fec


def test_stream_packet_rejects_negative_id():
    with pytest.raises(ValueError):
        StreamPacket(packet_id=-1, window_id=0, publish_time=0.0)
