"""Tests for the command-line interface."""

import pytest

from repro.cli import ABLATIONS, EXTENSIONS, FIGURES, TABLES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "heap"
        assert args.distribution == "ref-691"

    def test_registries_cover_all_paper_artifacts(self):
        assert set(FIGURES) == {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                                "fig7", "fig8", "fig9", "fig10a", "fig10b"}
        assert set(TABLES) == {"table1", "table2", "table3"}
        assert len(ABLATIONS) == 4
        assert len(EXTENSIONS) == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10a" in out
        assert "table3" in out
        assert "freeriders" in out

    def test_table1(self, capsys):
        assert main(["table", "table1"]) == 0
        out = capsys.readouterr().out
        assert "ref-691" in out and "CSR" in out

    def test_unknown_id(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown id" in capsys.readouterr().err

    def test_run_small_scenario(self, capsys):
        code = main(["run", "--nodes", "25", "--seconds", "5",
                     "--drain", "12", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jitter-free windows" in out
        assert "utilization" in out

    def test_run_with_freeriders_reports_detection(self, capsys):
        code = main(["run", "--nodes", "30", "--seconds", "5", "--drain", "12",
                     "--freerider-fraction", "0.2",
                     "--freerider-mode", "nonserve", "--audit"])
        assert code == 0
        out = capsys.readouterr().out
        assert "freeriders:" in out
        assert "precision" in out

    def test_run_with_churn(self, capsys):
        code = main(["run", "--nodes", "25", "--seconds", "8", "--drain", "15",
                     "--churn-fraction", "0.2", "--churn-time", "4"])
        assert code == 0

    def test_run_tree_protocol(self, capsys):
        code = main(["run", "--protocol", "tree", "--nodes", "25",
                     "--seconds", "5", "--drain", "12",
                     "--distribution", "unconstrained"])
        assert code == 0


class TestGridFlags:
    def test_figure_parser_accepts_grid_flags(self):
        args = build_parser().parse_args(
            ["figure", "fig5", "--scale", "quick", "--jobs", "4",
             "--checkpoint", "x.jsonl", "--resume", "--quiet"])
        assert args.jobs == 4
        assert args.checkpoint == "x.jsonl"
        assert args.resume is True

    def test_sweep_parser_accepts_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--checkpoint", "s.jsonl", "--resume"])
        assert args.checkpoint == "s.jsonl"
        assert args.resume is True

    def test_sweep_checkpoint_resume_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "sweep.jsonl")
        argv = ["sweep", "--protocols", "heap", "--nodes", "10",
                "--seconds", "2", "--drain", "4", "--num-seeds", "2",
                "--quiet", "--checkpoint", path]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_render_restores_grid_options(self, tmp_path, capsys):
        from repro.experiments.gridrun import current_options

        before = vars(current_options()).copy()
        assert main(["table", "table1", "--jobs", "3", "--quiet",
                     "--checkpoint", str(tmp_path / "t.jsonl")]) == 0
        assert vars(current_options()) == before
