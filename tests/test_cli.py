"""Tests for the command-line interface."""

import pytest

from repro.cli import ABLATIONS, EXTENSIONS, FIGURES, TABLES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "heap"
        assert args.distribution == "ref-691"

    def test_registries_cover_all_paper_artifacts(self):
        assert set(FIGURES) == {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                                "fig7", "fig8", "fig9", "fig10a", "fig10b"}
        assert set(TABLES) == {"table1", "table2", "table3"}
        assert len(ABLATIONS) == 4
        assert len(EXTENSIONS) == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10a" in out
        assert "table3" in out
        assert "freeriders" in out

    def test_table1(self, capsys):
        assert main(["table", "table1"]) == 0
        out = capsys.readouterr().out
        assert "ref-691" in out and "CSR" in out

    def test_unknown_id(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown id" in capsys.readouterr().err

    def test_run_small_scenario(self, capsys):
        code = main(["run", "--nodes", "25", "--seconds", "5",
                     "--drain", "12", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jitter-free windows" in out
        assert "utilization" in out

    def test_run_with_freeriders_reports_detection(self, capsys):
        code = main(["run", "--nodes", "30", "--seconds", "5", "--drain", "12",
                     "--freerider-fraction", "0.2",
                     "--freerider-mode", "nonserve", "--audit"])
        assert code == 0
        out = capsys.readouterr().out
        assert "freeriders:" in out
        assert "precision" in out

    def test_run_with_churn(self, capsys):
        code = main(["run", "--nodes", "25", "--seconds", "8", "--drain", "15",
                     "--churn-fraction", "0.2", "--churn-time", "4"])
        assert code == 0

    def test_run_tree_protocol(self, capsys):
        code = main(["run", "--protocol", "tree", "--nodes", "25",
                     "--seconds", "5", "--drain", "12",
                     "--distribution", "unconstrained"])
        assert code == 0


class TestGridFlags:
    def test_figure_parser_accepts_grid_flags(self):
        args = build_parser().parse_args(
            ["figure", "fig5", "--scale", "quick", "--jobs", "4",
             "--checkpoint", "x.jsonl", "--resume", "--quiet"])
        assert args.jobs == 4
        assert args.checkpoint == "x.jsonl"
        assert args.resume is True

    def test_sweep_parser_accepts_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--checkpoint", "s.jsonl", "--resume"])
        assert args.checkpoint == "s.jsonl"
        assert args.resume is True

    def test_sweep_checkpoint_resume_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "sweep.jsonl")
        argv = ["sweep", "--protocols", "heap", "--nodes", "10",
                "--seconds", "2", "--drain", "4", "--num-seeds", "2",
                "--quiet", "--checkpoint", path]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_render_restores_grid_options(self, tmp_path, capsys):
        from repro.experiments.gridrun import current_options

        before = vars(current_options()).copy()
        assert main(["table", "table1", "--jobs", "3", "--quiet",
                     "--checkpoint", str(tmp_path / "t.jsonl")]) == 0
        assert vars(current_options()) == before


class TestSweepCsv:
    def test_sweep_csv_exports_one_row_per_cell(self, tmp_path, capsys):
        csv_path = tmp_path / "grid.csv"
        assert main(["sweep", "--protocols", "heap,standard", "--nodes", "10",
                     "--seconds", "2", "--drain", "4", "--num-seeds", "2",
                     "--quiet", "--csv", str(csv_path)]) == 0
        import csv as csv_module

        with open(csv_path, newline="") as fh:
            rows = list(csv_module.reader(fh))
        header, data = rows[0], rows[1:]
        assert len(data) == 2 * 2  # protocols x seeds
        assert "scenario_name" in header and "metric:delivery" in header
        by_name = [row[header.index("scenario_name")] for row in data]
        assert by_name == ["heap", "heap", "standard", "standard"]
        delivery = [float(row[header.index("metric:delivery")])
                    for row in data]
        assert all(0.0 <= value <= 1.0 for value in delivery)


class TestCheckpointDir:
    ARGS = ["sweep", "--protocols", "heap", "--nodes", "10", "--seconds", "2",
            "--drain", "4", "--num-seeds", "2", "--quiet"]

    def test_spent_checkpoint_removed_after_success(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        assert main(self.ARGS + ["--checkpoint-dir", str(ckpt_dir)]) == 0
        assert list(ckpt_dir.glob("*.jsonl")) == []

    def test_mismatched_checkpoint_gcd_not_fatal(self, tmp_path, capsys):
        """A stale checkpoint (different grid fingerprint) under
        --checkpoint-dir is discarded and the run proceeds; with plain
        --checkpoint the same situation is a hard error."""
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        stale = ckpt_dir / "sweep-ref-691-default.jsonl"
        stale.write_text('{"format": "repro-grid-checkpoint-v1", '
                         '"fingerprint": "not-this-grid", "total": 1}\n')
        assert main(self.ARGS + ["--checkpoint-dir", str(ckpt_dir),
                                 "--resume"]) == 0
        out_dir = capsys.readouterr()
        assert "discarding stale checkpoint" in out_dir.err
        assert not stale.exists()  # spent after the successful rerun
        # Same stale file through --checkpoint --resume stays an error.
        stale.write_text('{"format": "repro-grid-checkpoint-v1", '
                         '"fingerprint": "not-this-grid", "total": 1}\n')
        assert main(self.ARGS + ["--checkpoint", str(stale),
                                 "--resume"]) == 2

    def test_explicit_checkpoint_never_housekept(self, tmp_path, capsys):
        """--checkpoint PATH keeps fail-loud, keep-the-file semantics
        even when --checkpoint-dir is also on the command line."""
        explicit = tmp_path / "mine.jsonl"
        assert main(self.ARGS + ["--checkpoint", str(explicit),
                                 "--checkpoint-dir",
                                 str(tmp_path / "ckpts")]) == 0
        assert explicit.exists()  # not deleted after success
        explicit.write_text('{"format": "repro-grid-checkpoint-v1", '
                            '"fingerprint": "not-this-grid", "total": 1}\n')
        assert main(self.ARGS + ["--checkpoint", str(explicit),
                                 "--checkpoint-dir", str(tmp_path / "ckpts"),
                                 "--resume"]) == 2  # mismatch stays fatal

    def test_kill_resume_roundtrip_via_checkpoint_dir(self, tmp_path, capsys):
        """A checkpoint-dir run that 'died' (checkpoint left behind by a
        direct run_grid call) resumes and produces identical output."""
        ckpt_dir = tmp_path / "ckpts"
        assert main(self.ARGS + ["--checkpoint-dir", str(ckpt_dir)]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--checkpoint-dir", str(ckpt_dir),
                                 "--resume"]) == 0
        assert capsys.readouterr().out == first


class TestArtifactCsv:
    """Satellite: figure/table/ablation grow --csv mirroring sweep --csv."""

    def _read(self, path):
        import csv as csv_module

        with open(path, newline="") as fh:
            return list(csv_module.reader(fh))

    def test_table_csv_matches_rendered_rows(self, tmp_path, capsys):
        csv_path = tmp_path / "table1.csv"
        assert main(["table", "table1", "--csv", str(csv_path)]) == 0
        rows = self._read(csv_path)
        out = capsys.readouterr().out
        assert len(rows) > 1
        from repro.experiments.tables import table1_distributions

        result = table1_distributions()
        assert rows[0] == [str(h) for h in result.headers]
        assert len(rows) - 1 == len(result.rows)

    def test_figure_csv_written(self, tmp_path, capsys):
        csv_path = tmp_path / "fig5.csv"
        assert main(["figure", "fig5", "--scale", "quick", "--quiet",
                     "--csv", str(csv_path)]) == 0
        rows = self._read(csv_path)
        assert rows[0][0] == "distribution"
        assert len(rows) > 1

    def test_ablation_csv_written(self, tmp_path, capsys):
        csv_path = tmp_path / "ablation.csv"
        assert main(["ablation", "aggregation", "--scale", "quick", "--quiet",
                     "--csv", str(csv_path)]) == 0
        assert len(self._read(csv_path)) > 1

    def test_parser_accepts_csv_everywhere(self):
        for command, name in (("figure", "fig5"), ("table", "table3"),
                              ("ablation", "aggregation")):
            args = build_parser().parse_args([command, name, "--csv", "x.csv"])
            assert args.csv == "x.csv"


class TestShardsCli:
    """--shards plumbs the sharded execution model through every grid."""

    def test_run_shards_matches_serial_run(self, capsys):
        base = ["run", "--nodes", "30", "--seconds", "3", "--drain", "6",
                "--latency-rng", "per-pair", "--latency-floor", "0.02"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--shards", "2"]) == 0
        sharded = capsys.readouterr().out
        # Identical metrics; only the events counter (an activity
        # measure summed over shards) may differ.
        strip = lambda text: [line for line in text.splitlines()  # noqa: E731
                              if not line.startswith("events:")]
        assert strip(sharded) == strip(serial)

    def test_sweep_shards_matches_serial_sweep(self, capsys):
        base = ["sweep", "--protocols", "heap", "--nodes", "20",
                "--seconds", "2", "--drain", "4", "--num-seeds", "2",
                "--quiet", "--latency-rng", "per-pair",
                "--latency-floor", "0.02"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--shards", "2"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == serial

    def test_shards_require_per_pair_latency(self, capsys):
        assert main(["sweep", "--protocols", "heap", "--nodes", "20",
                     "--seconds", "2", "--drain", "4", "--num-seeds", "1",
                     "--quiet", "--shards", "2",
                     "--latency-rng", "shared"]) == 2
        assert "per-pair" in capsys.readouterr().err

    def test_figure_shards_runs_churn(self, capsys):
        from repro.experiments.scales import clear_cache

        # The churn figure used to be rejected under --shards; it now
        # runs sharded with output identical to --shards 1.  fig10
        # forces 45 s streams, so the lookahead override keeps the
        # window count sane at quick scale.
        clear_cache()
        assert main(["figure", "fig10a", "--scale", "quick", "--quiet",
                     "--shards", "1", "--latency-floor", "0.1"]) == 0
        one = capsys.readouterr().out
        clear_cache()
        assert main(["figure", "fig10a", "--scale", "quick", "--quiet",
                     "--shards", "2", "--latency-floor", "0.1"]) == 0
        two = capsys.readouterr().out
        assert one == two

    def test_sweep_shards_require_per_pair_loss(self, capsys):
        assert main(["sweep", "--protocols", "heap", "--nodes", "20",
                     "--seconds", "2", "--drain", "4", "--num-seeds", "1",
                     "--quiet", "--shards", "2", "--loss", "0.05",
                     "--loss-rng", "shared"]) == 2
        assert "loss_rng" in capsys.readouterr().err

    def test_table_shards_output_stable_across_shard_counts(self, capsys):
        from repro.experiments.scales import clear_cache

        clear_cache()
        assert main(["table", "table3", "--scale", "quick", "--quiet",
                     "--shards", "1"]) == 0
        one = capsys.readouterr().out
        clear_cache()
        assert main(["table", "table3", "--scale", "quick", "--quiet",
                     "--shards", "2"]) == 0
        two = capsys.readouterr().out
        assert one == two
