"""Integration tests: full scenario runs through the experiment runner.

These use small populations and short streams so the whole file stays
fast, but they exercise every layer together — simulator, network,
membership, protocols, source, churn, metrics.
"""

import math

import pytest

from repro import ScenarioConfig, run_scenario
from repro.analysis.stats import mean
from repro.metrics import (
    jitter_free_fraction_by_class,
    utilization_by_class,
    window_delivery_over_time,
)
from repro.metrics.lag import per_node_lag_jitter_free
from repro.workloads import MS_691, REF_691, UNCONSTRAINED, CatastrophicFailure

FAST = dict(n_nodes=40, duration=8.0, drain=15.0, seed=7)


@pytest.fixture(scope="module")
def heap_result():
    return run_scenario(ScenarioConfig(protocol="heap", distribution=REF_691, **FAST))


@pytest.fixture(scope="module")
def standard_result():
    return run_scenario(ScenarioConfig(protocol="standard", distribution=REF_691, **FAST))


class TestBasicRun:
    def test_all_packets_published(self, heap_result):
        config = heap_result.config
        assert heap_result.total_packets == config.total_packets
        assert len(heap_result.windows()) == config.total_packets // 110

    def test_stream_fully_disseminated_offline(self, heap_result):
        """Paper footnote: 'when running simulations without message loss,
        100% of the nodes received the full stream.'  Infect-and-die gossip
        may miss an individual packet with tiny probability — that is what
        the FEC windows absorb — so the stream-level assertion is that
        every window decodes offline at every node."""
        total = heap_result.total_packets
        analyzer = heap_result.analyzer()
        windows = heap_result.windows()
        for node_id in heap_result.receiver_ids():
            assert heap_result.log_of(node_id).delivery_ratio(total) >= 0.99
            assert analyzer.jitter_fraction(
                heap_result.log_of(node_id), windows, lag=float("inf")) == 0.0

    def test_no_duplicate_deliveries(self, heap_result):
        for node_id in heap_result.receiver_ids():
            assert heap_result.log_of(node_id).duplicates == 0

    def test_labels_and_capacities_consistent(self, heap_result):
        for node_id in heap_result.receiver_ids():
            label = heap_result.label_of(node_id)
            cls = REF_691.class_of(heap_result.capacity_of(node_id))
            assert cls is not None and cls.label == label

    def test_class_labels_sorted_poorest_first(self, heap_result):
        assert heap_result.class_labels() == ["256kbps", "768kbps", "2Mbps"]

    def test_source_excluded_from_receivers(self, heap_result):
        assert 0 not in heap_result.receiver_ids()

    def test_deterministic_given_seed(self):
        config = ScenarioConfig(protocol="heap", distribution=REF_691,
                                n_nodes=20, duration=4.0, drain=8.0, seed=11)
        a = run_scenario(config)
        b = run_scenario(config)
        for node_id in a.receiver_ids():
            assert dict(a.log_of(node_id).items()) == dict(b.log_of(node_id).items())

    def test_different_seeds_differ(self):
        base = dict(protocol="heap", distribution=REF_691, n_nodes=20,
                    duration=4.0, drain=8.0)
        a = run_scenario(ScenarioConfig(seed=1, **base))
        b = run_scenario(ScenarioConfig(seed=2, **base))
        logs_a = dict(a.log_of(1).items())
        logs_b = dict(b.log_of(1).items())
        assert logs_a != logs_b


class TestProtocolComparison:
    def test_heap_equalizes_utilization(self, heap_result, standard_result):
        heap_util = utilization_by_class(heap_result)
        std_util = utilization_by_class(standard_result)
        heap_spread = max(heap_util.values()) - min(heap_util.values())
        std_spread = max(std_util.values()) - min(std_util.values())
        assert heap_spread < std_spread

    def test_standard_overloads_poor_class(self, standard_result):
        util = utilization_by_class(standard_result)
        assert util["256kbps"] > util["2Mbps"]

    def test_heap_lag_no_worse_than_standard(self, heap_result, standard_result):
        heap_lag = mean(per_node_lag_jitter_free(heap_result).values())
        std_lag = mean(per_node_lag_jitter_free(standard_result).values())
        assert heap_lag <= std_lag * 1.25

    def test_heap_fanout_ordering_follows_capability(self, heap_result):
        by_label = {}
        for node_id in heap_result.receiver_ids():
            by_label.setdefault(heap_result.label_of(node_id), []).append(
                heap_result.nodes[node_id].current_fanout())
        assert mean(by_label["2Mbps"]) > mean(by_label["768kbps"]) > mean(by_label["256kbps"])

    def test_source_advertises_average_capability(self, heap_result):
        assert heap_result.nodes[0].capability_bps == pytest.approx(
            REF_691.average_bps())


class TestUnconstrained:
    def test_unconstrained_low_lag(self):
        result = run_scenario(ScenarioConfig(
            protocol="standard", distribution=UNCONSTRAINED, **FAST))
        lags = per_node_lag_jitter_free(result)
        assert all(math.isfinite(lag) for lag in lags.values())
        assert mean(lags.values()) < 2.0


class TestChurn:
    @pytest.fixture(scope="class")
    def churn_result(self):
        return run_scenario(ScenarioConfig(
            protocol="heap", distribution=REF_691, n_nodes=40,
            duration=20.0, drain=20.0, seed=5,
            churn=CatastrophicFailure(fraction=0.25, at_time=8.0)))

    def test_victims_recorded(self, churn_result):
        victims = churn_result.config.churn.victims
        assert len(victims) == round(0.25 * 40)
        assert 0 not in victims
        assert set(victims) == set(churn_result.crash_times)

    def test_survivors_keep_receiving(self, churn_result):
        series = window_delivery_over_time(churn_result, lag=15.0)
        # Windows published well after the failure should reach ~all of
        # the surviving 75% of nodes (75% of the initial population).
        tail = [frac for _, publish_time, frac in series if publish_time > 12.0]
        assert tail
        assert min(tail) > 65.0

    def test_crashed_nodes_stop_receiving(self, churn_result):
        victim = churn_result.config.churn.victims[0]
        crash_time = churn_result.crash_times[victim]
        log = churn_result.log_of(victim)
        last_delivery = max(t for _, t in log.items())
        assert last_delivery <= crash_time

    def test_receiver_ids_excludes_victims_by_default(self, churn_result):
        victims = set(churn_result.config.churn.victims)
        assert not victims & set(churn_result.receiver_ids())
        assert victims <= set(churn_result.receiver_ids(include_crashed=True))


class TestTreeBaseline:
    def test_tree_delivers_without_loss(self):
        result = run_scenario(ScenarioConfig(
            protocol="tree", distribution=UNCONSTRAINED, **FAST))
        total = result.total_packets
        ratios = [result.log_of(n).delivery_ratio(total)
                  for n in result.receiver_ids()]
        assert mean(ratios) == pytest.approx(1.0)

    def test_tree_fragile_under_loss(self):
        lossy = ScenarioConfig(protocol="tree", distribution=UNCONSTRAINED,
                               loss_rate=0.05, **FAST)
        result = run_scenario(lossy)
        total = result.total_packets
        ratios = [result.log_of(n).delivery_ratio(total)
                  for n in result.receiver_ids()]
        # No repair: losses compound down the tree.
        assert mean(ratios) < 0.97
        gossip = run_scenario(ScenarioConfig(
            protocol="heap", distribution=UNCONSTRAINED, loss_rate=0.05, **FAST))
        gossip_ratios = [gossip.log_of(n).delivery_ratio(total)
                         for n in gossip.receiver_ids()]
        assert mean(gossip_ratios) > mean(ratios)


class TestDegradedNodes:
    def test_degraded_fraction_reduces_effective_capacity(self):
        result = run_scenario(ScenarioConfig(
            protocol="heap", distribution=REF_691, degraded_fraction=0.25,
            degraded_factor=0.5, **FAST))
        degraded = [node_id for node_id in result.receiver_ids()
                    if result.net.uplink(node_id).capacity_bps
                    < result.capacity_of(node_id)]
        assert len(degraded) == round(0.25 * 39)
