"""Tests for the gossip-based capability aggregation protocol."""

import random

import pytest

from repro.core.aggregation import AggregationMessage, CapabilityAggregator
from repro.membership.directory import MembershipDirectory
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.engine import Simulator


class AggEndpoint:
    """Minimal endpoint wrapping one aggregator."""

    def __init__(self, aggregator):
        self.aggregator = aggregator

    def on_message(self, envelope):
        self.aggregator.on_message(envelope.src, envelope.payload)


def build_system(capabilities, seed=0, period=0.2, fresh_count=10, fanout=7,
                 sample_ttl=10.0):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.02))
    directory = MembershipDirectory(sim, random.Random(seed), mean_detection_delay=0.0)
    directory.register_all(range(len(capabilities)))
    aggregators = []
    for node_id, capability in enumerate(capabilities):
        agg = CapabilityAggregator(
            sim, net, node_id, capability=lambda c=capability: c,
            view=directory.view_of(node_id), rng=random.Random(seed * 7919 + node_id),
            period=period, fresh_count=fresh_count, fanout=fanout,
            sample_ttl=sample_ttl)
        net.attach(node_id, AggEndpoint(agg), upload_capacity_bps=10e6)
        aggregators.append(agg)
    for agg in aggregators:
        agg.start()
    return sim, net, directory, aggregators


def test_initial_estimate_is_own_capability():
    sim = Simulator()
    net = Network(sim)
    agg = CapabilityAggregator(sim, net, 0, capability=lambda: 512.0,
                               view=None, rng=random.Random(1))
    assert agg.average_estimate() == 512.0
    assert agg.relative_capability() == 1.0


def test_estimates_converge_to_true_average():
    capabilities = [3000.0] * 2 + [1000.0] * 4 + [512.0] * 24
    true_average = sum(capabilities) / len(capabilities)
    sim, net, directory, aggregators = build_system(capabilities)
    sim.run(until=5.0)
    estimates = [agg.average_estimate() for agg in aggregators]
    for estimate in estimates:
        assert estimate == pytest.approx(true_average, rel=0.15)
    mean_estimate = sum(estimates) / len(estimates)
    assert mean_estimate == pytest.approx(true_average, rel=0.08)


def test_relative_capability_orders_nodes():
    capabilities = [3000.0, 1000.0, 512.0, 512.0, 512.0, 512.0]
    sim, net, directory, aggregators = build_system(capabilities, fanout=3)
    sim.run(until=5.0)
    rel = [agg.relative_capability() for agg in aggregators]
    assert rel[0] > rel[1] > rel[2]
    assert rel[0] == pytest.approx(3000.0 / aggregators[0].average_estimate())


def test_sample_table_grows_beyond_direct_partners():
    capabilities = [700.0] * 40
    sim, net, directory, aggregators = build_system(capabilities, fanout=2)
    sim.run(until=5.0)
    # With fanout 2 but relayed samples, tables should know many peers.
    assert all(agg.sample_count() > 10 for agg in aggregators)


def test_freshest_returns_newest_first_and_caps_count():
    sim = Simulator()
    net = Network(sim)
    agg = CapabilityAggregator(sim, net, 0, capability=lambda: 100.0,
                               view=None, rng=random.Random(1), fresh_count=3)
    agg._samples[1] = (200.0, 5.0)
    agg._samples[2] = (300.0, 9.0)
    agg._samples[3] = (400.0, 1.0)
    agg._samples[0] = (100.0, 10.0)
    fresh = agg.freshest(3)
    assert [node for node, _, _ in fresh] == [0, 2, 1]


def test_merge_keeps_freshest_sample():
    sim = Simulator()
    net = Network(sim)
    agg = CapabilityAggregator(sim, net, 0, capability=lambda: 100.0,
                               view=None, rng=random.Random(1))
    agg.on_message(1, AggregationMessage([(5, 500.0, 2.0)]))
    agg.on_message(2, AggregationMessage([(5, 999.0, 1.0)]))  # staler
    assert agg._samples[5] == (500.0, 2.0)
    agg.on_message(3, AggregationMessage([(5, 700.0, 3.0)]))  # fresher
    assert agg._samples[5] == (700.0, 3.0)


def test_own_sample_never_overwritten_by_gossip():
    sim = Simulator()
    net = Network(sim)
    agg = CapabilityAggregator(sim, net, 0, capability=lambda: 100.0,
                               view=None, rng=random.Random(1))
    agg._refresh_own_sample()
    agg.on_message(1, AggregationMessage([(0, 99999.0, 100.0)]))
    assert agg._samples[0][0] == 100.0


def test_stale_samples_evicted():
    capabilities = [700.0] * 10
    sim, net, directory, aggregators = build_system(capabilities, sample_ttl=1.0)
    sim.run(until=3.0)
    agg = aggregators[0]
    assert agg.sample_count() > 1
    # Stop everyone; samples now age without refresh.
    for a in aggregators:
        a.stop()
    sim.run(until=10.0)
    agg._evict_stale()
    # Only the node's own sample survives eviction.
    assert agg.sample_count() == 1


def test_aggregation_traffic_is_marginal():
    """The paper: ~1 KB/s per node at defaults, 'completely marginal'."""
    capabilities = [700_000.0] * 30
    sim, net, directory, aggregators = build_system(capabilities)
    sim.run(until=10.0)
    bytes_per_node_per_second = net.stats.bytes_sent / 30 / 10.0
    assert bytes_per_node_per_second < 12_000  # ~10 msgs/s * ~1.1 KB


def test_message_wire_size():
    message = AggregationMessage([(1, 2.0, 3.0)] * 10)
    assert message.wire_size() == 8 + 12 * 10


def test_estimate_tracks_capability_change():
    """When a node's capability changes, estimates follow within the TTL."""
    state = {"cap": 512.0}
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.02))
    directory = MembershipDirectory(sim, random.Random(0), mean_detection_delay=0.0)
    directory.register_all(range(4))
    aggregators = []
    for node_id in range(4):
        capability = (lambda: state["cap"]) if node_id == 0 else (lambda: 512.0)
        agg = CapabilityAggregator(sim, net, node_id, capability=capability,
                                   view=directory.view_of(node_id),
                                   rng=random.Random(node_id), fanout=3,
                                   sample_ttl=2.0)
        net.attach(node_id, AggEndpoint(agg), upload_capacity_bps=10e6)
        aggregators.append(agg)
    for agg in aggregators:
        agg.start()
    sim.run(until=3.0)
    before = aggregators[1].average_estimate()
    state["cap"] = 5120.0
    sim.run(until=8.0)
    after = aggregators[1].average_estimate()
    assert after > before * 1.5
