"""Tests for churn scenarios and scenario configuration."""

import random

import pytest

from repro.membership.directory import MembershipDirectory
from repro.sim.engine import Simulator
from repro.workloads.churn import CatastrophicFailure, IntervalChurn
from repro.workloads.distributions import MS_691
from repro.workloads.scenario import ScenarioConfig


def make_directory(sim, n=20):
    directory = MembershipDirectory(sim, random.Random(1), mean_detection_delay=0.0)
    directory.register_all(range(n))
    return directory


class TestCatastrophicFailure:
    def test_crashes_fraction_at_time(self):
        sim = Simulator()
        directory = make_directory(sim, n=20)
        crashed = []
        failure = CatastrophicFailure(fraction=0.5, at_time=60.0)
        failure.schedule(sim, directory, random.Random(2), crashed.append,
                         protect=[0])
        sim.run(until=59.9)
        assert crashed == []
        sim.run(until=61.0)
        assert len(crashed) == 10
        assert 0 not in crashed
        assert directory.alive_count() == 10
        assert failure.victims == crashed

    def test_validation(self):
        with pytest.raises(ValueError):
            CatastrophicFailure(fraction=1.0)
        with pytest.raises(ValueError):
            CatastrophicFailure(fraction=0.5, at_time=-1.0)

    def test_zero_fraction_is_noop(self):
        sim = Simulator()
        directory = make_directory(sim)
        failure = CatastrophicFailure(fraction=0.0, at_time=1.0)
        failure.schedule(sim, directory, random.Random(1), lambda v: None)
        sim.run()
        assert failure.victims == []


class TestIntervalChurn:
    def test_crashes_one_per_interval(self):
        sim = Simulator()
        directory = make_directory(sim, n=30)
        crashed = []
        churn = IntervalChurn(interval=5.0, stop=20.0)
        churn.schedule(sim, directory, random.Random(3), crashed.append,
                       protect=[0])
        sim.run(until=21.0)
        assert len(crashed) == 4  # t = 5, 10, 15, 20
        assert 0 not in crashed

    def test_stops_after_deadline(self):
        sim = Simulator()
        directory = make_directory(sim, n=30)
        crashed = []
        churn = IntervalChurn(interval=1.0, stop=3.0)
        churn.schedule(sim, directory, random.Random(3), crashed.append)
        sim.run(until=50.0)
        assert len(crashed) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalChurn(interval=0.0)


class TestScenarioConfig:
    def test_defaults_validate(self):
        ScenarioConfig().validate()

    def test_with_creates_modified_copy(self):
        base = ScenarioConfig()
        changed = base.with_(protocol="standard", n_nodes=50)
        assert changed.protocol == "standard"
        assert changed.n_nodes == 50
        assert base.protocol == "heap"

    def test_end_time_and_total_packets(self):
        config = ScenarioConfig(duration=30.0, drain=10.0, stream_start=2.0)
        assert config.end_time == 42.0
        assert config.total_packets % config.stream.packets_per_window == 0

    @pytest.mark.parametrize("overrides", [
        {"protocol": "carrier-pigeon"},
        {"n_nodes": 1},
        {"duration": 0.0},
        {"drain": -1.0},
        {"stream_start": -1.0},
        {"loss_rate": 1.0},
        {"source_capacity_bps": 0.0},
        {"degraded_fraction": 1.5},
        {"degraded_factor": 0.0},
        {"source_bias": -1.0},
    ])
    def test_invalid_configs(self, overrides):
        with pytest.raises(ValueError):
            ScenarioConfig(**overrides).validate()

    def test_distribution_field(self):
        config = ScenarioConfig(distribution=MS_691)
        assert config.distribution.name == "ms-691"

    def test_loss_rng_validation(self):
        ScenarioConfig(loss_rng="shared").validate()
        ScenarioConfig(loss_rng="per-pair").validate()
        with pytest.raises(ValueError, match="loss_rng"):
            ScenarioConfig(loss_rng="per-message").validate()

    def test_scenario_key_separates_loss_rng_modes(self):
        """Regression: the two loss models draw different traffic, so
        their runs must never alias in caches or checkpoints."""
        from repro.workloads.scenario import scenario_key

        shared = ScenarioConfig(loss_rate=0.1)
        per_pair = shared.with_(loss_rng="per-pair")
        assert scenario_key(shared) != scenario_key(per_pair)
        assert "loss_rng" in scenario_key(shared)
