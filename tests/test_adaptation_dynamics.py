"""Dynamic-adaptation tests: HEAP tracking capability changes and churn.

The paper's core claim is *continuous* adaptation: the aggregation
protocol keeps the average-capability estimate fresh, so fanouts follow
capability changes and survive population changes.  These tests exercise
those dynamics at the node level, end to end.
"""

import dataclasses

import pytest

from repro import ScenarioConfig, run_scenario
from repro.analysis.stats import mean
from repro.core.config import GossipConfig
from repro.core.heap import HeapGossipNode
from repro.membership.directory import MembershipDirectory
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.workloads import REF_691, CatastrophicFailure

import random


def build_heap_cluster(capabilities, seed=0, ttl=3.0):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    directory = MembershipDirectory(sim, random.Random(seed),
                                    mean_detection_delay=0.0)
    n = len(capabilities)
    directory.register_all(range(n))
    config = dataclasses.replace(GossipConfig(), aggregation_sample_ttl=ttl,
                                 aggregation_fanout=2)
    nodes = []
    for node_id in range(n):
        node = HeapGossipNode(sim, net, node_id, directory.view_of(node_id),
                              config, random.Random(seed * 31 + node_id),
                              capabilities[node_id])
        net.attach(node_id, node, upload_capacity_bps=capabilities[node_id])
        node.start()
        nodes.append(node)
    return sim, net, directory, nodes


def test_fanout_tracks_capability_increase():
    """A node whose advertised capability quadruples sees its fanout
    roughly quadruple once the aggregation estimate refreshes."""
    capabilities = [700_000.0] * 12
    sim, net, directory, nodes = build_heap_cluster(capabilities)
    sim.run(until=5.0)
    before = nodes[3].current_fanout()
    nodes[3].capability_bps *= 4
    sim.run(until=12.0)
    after = nodes[3].current_fanout()
    # Estimated average rises a little (one of 12 nodes changed), so the
    # ratio lands slightly below 4x.
    assert after > 2.5 * before


def test_fanout_tracks_capability_decrease():
    capabilities = [700_000.0] * 12
    sim, net, directory, nodes = build_heap_cluster(capabilities)
    sim.run(until=5.0)
    nodes[3].capability_bps /= 4
    sim.run(until=12.0)
    assert nodes[3].current_fanout() < 0.5 * 7.0


def test_estimate_survives_churn_of_rich_nodes():
    """When the rich tail dies, the estimated average falls (their stale
    samples TTL out), so survivors' relative capabilities rise."""
    capabilities = [3_000_000.0] * 3 + [500_000.0] * 12
    sim, net, directory, nodes = build_heap_cluster(capabilities, ttl=2.0)
    sim.run(until=5.0)
    poor_fanout_before = nodes[10].current_fanout()
    for rich in (0, 1, 2):
        net.crash(rich)
        nodes[rich].stop()
        directory.crash(rich)
    sim.run(until=15.0)
    estimate = nodes[10].average_capability_estimate()
    assert estimate == pytest.approx(500_000.0, rel=0.05)
    assert nodes[10].current_fanout() > poor_fanout_before


def test_heap_recovers_quality_after_partial_churn():
    """End to end: after a 25% crash, surviving receivers still decode
    post-failure windows (the directory flushes victims from views and
    fanouts re-normalize over the survivor population)."""
    result = run_scenario(ScenarioConfig(
        protocol="heap", distribution=REF_691, n_nodes=40, duration=24.0,
        drain=30.0, seed=31,
        churn=CatastrophicFailure(fraction=0.25, at_time=10.0)))
    analyzer = result.analyzer()
    windows = result.windows()
    late_windows = [w for w in windows
                    if result.publish_times[w * 110] > 22.0]
    assert late_windows
    survivors = result.receiver_ids()
    decode_rates = []
    for window in late_windows:
        decoding = sum(
            1 for node_id in survivors
            if analyzer.window_playback(result.log_of(node_id),
                                        window, lag=12.0).decodable)
        decode_rates.append(decoding / len(survivors))
    assert mean(decode_rates) > 0.9
