"""Tests for the benchmark trend gate (``benchmarks/check_trend.py``).

The gate script is standalone (CI runs it without PYTHONPATH), so these
tests exercise it as a subprocess: baseline-only mode, history
accumulation, the history-median reference, and the failure path.
"""

import json
import os
import subprocess
import sys

import pytest

SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir,
                      "benchmarks", "check_trend.py")


def _report(post=2_000_000, schedule=1_500_000, scenario=150_000,
            fanout=700_000):
    return {
        "engine": {"post_events_per_sec": post,
                   "schedule_events_per_sec": schedule},
        "fanout": {"send_many_events_per_sec": fanout},
        "scenario": {"events_per_sec": scenario},
    }


def _run(tmp_path, baseline, fresh, *extra):
    baseline_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    baseline_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    return subprocess.run(
        [sys.executable, SCRIPT, str(baseline_path), str(fresh_path), *extra],
        capture_output=True, text=True)


def test_passes_against_baseline_only(tmp_path):
    result = _run(tmp_path, _report(), _report())
    assert result.returncode == 0, result.stderr
    assert "trend ok" in result.stdout


def test_fails_on_regression(tmp_path):
    result = _run(tmp_path, _report(), _report(scenario=10_000))
    assert result.returncode == 1
    assert "regressed" in result.stderr


def test_history_accumulates_only_on_success(tmp_path):
    history = tmp_path / "history.jsonl"
    assert _run(tmp_path, _report(), _report(),
                "--history", str(history)).returncode == 0
    assert _run(tmp_path, _report(), _report(scenario=160_000),
                "--history", str(history)).returncode == 0
    records = [json.loads(line)
               for line in history.read_text().splitlines()]
    assert len(records) == 2
    assert records[1]["metrics"]["scenario.events_per_sec"] == 160_000
    # A regressing run fails the gate and must not pollute the history.
    assert _run(tmp_path, _report(), _report(scenario=10_000),
                "--history", str(history)).returncode == 1
    assert len(history.read_text().splitlines()) == 2


def test_reference_is_median_of_baseline_and_history(tmp_path):
    """The gate follows the measured trajectory: a fresh value that would
    fail against a stale (slow) committed baseline passes when the recent
    history shows today's hosts are simply faster — and vice versa: a
    value far below the history median fails even if it clears the
    ancient baseline."""
    history = tmp_path / "history.jsonl"
    with open(history, "w") as fh:
        for value in (400_000, 420_000, 440_000):
            fh.write(json.dumps(
                {"metrics": {"scenario.events_per_sec": value}}) + "\n")
    # Median of (150k baseline, 400k, 420k, 440k) = 410k; fresh 190k is
    # above the baseline but under half the trajectory -> fail.
    result = _run(tmp_path, _report(scenario=150_000),
                  _report(scenario=190_000), "--history", str(history))
    assert result.returncode == 1
    # 250k clears 50% of the 410k median -> pass.
    result = _run(tmp_path, _report(scenario=150_000),
                  _report(scenario=250_000), "--history", str(history))
    assert result.returncode == 0, result.stderr


def test_wire_batching_keys_skipped_when_reference_predates_them(tmp_path):
    """A fresh report carrying the ``sharding.wire_batching`` subsection
    must pass cleanly against a committed baseline (and history) from
    before wire batching existed — and start gating once history has
    recorded the new nested keys."""
    fresh = _report()
    fresh["sharding"] = {"serial_events_per_sec": 30_000,
                         "wire_batching": {"batched_events_per_sec": 16_000,
                                           "bytes_reduction": 3.0}}
    history = tmp_path / "history.jsonl"
    result = _run(tmp_path, _report(), fresh, "--history", str(history))
    assert result.returncode == 0, result.stderr
    # The passing run recorded the nested metrics ...
    record = json.loads(history.read_text().splitlines()[-1])
    assert record["metrics"]["sharding.wire_batching.bytes_reduction"] == 3.0
    # ... so a later collapse of the reduction factor now fails the gate.
    regressed = json.loads(json.dumps(fresh))
    regressed["sharding"]["wire_batching"]["bytes_reduction"] = 1.0
    result = _run(tmp_path, _report(), regressed, "--history", str(history))
    assert result.returncode == 1
    assert "bytes reduction" in result.stderr


def test_metric_missing_from_baseline_gated_via_history(tmp_path):
    """A metric the committed baseline predates (e.g. the fanout bench)
    is skipped until history exists, then gated against history alone."""
    baseline = _report()
    del baseline["fanout"]
    history = tmp_path / "history.jsonl"
    assert _run(tmp_path, baseline, _report(),
                "--history", str(history)).returncode == 0
    result = _run(tmp_path, baseline, _report(fanout=10_000),
                  "--history", str(history))
    assert result.returncode == 1
    assert "fanout" in result.stderr


def test_append_after_truncated_last_line_keeps_history_parseable(tmp_path):
    """A killed writer leaves a partial trailing line; appending must
    drop it (it is dead data the reader already ignores) rather than
    glue the new record onto it or leave it to poison later reads."""
    history = tmp_path / "history.jsonl"
    good = json.dumps({"metrics": {"scenario.events_per_sec": 150_000}})
    history.write_text(good + "\n" + good[:20])  # no trailing newline
    assert _run(tmp_path, _report(), _report(),
                "--history", str(history)).returncode == 0
    lines = history.read_text().splitlines()
    assert len(lines) == 2  # partial line dropped, fresh record appended
    for line in lines:
        json.loads(line)
    # And a subsequent run still reads + appends cleanly.
    assert _run(tmp_path, _report(), _report(),
                "--history", str(history)).returncode == 0
    assert len(history.read_text().splitlines()) == 3


def test_history_window_limits_reference(tmp_path):
    history = tmp_path / "history.jsonl"
    with open(history, "w") as fh:
        # Old slow records followed by a fast recent one.
        for value in (10_000, 10_000, 10_000, 2_000_000):
            fh.write(json.dumps(
                {"metrics": {"scenario.events_per_sec": value}}) + "\n")
    result = _run(tmp_path, _report(scenario=2_000_000),
                  _report(scenario=150_000),
                  "--history", str(history), "--history-window", "1")
    # Reference = median(2M baseline, 2M last record) = 2M -> 150k fails.
    assert result.returncode == 1
