"""Tests for the slow-start capability prober."""

import pytest

from repro.core.discovery import CapabilityProber
from repro.net.bandwidth import UplinkQueue
from repro.sim.engine import Simulator


def make_prober(sim, uplink, **kwargs):
    defaults = dict(initial_bps=64_000.0, probe_period=1.0)
    defaults.update(kwargs)
    return CapabilityProber(sim, uplink, **defaults)


def drive_uplink(sim, uplink, rate_bps, seconds):
    """Schedule sends that keep the uplink at roughly ``rate_bps``."""
    bytes_per_tick = rate_bps / 8.0 / 10.0
    ticks = int(seconds * 10)
    for i in range(ticks):
        sim.schedule(i * 0.1, lambda b=int(bytes_per_tick): uplink.enqueue(sim.now, b))


def test_grows_when_advertisement_is_filled():
    sim = Simulator()
    uplink = UplinkQueue(10e6)
    prober = make_prober(sim, uplink, initial_bps=64_000.0, growth=2.0)
    prober.start()
    drive_uplink(sim, uplink, rate_bps=2_000_000.0, seconds=5.0)
    sim.run(until=5.0)
    prober.stop()
    # 64k doubling per filled period: should have grown far beyond start.
    assert prober.advertised_bps > 500_000.0


def test_growth_capped_at_ceiling():
    sim = Simulator()
    uplink = UplinkQueue(10e6)
    prober = make_prober(sim, uplink, initial_bps=64_000.0, growth=4.0,
                         ceiling_bps=256_000.0)
    prober.start()
    drive_uplink(sim, uplink, rate_bps=5_000_000.0, seconds=5.0)
    sim.run(until=5.0)
    assert prober.advertised_bps == 256_000.0


def test_decays_when_under_used():
    sim = Simulator()
    uplink = UplinkQueue(10e6)
    prober = make_prober(sim, uplink, initial_bps=1_000_000.0, decay=0.5)
    prober.start()
    # Trickle: ~50 kbps against a 1 Mbps advertisement.
    drive_uplink(sim, uplink, rate_bps=50_000.0, seconds=4.0)
    sim.run(until=4.0)
    assert prober.advertised_bps < 1_000_000.0
    # Never decays below what is actually flowing.
    assert prober.advertised_bps >= 50_000.0 * 0.9


def test_holds_steady_between_watermarks():
    sim = Simulator()
    uplink = UplinkQueue(10e6)
    prober = make_prober(sim, uplink, initial_bps=1_000_000.0,
                         high_watermark=0.8, low_watermark=0.3)
    prober.start()
    # ~50% utilization: between watermarks, no change.
    drive_uplink(sim, uplink, rate_bps=500_000.0, seconds=3.0)
    sim.run(until=3.0)
    assert prober.advertised_bps == 1_000_000.0


def test_on_change_callback_fires():
    sim = Simulator()
    uplink = UplinkQueue(10e6)
    changes = []
    prober = make_prober(sim, uplink, on_change=changes.append, growth=2.0)
    prober.start()
    drive_uplink(sim, uplink, rate_bps=1_000_000.0, seconds=2.0)
    sim.run(until=2.0)
    assert changes
    assert changes[-1] == prober.advertised_bps


def test_observed_rate_resets_each_probe():
    sim = Simulator()
    uplink = UplinkQueue(10e6)
    prober = make_prober(sim, uplink)
    prober.start()
    uplink.enqueue(0.0, 12_500)  # 100 kbit in the first period
    sim.run(until=1.0)
    # After the probe consumed it, a quiet second period observes ~0.
    sim.run(until=2.0)
    assert prober.observed_rate_bps() == 0.0
    assert prober.probes == 2


@pytest.mark.parametrize("kwargs", [
    {"initial_bps": 0.0},
    {"growth": 0.9},
    {"decay": 1.5},
    {"high_watermark": 0.2, "low_watermark": 0.3},
])
def test_parameter_validation(kwargs):
    sim = Simulator()
    uplink = UplinkQueue(1e6)
    with pytest.raises(ValueError):
        make_prober(sim, uplink, **kwargs)


def test_integration_with_heap_capability():
    """Wiring the prober to a HEAP node's advertised capability: the
    advertisement follows discovered throughput, and HEAP's fanout
    adaptation consumes it transparently."""
    from repro.core import GossipConfig
    from repro.core.fanout import AdaptiveFanout
    import random

    sim = Simulator()
    uplink = UplinkQueue(3_000_000.0)
    state = {"advertised": 64_000.0}
    prober = make_prober(sim, uplink, initial_bps=64_000.0, growth=2.0,
                         ceiling_bps=3_000_000.0,
                         on_change=lambda bps: state.update(advertised=bps))
    policy = AdaptiveFanout(7.0, lambda: state["advertised"],
                            lambda: 691.2 * 1024, rng=random.Random(1))
    prober.start()
    fanout_before = policy.current()
    drive_uplink(sim, uplink, rate_bps=2_800_000.0, seconds=8.0)
    sim.run(until=8.0)
    assert policy.current() > fanout_before
    assert state["advertised"] == 3_000_000.0
