"""Tests for the Cyclon-style peer sampling service."""

import random

import pytest

from repro.membership.peer_sampling import PeerSamplingService, ShuffleRequest, ViewEntry
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.engine import Simulator


def build_swarm(n=20, view_size=8, shuffle_length=4, seed=0, period=1.0):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    rng = random.Random(seed)
    services = []
    for node_id in range(n):
        service = PeerSamplingService(
            sim, net, node_id, random.Random(seed * 1000 + node_id),
            view_size=view_size, shuffle_length=shuffle_length, period=period)
        net.attach(node_id, service, upload_capacity_bps=10e6)
        services.append(service)
    # Bootstrap in a ring so the initial graph is connected but far from random.
    for node_id, service in enumerate(services):
        service.bootstrap([(node_id + i) % n for i in range(1, 4)])
    for service in services:
        service.start(phase=rng.uniform(0, period))
    return sim, net, services


def test_bootstrap_fills_view():
    sim, net, services = build_swarm(n=10)
    assert services[0].neighbors() == [1, 2, 3]


def test_bootstrap_skips_self_and_respects_capacity():
    sim = Simulator()
    net = Network(sim)
    service = PeerSamplingService(sim, net, 0, random.Random(1), view_size=3, shuffle_length=2)
    service.bootstrap([0, 1, 2, 3, 4, 5])
    assert len(service.neighbors()) == 3
    assert 0 not in service.neighbors()


def test_shuffle_length_bounded_by_view_size():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(ValueError):
        PeerSamplingService(sim, net, 0, random.Random(1), view_size=4, shuffle_length=5)


def test_views_fill_to_capacity_over_time():
    sim, net, services = build_swarm(n=20, view_size=8)
    sim.run(until=30.0)
    sizes = [len(s.neighbors()) for s in services]
    assert min(sizes) >= 6  # essentially all views should be near-full


def test_view_never_contains_self_or_duplicates():
    sim, net, services = build_swarm(n=15)
    sim.run(until=20.0)
    for service in services:
        neighbors = service.neighbors()
        assert service.node_id not in neighbors
        assert len(neighbors) == len(set(neighbors))
        assert len(neighbors) <= service.view_size


def test_overlay_becomes_connected_and_mixed():
    # Starting from a ring, shuffling should spread links widely: the union
    # of in-degree should cover all nodes and views should not remain the
    # initial ring neighbors.
    sim, net, services = build_swarm(n=30, view_size=8)
    initial = {s.node_id: set(s.neighbors()) for s in services}
    sim.run(until=60.0)
    moved = sum(1 for s in services if set(s.neighbors()) != initial[s.node_id])
    assert moved > 25
    pointed_at = set()
    for service in services:
        pointed_at.update(service.neighbors())
    assert len(pointed_at) == 30


def test_dead_entries_eventually_flushed():
    sim, net, services = build_swarm(n=20, view_size=6, shuffle_length=3)
    sim.run(until=10.0)
    net.crash(5)
    services[5].stop()
    sim.run(until=300.0)
    holders = [s for s in services if s.node_id != 5 and 5 in s.neighbors()]
    # Aging + shuffle-consumption makes stale entries rare; allow a small tail.
    assert len(holders) <= 2


def test_local_view_mirror_tracks_entries():
    sim, net, services = build_swarm(n=10)
    sim.run(until=10.0)
    for service in services:
        assert sorted(service.view.members()) == service.neighbors()


def test_shuffle_request_wire_size():
    request = ShuffleRequest([(1, 0), (2, 3)])
    assert request.wire_size() == 8 + 12 * 2


def test_view_entry_copy_is_independent():
    entry = ViewEntry(4, age=2)
    copy = entry.copy()
    copy.age = 9
    assert entry.age == 2
