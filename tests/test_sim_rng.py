"""Unit tests for named seeded RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "latency") == derive_seed(42, "latency")


def test_derive_seed_differs_by_name_and_master():
    assert derive_seed(42, "latency") != derive_seed(42, "loss")
    assert derive_seed(42, "latency") != derive_seed(43, "latency")


def test_same_name_returns_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("peer") is reg.stream("peer")


def test_streams_are_independent():
    reg_a = RngRegistry(7)
    reg_b = RngRegistry(7)
    # Consuming stream "x" must not perturb stream "y".
    reg_a.stream("x").random()
    seq_a = [reg_a.stream("y").random() for _ in range(5)]
    seq_b = [reg_b.stream("y").random() for _ in range(5)]
    assert seq_a == seq_b


def test_registry_reproducible_across_instances():
    seq1 = [RngRegistry(99).stream("churn").random() for _ in range(1)]
    seq2 = [RngRegistry(99).stream("churn").random() for _ in range(1)]
    assert seq1 == seq2


def test_fork_creates_independent_registry():
    reg = RngRegistry(5)
    child_a = reg.fork("node-1")
    child_b = reg.fork("node-2")
    assert child_a.master_seed != child_b.master_seed
    assert child_a.stream("x").random() != child_b.stream("x").random()
    # Forking is itself deterministic.
    again = RngRegistry(5).fork("node-1")
    assert again.stream("x").random() == RngRegistry(5).fork("node-1").stream("x").random()


def test_contains_tracks_created_streams():
    reg = RngRegistry(1)
    assert "x" not in reg
    reg.stream("x")
    assert "x" in reg
