"""Unit tests for named seeded RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "latency") == derive_seed(42, "latency")


def test_derive_seed_differs_by_name_and_master():
    assert derive_seed(42, "latency") != derive_seed(42, "loss")
    assert derive_seed(42, "latency") != derive_seed(43, "latency")


def test_same_name_returns_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("peer") is reg.stream("peer")


def test_streams_are_independent():
    reg_a = RngRegistry(7)
    reg_b = RngRegistry(7)
    # Consuming stream "x" must not perturb stream "y".
    reg_a.stream("x").random()
    seq_a = [reg_a.stream("y").random() for _ in range(5)]
    seq_b = [reg_b.stream("y").random() for _ in range(5)]
    assert seq_a == seq_b


def test_registry_reproducible_across_instances():
    seq1 = [RngRegistry(99).stream("churn").random() for _ in range(1)]
    seq2 = [RngRegistry(99).stream("churn").random() for _ in range(1)]
    assert seq1 == seq2


def test_fork_creates_independent_registry():
    reg = RngRegistry(5)
    child_a = reg.fork("node-1")
    child_b = reg.fork("node-2")
    assert child_a.master_seed != child_b.master_seed
    assert child_a.stream("x").random() != child_b.stream("x").random()
    # Forking is itself deterministic.
    again = RngRegistry(5).fork("node-1")
    assert again.stream("x").random() == RngRegistry(5).fork("node-1").stream("x").random()


def test_contains_tracks_created_streams():
    reg = RngRegistry(1)
    assert "x" not in reg
    reg.stream("x")
    assert "x" in reg


# ----------------------------------------------------------------------
# stream-independence guarantees the parallel experiment engine relies on
# ----------------------------------------------------------------------
class TestStreamIndependence:
    def test_creation_order_does_not_matter(self):
        # Stream values depend only on (master_seed, name), never on the
        # order streams were first requested in.
        reg_a = RngRegistry(11)
        reg_b = RngRegistry(11)
        reg_a.stream("latency")
        reg_a.stream("loss")
        value_a = reg_a.stream("workload").random()
        value_b = reg_b.stream("workload").random()
        assert value_a == value_b

    def test_heavy_consumption_of_one_stream_leaves_others_untouched(self):
        reg_a = RngRegistry(3)
        reg_b = RngRegistry(3)
        for _ in range(10_000):
            reg_a.stream("noise").random()
        assert ([reg_a.stream("quiet").random() for _ in range(10)]
                == [reg_b.stream("quiet").random() for _ in range(10)])

    def test_fork_streams_independent_from_parent_streams(self):
        reg = RngRegistry(8)
        parent_before = RngRegistry(8).stream("x").random()
        # Consuming a fork's streams must not perturb the parent's.
        fork = reg.fork("node-1")
        for _ in range(100):
            fork.stream("x").random()
        assert reg.stream("x").random() == parent_before

    def test_fork_name_and_stream_name_cannot_collide(self):
        # fork("a").stream("b") must differ from stream("fork:a:b")-style
        # flattenings of the hierarchy under the same master seed.
        reg = RngRegistry(13)
        forked = reg.fork("a").stream("b").random()
        flat = RngRegistry(13).stream("fork:a:b").random()
        assert forked != flat

    def test_many_forks_pairwise_distinct(self):
        reg = RngRegistry(21)
        first = {reg.fork(f"node-{i}").stream("protocol").random()
                 for i in range(100)}
        assert len(first) == 100

    def test_derive_seed_stable_value(self):
        # Pinned: derivation must stay stable across refactors, or every
        # seeded experiment silently changes identity.
        assert derive_seed(1, "latency") == 3007625498395427339
