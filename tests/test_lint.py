"""Tests for the ``repro lint`` determinism & shard-safety analyzer.

Every rule has a fixture pair under ``tests/lint_fixtures``: a
``*_flagged.py`` file it must fire on and a ``*_clean.py`` twin it must
stay quiet on.  The fixtures live outside the ``repro`` package, so the
package-scoped rule families (D101/D102, P401) are forced onto them
with the ``"*"`` wildcard module prefix.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths
from repro.lint.baseline import (BaselineError, filter_baselined,
                                 load_baseline, write_baseline)
from repro.lint.cli import main
from repro.lint.config import module_name_for
from repro.lint.driver import lint_file
from repro.lint.registry import all_rules, rules_matching

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent

RULE_IDS = ("D101", "D102", "D103", "D104",
            "S201", "S202", "S203", "K301", "K302", "P401")

#: Forces deterministic-module and hot-module rule families onto fixture
#: files, whose derived module names sit outside the repro package.
WILDCARD = ("--deterministic-modules", "*", "--hot-modules", "*")


def wildcard_config(rule_id=None):
    return LintConfig(deterministic_prefixes=("*",), hot_prefixes=("*",),
                      select=(rule_id,) if rule_id else ())


def lint_fixture(name, rule_id):
    findings, files_checked = lint_paths(
        [str(FIXTURES / name)], wildcard_config(rule_id))
    assert files_checked == 1
    return findings


# ----------------------------------------------------------------------
# rule catalog + fixture pairs
# ----------------------------------------------------------------------
def test_catalog_covers_documented_rules():
    assert {r.id for r in all_rules()} >= set(RULE_IDS)


def test_every_rule_documents_itself():
    for r in all_rules():
        assert r.id and r.name and r.rationale, r


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_fires_on_flagged_fixture(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_flagged.py", rule_id)
    assert findings, f"{rule_id} stayed quiet on its flagged fixture"
    assert {f.rule for f in findings} == {rule_id}
    for finding in findings:
        assert finding.line >= 1 and finding.col >= 1
        assert finding.message


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_quiet_on_clean_fixture(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_clean.py", rule_id)
    assert findings == [], f"{rule_id} fired on its clean fixture"


def test_unknown_selector_raises():
    with pytest.raises(ValueError, match="matches no rule"):
        rules_matching(("Z999",))


def test_prefix_selector_expands():
    assert [r.id for r in rules_matching(("D",))] == \
        ["D101", "D102", "D103", "D104"]


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def _lint_source(tmp_path, source, rule_id):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_file(str(path), wildcard_config(rule_id))


def test_same_line_suppression(tmp_path):
    bare = "def earlier(a, b):\n    return id(a) < id(b)\n"
    assert _lint_source(tmp_path, bare, "D104")
    suppressed = ("def earlier(a, b):\n"
                  "    return id(a) < id(b)  # repro-lint: disable=D104\n")
    assert _lint_source(tmp_path, suppressed, "D104") == []


def test_own_line_suppression_covers_next_line(tmp_path):
    source = ("def earlier(a, b):\n"
              "    # repro-lint: disable=D104\n"
              "    return id(a) < id(b)\n")
    assert _lint_source(tmp_path, source, "D104") == []


def test_suppression_all_wildcard(tmp_path):
    source = ("def earlier(a, b):\n"
              "    return id(a) < id(b)  # repro-lint: disable=all\n")
    assert _lint_source(tmp_path, source, "D104") == []


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    source = ("def earlier(a, b):\n"
              "    return id(a) < id(b)  # repro-lint: disable=D101\n")
    assert _lint_source(tmp_path, source, "D104")


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    findings, _ = lint_paths(
        [str(FIXTURES / "d104_flagged.py")], wildcard_config("D104"))
    assert findings
    baseline_path = tmp_path / "baseline.json"
    entries = write_baseline(str(baseline_path), findings)
    assert entries >= 1
    allowed = load_baseline(str(baseline_path))
    assert filter_baselined(findings, allowed) == []


def test_baseline_counts_cap_duplicates(tmp_path):
    one = tmp_path / "one.py"
    one.write_text("def f(a, b):\n    return id(a) < id(b)\n")
    findings = lint_file(str(one), wildcard_config("D104"))
    assert len(findings) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(str(baseline_path), findings)
    # A second, textually identical violation exceeds the budget of 1.
    one.write_text("def f(a, b):\n"
                   "    return id(a) < id(b)\n"
                   "\n\n"
                   "def g(a, b):\n"
                   "    return id(a) < id(b)\n")
    doubled = lint_file(str(one), wildcard_config("D104"))
    assert len(doubled) == 2
    kept = filter_baselined(doubled, load_baseline(str(baseline_path)))
    assert len(kept) == 1


def test_malformed_baseline_raises(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(BaselineError):
        load_baseline(str(bad))
    bad.write_text('{"version": 99, "entries": []}')
    with pytest.raises(BaselineError, match="version"):
        load_baseline(str(bad))


# ----------------------------------------------------------------------
# CLI surface (exit codes, formats, baseline flags)
# ----------------------------------------------------------------------
def test_cli_exit_one_on_findings(capsys):
    rc = main([str(FIXTURES / "d104_flagged.py"), "--select", "D104",
               *WILDCARD])
    assert rc == 1
    out = capsys.readouterr().out
    assert "D104" in out and "repro lint:" in out


def test_cli_exit_zero_on_clean(capsys):
    rc = main([str(FIXTURES / "d104_clean.py"), "--select", "D104",
               *WILDCARD])
    assert rc == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_exit_two_on_usage_errors(tmp_path, capsys):
    assert main([str(FIXTURES), "--select", "Z999"]) == 2
    assert main([str(tmp_path / "missing-dir-or-file")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    assert main([str(FIXTURES / "d104_clean.py"),
                 "--baseline", str(bad)]) == 2


def test_cli_json_report(capsys):
    rc = main([str(FIXTURES / "d104_flagged.py"), "--select", "D104",
               "--format", "json", *WILDCARD])
    assert rc == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_checked"] == 1
    assert report["total"] == len(report["findings"]) > 0
    assert set(report["counts_by_rule"]) == {"D104"}
    first = report["findings"][0]
    assert {"rule", "path", "line", "col", "message", "text"} <= set(first)


def test_cli_baseline_flags_round_trip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    flagged = str(FIXTURES / "d104_flagged.py")
    assert main([flagged, "--select", "D104", *WILDCARD,
                 "--write-baseline", str(baseline)]) == 0
    assert main([flagged, "--select", "D104", *WILDCARD,
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


def test_syntax_error_becomes_e999(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    findings = lint_file(str(broken))
    assert [f.rule for f in findings] == ["E999"]


# ----------------------------------------------------------------------
# self-test: seeding a violation into a copy of the real engine
# ----------------------------------------------------------------------
def test_wall_clock_seeded_into_engine_copy_is_caught(tmp_path):
    """Copy sim/engine.py under a repro/sim/ directory (so the default
    module scoping applies), confirm it lints clean, then inject a
    wall-clock read and confirm D101 catches exactly that line."""
    engine = REPO_ROOT / "src" / "repro" / "sim" / "engine.py"
    target_dir = tmp_path / "repro" / "sim"
    target_dir.mkdir(parents=True)
    copy = target_dir / "engine.py"
    shutil.copyfile(engine, copy)
    assert module_name_for(str(copy)) == "repro.sim.engine"

    findings, files_checked = lint_paths([str(copy)])
    assert files_checked == 1
    assert findings == [], "pristine engine.py must lint clean"

    copy.write_text(copy.read_text()
                    + "\n\nimport time\n\n\n"
                      "def _leaked_wall_clock():\n"
                      "    return time.time()\n")
    findings, _ = lint_paths([str(copy)])
    assert [f.rule for f in findings] == ["D101"]
    assert findings[0].text == "return time.time()"


def test_module_name_prefers_src_repro():
    assert module_name_for("src/repro/net/message.py") == \
        "repro.net.message"
    assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"
    assert module_name_for("tests/lint_fixtures/d101_flagged.py") == \
        "d101_flagged"


# ----------------------------------------------------------------------
# the gate itself: the shipped tree must be clean with no baseline
# ----------------------------------------------------------------------
def test_src_tree_is_lint_clean():
    findings, files_checked = lint_paths([str(REPO_ROOT / "src" / "repro")])
    assert files_checked > 50
    assert findings == [], "\n".join(f.render() for f in findings)
