"""Unit tests for GossipConfig validation and defaults."""

import dataclasses

import pytest

from repro.core.config import GossipConfig


def test_defaults_match_paper():
    config = GossipConfig()
    config.validate()
    assert config.fanout == 7.0
    assert config.gossip_period == 0.2
    assert config.aggregation_period == 0.2
    assert config.aggregation_fresh_count == 10
    assert config.retransmission


def test_config_is_frozen():
    config = GossipConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.fanout = 3.0


@pytest.mark.parametrize("overrides", [
    {"fanout": 0.5},
    {"gossip_period": 0.0},
    {"retransmission_period": -1.0},
    {"retransmission_retries": -1},
    {"min_fanout": -1.0},
    {"max_fanout": -2.0},
    {"min_fanout": 5.0, "max_fanout": 2.0},
    {"fanout_rounding": "banker"},
    {"aggregation_period": 0.0},
    {"aggregation_fresh_count": 0},
    {"aggregation_sample_ttl": 0.0},
    {"aggregation_fanout": 0},
])
def test_invalid_configs_rejected(overrides):
    config = dataclasses.replace(GossipConfig(), **overrides)
    with pytest.raises(ValueError):
        config.validate()


def test_max_fanout_zero_means_uncapped():
    config = dataclasses.replace(GossipConfig(), min_fanout=2.0, max_fanout=0.0)
    config.validate()  # must not raise
