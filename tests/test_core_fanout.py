"""Unit and property tests for fanout policies."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fanout import AdaptiveFanout, FixedFanout, ln_fanout, quantize_fanout


class TestLnFanout:
    def test_matches_paper_for_270_nodes(self):
        # ln(270) ~= 5.6; with the default headroom the paper uses ~7.
        assert ln_fanout(270) == pytest.approx(7.0, abs=0.1)

    def test_grows_logarithmically(self):
        assert ln_fanout(1000) - ln_fanout(100) == pytest.approx(math.log(10))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            ln_fanout(0)


class TestQuantize:
    def test_round_mode(self):
        assert quantize_fanout(6.8, "round", None) == 7
        assert quantize_fanout(7.2, "round", None) == 7

    def test_zero_or_negative(self):
        assert quantize_fanout(0.0, "round", None) == 0
        assert quantize_fanout(-3.0, "stochastic", random.Random(1)) == 0

    def test_stochastic_needs_rng(self):
        with pytest.raises(ValueError):
            quantize_fanout(1.5, "stochastic", None)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            quantize_fanout(1.5, "nearest", None)

    def test_stochastic_preserves_mean(self):
        rng = random.Random(42)
        samples = [quantize_fanout(3.3, "stochastic", rng) for _ in range(20000)]
        assert all(s in (3, 4) for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(3.3, abs=0.03)

    @given(st.floats(min_value=0.0, max_value=50.0))
    def test_property_stochastic_within_one_of_value(self, value):
        rng = random.Random(7)
        q = quantize_fanout(value, "stochastic", rng)
        assert math.floor(value) <= q <= math.ceil(value)


class TestFixedFanout:
    def test_constant(self):
        policy = FixedFanout(7.0)
        assert policy.current() == 7.0
        assert policy.partners_this_round() == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedFanout(-1.0)


class TestAdaptiveFanout:
    def make(self, capability, average, **kwargs):
        return AdaptiveFanout(
            base_fanout=7.0,
            capability=lambda: capability,
            average_estimate=lambda: average,
            rng=random.Random(3),
            **kwargs,
        )

    def test_equation_one(self):
        # b_p = 2 * b_avg -> fanout = 14 (Equation 1 of the paper).
        policy = self.make(capability=1400.0, average=700.0)
        assert policy.current() == pytest.approx(14.0)

    def test_poor_node_gets_fraction(self):
        policy = self.make(capability=256_000.0, average=691_000.0)
        assert policy.current() == pytest.approx(7.0 * 256 / 691)

    def test_min_fanout_floor(self):
        policy = self.make(capability=1.0, average=1000.0, min_fanout=1.0)
        assert policy.current() == 1.0

    def test_max_fanout_cap(self):
        policy = self.make(capability=100.0, average=1.0, max_fanout=20.0)
        assert policy.current() == 20.0

    def test_zero_average_falls_back_to_base(self):
        policy = self.make(capability=100.0, average=0.0)
        assert policy.current() == 7.0

    def test_tracks_dynamic_estimate(self):
        state = {"avg": 700.0}
        policy = AdaptiveFanout(7.0, lambda: 1400.0, lambda: state["avg"],
                                rng=random.Random(1))
        assert policy.current() == pytest.approx(14.0)
        state["avg"] = 1400.0
        assert policy.current() == pytest.approx(7.0)

    def test_rejects_base_below_one(self):
        with pytest.raises(ValueError):
            self.make(capability=1.0, average=1.0, min_fanout=0.0).__class__(
                base_fanout=0.5, capability=lambda: 1.0,
                average_estimate=lambda: 1.0)

    def test_average_fanout_preserved_across_population(self):
        """The mean of per-round quantized fanouts over a heterogeneous
        population approximates the base fanout — HEAP's reliability
        invariant (average fanout = ln(n) + c)."""
        rng = random.Random(9)
        capabilities = [3000.0] * 5 + [1000.0] * 10 + [512.0] * 85
        average = sum(capabilities) / len(capabilities)
        policies = [AdaptiveFanout(7.0, lambda c=c: c, lambda: average,
                                   min_fanout=0.0, rng=rng)
                    for c in capabilities]
        rounds = 200
        total = sum(p.partners_this_round() for p in policies for _ in range(rounds))
        mean_fanout = total / (len(policies) * rounds)
        assert mean_fanout == pytest.approx(7.0, rel=0.03)
