"""Chaos parity suite for the fault-injection plane and supervision.

The contract under test is the strongest one supervision makes: every
*recovered* injected fault is invisible in the results.  A grid whose
worker was killed mid-cell, a sharded scenario whose shard exited at a
window barrier, a checkpoint torn mid-write and resumed — all must
produce byte-identical records, summaries and renders to the clean run
of the same spec, because results are pure functions of (config, seed)
and supervision only ever replays deterministic work.

Non-recoverable paths are pinned too: a poison cell quarantines into a
structured ``CellFailure`` while the rest of the sweep completes, a
shard that out-crashes its restart budget raises a structured
``ShardFailure`` (never a deadlock), and fault clauses that target an
execution engine that is not running (no pool, no shard workers, no
checkpoint) are rejected loudly instead of silently not firing.
"""

import json

import pytest

from repro.experiments.multi_seed import metric_offline_delivery
from repro.experiments.parallel import run_grid
from repro.experiments.runner import run_scenario
from repro.experiments.specs import SweepSpec
from repro.faults import (
    FaultPlan,
    ShardFailure,
    ShardSupervision,
    SupervisionPolicy,
    TornCheckpointInjected,
    clock,
)
from repro.metrics.export import read_jsonl
from repro.metrics.lag import spec_lag_delivery
from repro.metrics.summary import standard_bundle, summarize
from repro.net.shard import run_sharded
from repro.service.jobs import JobSpec
from repro.workloads.distributions import REF_691
from repro.workloads.scenario import ScenarioConfig, scenario_key


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(n_nodes=10, duration=2.0, drain=4.0, distribution=REF_691)
    base.update(overrides)
    return ScenarioConfig(**base)


def metric_events(result) -> float:
    """Module-level (picklable) metric: total receiver deliveries."""
    return float(sum(len(result.log_of(node_id))
                     for node_id in result.receiver_ids()))


METRICS = {"delivery": metric_offline_delivery, "deliveries": metric_events}
SPECS = (spec_lag_delivery(0.99),)

#: The 4-cell chaos grid: 2 protocols x 2 seeds of a tiny scenario.
GRID_CONFIGS = (tiny_config(name="heap"),
                tiny_config(name="standard", protocol="standard"))
GRID_SEEDS = [1, 2]

#: Fast backoff so retry tests don't sleep for real.
FAST = SupervisionPolicy(backoff_base=0.01, backoff_cap=0.05)


def summary_blob(result) -> str:
    """Canonical JSON of the standard spec bundle: the byte-parity key."""
    return json.dumps(summarize(result, standard_bundle()), sort_keys=True)


def sharded_config(**overrides) -> ScenarioConfig:
    base = dict(protocol="heap", n_nodes=80, duration=3.0, drain=6.0,
                seed=5, distribution=REF_691,
                latency_rng="per-pair", latency_floor=0.02)
    base.update(overrides)
    return ScenarioConfig(**base)


# ----------------------------------------------------------------------
# FaultPlan: parsing, round-trips, validation
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_full_syntax(self):
        plan = FaultPlan.parse("crash-cell=1,crash-cell=3x2,"
                               "stall-cell=0:0.5,shard-exit=1@3,"
                               "shard-stall=0@2:1.5,drop-wire=1@4,"
                               "torn-checkpoint=2")
        assert plan.crash_cells == ((1, 1), (3, 2))
        assert plan.stall_cells == ((0, 0.5),)
        assert plan.shard_exit == (1, 3)
        assert plan.shard_stall == (0, 2, 1.5)
        assert plan.drop_wire == (1, 4)
        assert plan.torn_checkpoint == 2
        assert plan.has_pool_faults and plan.has_cell_faults
        assert plan.has_shard_faults

    def test_round_trips_through_text(self):
        text = "crash-cell=3x2,stall-cell=0:0.5,shard-exit=1@3"
        plan = FaultPlan.parse(text)
        assert plan.to_text() == text
        assert FaultPlan.parse(plan.to_text()) == plan

    def test_synthesized_text_parses_back(self):
        plan = FaultPlan(crash_cells=((1, 2),), drop_wire=(0, 4),
                         torn_checkpoint=1)
        assert FaultPlan.parse(plan.to_text()) == plan

    def test_blank_is_none(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("   ") is None

    def test_equality_ignores_clause_order_and_text(self):
        a = FaultPlan.parse("crash-cell=1, stall-cell=0:0.5")
        b = FaultPlan.parse("stall-cell=0:0.5,crash-cell=1")
        assert a == b
        assert a.text != b.text

    @pytest.mark.parametrize("bad", [
        "explode=1",              # unknown clause
        "crash-cell",             # missing '='
        "crash-cell=x",           # not an integer
        "crash-cell=1x0",         # kill budget < 1
        "stall-cell=0",           # missing duration
        "stall-cell=0:-1",        # non-positive duration
        "shard-exit=1",           # missing @WINDOW
        "shard-stall=1@2",        # missing :SECONDS
    ])
    def test_bad_clause_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_cell_fault_attempt_semantics(self):
        plan = FaultPlan.parse("crash-cell=1x2,stall-cell=2:0.5")
        # Crashes fire while the kill budget lasts, then stop.
        assert plan.cell_fault(1, 0) == ("crash",)
        assert plan.cell_fault(1, 1) == ("crash",)
        assert plan.cell_fault(1, 2) is None
        # Stalls fire on the first attempt only.
        assert plan.cell_fault(2, 0) == ("stall", 0.5)
        assert plan.cell_fault(2, 1) is None
        assert plan.cell_fault(0, 0) is None

    def test_without_shard_faults(self):
        plan = FaultPlan.parse("crash-cell=1,shard-exit=0@2")
        stripped = plan.without_shard_faults()
        assert stripped.crash_cells == ((1, 1),)
        assert not stripped.has_shard_faults
        assert FaultPlan.parse("shard-exit=0@2").without_shard_faults() is None


# ----------------------------------------------------------------------
# Identity: faults are an execution circumstance, not a parameter
# ----------------------------------------------------------------------
class TestFaultIdentity:
    def test_scenario_key_ignores_faults(self):
        config = tiny_config(seed=7)
        faulted = config.with_(faults=FaultPlan.parse("shard-exit=0@1"))
        assert scenario_key(faulted) == scenario_key(config)

    def test_sweep_fingerprint_ignores_faults(self):
        clean = SweepSpec(protocols=("heap",), nodes=10, seconds=2.0,
                          drain=4.0, num_seeds=2)
        faulted = SweepSpec(protocols=("heap",), nodes=10, seconds=2.0,
                            drain=4.0, num_seeds=2, faults="crash-cell=1")
        assert faulted.fingerprint() == clean.fingerprint()

    def test_job_fingerprint_ignores_faults(self):
        params = {"protocols": ["heap"], "nodes": 10, "seconds": 2.0,
                  "drain": 4.0, "num_seeds": 2}
        clean = JobSpec(kind="sweep", params=params)
        faulted = JobSpec(kind="sweep",
                          params=dict(params, faults="crash-cell=1"))
        assert faulted.fingerprint() == clean.fingerprint()

    def test_shard_faults_need_shards(self):
        with pytest.raises(ValueError, match="--shards > 1"):
            SweepSpec(protocols=("heap",), nodes=10, seconds=2.0, drain=4.0,
                      num_seeds=2, faults="shard-exit=0@1").check()


# ----------------------------------------------------------------------
# Grid cells: worker crashes, stalls, quarantine
# ----------------------------------------------------------------------
class TestCellCrashSupervision:
    @pytest.fixture(scope="class")
    def clean(self):
        return run_grid(GRID_CONFIGS, seeds=GRID_SEEDS, metrics=METRICS,
                        summaries=SPECS)

    def _faulted(self, faults, start_method, supervision=FAST):
        return run_grid(GRID_CONFIGS, seeds=GRID_SEEDS, metrics=METRICS,
                        summaries=SPECS, jobs=2, start_method=start_method,
                        faults=FaultPlan.parse(faults),
                        supervision=supervision)

    def test_crash_recovery_parity_fork(self, clean):
        faulted = self._faulted("crash-cell=1", "fork")
        assert faulted.determinism_keys() == clean.determinism_keys()
        assert faulted.summary_keys() == clean.summary_keys()
        assert faulted.render() == clean.render()
        assert faulted.cell_retries >= 1
        assert faulted.failures == ()

    def test_crash_recovery_parity_spawn(self, clean):
        faulted = self._faulted("crash-cell=0", "spawn")
        assert faulted.determinism_keys() == clean.determinism_keys()
        assert faulted.summary_keys() == clean.summary_keys()
        assert faulted.cell_retries >= 1
        assert faulted.failures == ()

    def test_double_crash_still_within_default_budget(self, clean):
        # Two kills, default budget of 1 + 2 retries: third attempt lands.
        faulted = self._faulted("crash-cell=2x2", "fork")
        assert faulted.determinism_keys() == clean.determinism_keys()
        assert faulted.cell_retries >= 2
        assert faulted.failures == ()

    def test_poison_cell_quarantined_sweep_completes(self, clean):
        faulted = self._faulted(
            "crash-cell=1x9", "fork",
            supervision=SupervisionPolicy(cell_retries=1, backoff_base=0.01))
        (failure,) = faulted.failures
        assert failure.kind == "crash"
        assert failure.index == 1
        assert failure.attempts == 2  # 1 first try + 1 retry, all killed
        assert faulted.records[1] is None
        assert sum(r is not None for r in faulted.records) == 3
        # Degraded-result contract: every other cell matches the clean run.
        expected = [key for i, key in enumerate(clean.determinism_keys())
                    if i != 1]
        assert faulted.determinism_keys() == expected
        assert "failed cells (1):" in faulted.render()
        assert failure.render() in faulted.render()

    def test_stall_trips_cell_timeout_then_recovers(self, clean):
        faulted = self._faulted(
            "stall-cell=0:30", "fork",
            supervision=SupervisionPolicy(cell_timeout=0.5,
                                          backoff_base=0.01))
        assert faulted.determinism_keys() == clean.determinism_keys()
        assert faulted.cell_retries >= 1
        assert faulted.failures == ()

    def test_crash_fault_requires_a_pool(self):
        with pytest.raises(ValueError, match="worker pool"):
            run_grid(GRID_CONFIGS, seeds=GRID_SEEDS, metrics=METRICS,
                     faults=FaultPlan.parse("crash-cell=1"))


# ----------------------------------------------------------------------
# Checkpoints: torn writes, repair, concurrent resumers
# ----------------------------------------------------------------------
class TestTornCheckpoint:
    @pytest.fixture(scope="class")
    def clean(self):
        return run_grid(GRID_CONFIGS, seeds=GRID_SEEDS, metrics=METRICS)

    def _tear(self, path: str) -> None:
        """Run the grid into a torn-checkpoint fault at record 1."""
        with pytest.raises(TornCheckpointInjected):
            run_grid(GRID_CONFIGS, seeds=GRID_SEEDS, metrics=METRICS,
                     checkpoint=path,
                     faults=FaultPlan.parse("torn-checkpoint=1"))

    def test_fault_tears_the_file_mid_line(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        self._tear(path)
        text = (tmp_path / "grid.jsonl").read_text()
        assert not text.endswith("\n")  # genuinely torn, not just short
        # Header survives; the torn tail is dropped by the repair reader.
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            objects = read_jsonl(path, repair=True)
        assert objects[0]["format"].startswith("repro")

    def test_resume_repairs_and_matches_clean_run(self, tmp_path, clean):
        path = str(tmp_path / "grid.jsonl")
        self._tear(path)
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            resumed = run_grid(GRID_CONFIGS, seeds=GRID_SEEDS,
                               metrics=METRICS, checkpoint=path, resume=True)
        assert resumed.determinism_keys() == clean.determinism_keys()
        # The repaired file parses cleanly end to end and resumes again
        # warning-free.
        objects = read_jsonl(path)
        assert sorted(obj["index"] for obj in objects[1:]) == [0, 1, 2, 3]

    def test_resume_repairs_under_spawn_pool(self, tmp_path, clean):
        path = str(tmp_path / "grid.jsonl")
        self._tear(path)
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            resumed = run_grid(GRID_CONFIGS, seeds=GRID_SEEDS,
                               metrics=METRICS, checkpoint=path, resume=True,
                               jobs=2, start_method="spawn")
        assert resumed.determinism_keys() == clean.determinism_keys()

    def test_concurrent_resumers_stay_line_aligned(self, tmp_path, clean):
        """Two resumers of the same fingerprint race: one repairs the
        torn tail (truncating the file), while the other still holds an
        O_APPEND handle opened *before* the repair.  Appends through the
        stale handle land at the new EOF — never at the stale offset —
        so the file stays line-aligned and keeps resuming cleanly."""
        path = str(tmp_path / "grid.jsonl")
        self._tear(path)
        stale = open(path, "a", encoding="utf-8")
        try:
            with pytest.warns(RuntimeWarning, match="torn trailing line"):
                run_grid(GRID_CONFIGS, seeds=GRID_SEEDS, metrics=METRICS,
                         checkpoint=path, resume=True)
            # The second resumer finishes a cell and appends its record
            # through the pre-repair handle: a duplicate of record 0.
            objects = read_jsonl(path)
            record_0 = next(obj for obj in objects[1:] if obj["index"] == 0)
            stale.write(json.dumps(record_0) + "\n")
            stale.flush()
        finally:
            stale.close()
        # Every line still parses; the duplicate index is tolerated.
        objects = read_jsonl(path)
        assert [0, 1, 2, 3, 0] == [obj["index"] for obj in objects[1:]]
        again = run_grid(GRID_CONFIGS, seeds=GRID_SEEDS, metrics=METRICS,
                         checkpoint=path, resume=True)
        assert again.determinism_keys() == clean.determinism_keys()

    def test_torn_checkpoint_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint"):
            run_grid(GRID_CONFIGS, seeds=GRID_SEEDS, metrics=METRICS,
                     faults=FaultPlan.parse("torn-checkpoint=1"))


# ----------------------------------------------------------------------
# Sharded scenarios: exits, stalls, corrupt wire buffers
# ----------------------------------------------------------------------
class TestShardSupervision:
    @pytest.fixture(scope="class")
    def serial_blob(self):
        return summary_blob(run_scenario(sharded_config()))

    def test_shard_exit_restart_parity_two_shards(self, serial_blob, capfd):
        config = sharded_config(shards=2,
                                faults=FaultPlan.parse("shard-exit=1@3"))
        merged = run_sharded(config, supervision=ShardSupervision(restarts=1))
        assert summary_blob(merged) == serial_blob
        err = capfd.readouterr().err
        assert "shard supervision:" in err
        assert "restarting scenario (attempt 1/1)" in err

    def test_shard_exit_restart_parity_four_shards(self, serial_blob):
        config = sharded_config(shards=4,
                                faults=FaultPlan.parse("shard-exit=3@5"))
        merged = run_sharded(config, supervision=ShardSupervision(restarts=1))
        assert summary_blob(merged) == serial_blob

    def test_shard_exit_restart_parity_spawn(self, serial_blob):
        config = sharded_config(shards=2,
                                faults=FaultPlan.parse("shard-exit=0@2"))
        merged = run_sharded(config, start_method="spawn",
                             supervision=ShardSupervision(restarts=1))
        assert summary_blob(merged) == serial_blob

    def test_exhausted_restart_budget_raises_structured_failure(self):
        config = sharded_config(shards=2,
                                faults=FaultPlan.parse("shard-exit=1@3"))
        with pytest.raises(ShardFailure, match="shard 1 exited") as exc_info:
            run_sharded(config, supervision=ShardSupervision(restarts=0))
        failure = exc_info.value
        assert failure.shard == 1
        assert failure.reason == "exited"
        assert failure.window_index == 3
        assert failure.last_barrier == 2

    def test_barrier_deadline_converts_wedge_to_failure(self):
        """A wedged-but-alive shard must fail the deadline, not hang the
        barrier forever — the deadlock this plane exists to kill."""
        config = sharded_config(shards=2,
                                faults=FaultPlan.parse("shard-stall=1@2:60"))
        started = clock.monotonic()
        with pytest.raises(ShardFailure,
                           match="missed the barrier deadline") as exc_info:
            run_sharded(config,
                        supervision=ShardSupervision(restarts=0,
                                                     barrier_timeout=1.0))
        assert clock.monotonic() - started < 30.0
        assert exc_info.value.shard == 1
        assert exc_info.value.window_index == 2

    def test_drop_wire_restart_parity(self, serial_blob, capfd):
        config = sharded_config(shards=2,
                                faults=FaultPlan.parse("drop-wire=0@2"))
        merged = run_sharded(config, supervision=ShardSupervision(restarts=1))
        assert summary_blob(merged) == serial_blob
        assert "restarting scenario" in capfd.readouterr().err

    def test_shard_faults_need_process_driver(self):
        config = sharded_config(shards=2,
                                faults=FaultPlan.parse("shard-exit=1@3"))
        with pytest.raises(ValueError, match="worker-process driver"):
            run_sharded(config, processes=False)


# ----------------------------------------------------------------------
# CLI: chaos sweeps print identical results plus recovery evidence
# ----------------------------------------------------------------------
class TestCliChaos:
    ARGS = ["sweep", "--protocols", "heap,standard", "--nodes", "10",
            "--seconds", "2", "--drain", "4", "--num-seeds", "2", "--quiet"]

    def test_faulted_sweep_stdout_matches_clean(self, capsys):
        from repro.cli import main

        assert main(self.ARGS) == 0
        clean = capsys.readouterr().out
        assert main(self.ARGS + ["--jobs", "2", "--faults",
                                 "crash-cell=1"]) == 0
        captured = capsys.readouterr()
        assert captured.out == clean
        assert "supervision: recovered" in captured.err

    def test_run_rejects_cell_faults(self, capsys):
        from repro.cli import main

        assert main(["run", "--nodes", "10", "--seconds", "2", "--drain", "4",
                     "--faults", "crash-cell=1"]) == 2
        assert "only takes shard faults" in capsys.readouterr().err
