"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.timers import OneShotTimer, PeriodicTimer


class TestOneShotTimer:
    def test_fires_once_after_delay(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(2.5)
        sim.run()
        assert fired == [2.5]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_restart_reschedules(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.start(5.0)  # restart before the first deadline
        sim.run()
        assert fired == [5.0]

    def test_armed_reflects_state(self):
        sim = Simulator()
        timer = OneShotTimer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_can_rearm_from_callback(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = OneShotTimer(sim, on_fire)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 0.2, lambda: fired.append(round(sim.now, 6)))
        timer.start()
        sim.run(until=1.0)
        assert fired == [0.2, 0.4, 0.6, 0.8, 1.0]
        timer.stop()

    def test_phase_offsets_first_tick(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start(phase=0.25)
        sim.run(until=2.5)
        assert fired == [0.25, 1.25, 2.25]
        timer.stop()

    def test_stop_halts_ticks(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=2.5)
        timer.stop()
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_callback_may_stop_timer(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 3:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run(until=100.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_tick_counter(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 0.5, lambda: None)
        timer.start()
        sim.run(until=5.0)
        assert timer.ticks == 10
        timer.stop()

    def test_zero_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_double_start_rejected(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        with pytest.raises(SimulationError):
            timer.start()
