"""Tests for gossip-based system-size estimation."""

import random

import pytest

from repro.core.size_estimation import SizeEstimateMessage, SizeEstimator
from repro.membership.directory import MembershipDirectory
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.engine import Simulator


class EstEndpoint:
    def __init__(self, estimator):
        self.estimator = estimator

    def on_message(self, envelope):
        self.estimator.on_message(envelope)


def build_system(n, seed=0, rounds_per_epoch=30, period=0.1):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    directory = MembershipDirectory(sim, random.Random(seed),
                                    mean_detection_delay=0.0)
    directory.register_all(range(n))
    estimators = []
    for node_id in range(n):
        estimator = SizeEstimator(
            sim, net, node_id, directory.view_of(node_id),
            random.Random(seed * 5003 + node_id), is_leader=(node_id == 0),
            period=period, rounds_per_epoch=rounds_per_epoch)
        net.attach(node_id, EstEndpoint(estimator), upload_capacity_bps=10e6)
        estimators.append(estimator)
    for estimator in estimators:
        estimator.start()
    return sim, net, directory, estimators


def test_no_estimate_before_first_epoch_settles():
    sim, net, directory, estimators = build_system(10, rounds_per_epoch=50)
    sim.run(until=1.0)  # 10 of 50 rounds
    assert all(e.estimate() is None for e in estimators)


@pytest.mark.parametrize("n", [8, 40])
def test_estimates_converge_to_population_size(n):
    sim, net, directory, estimators = build_system(n, rounds_per_epoch=40)
    sim.run(until=20.0)  # several epochs
    estimates = [e.estimate() for e in estimators if e.estimate() is not None]
    assert len(estimates) > n * 0.9
    median = sorted(estimates)[len(estimates) // 2]
    assert n * 0.5 < median < n * 2.0


def test_fanout_for_estimate():
    sim = Simulator()
    net = Network(sim)
    estimator = SizeEstimator(sim, net, 0, None, random.Random(1))
    # No estimate yet: fall back.
    assert estimator.fanout_for_estimate(fallback=7.0) == 7.0
    estimator._settled_estimate = 270.0
    assert estimator.fanout_for_estimate(c=1.4) == pytest.approx(7.0, abs=0.1)


def test_epochs_advance_and_track():
    sim, net, directory, estimators = build_system(12, rounds_per_epoch=20)
    sim.run(until=10.0)
    assert all(e.epoch >= 2 for e in estimators)


def test_lagging_epoch_message_ignored():
    sim = Simulator()
    net = Network(sim)
    estimator = SizeEstimator(sim, net, 0, None, random.Random(1), is_leader=True)
    net.attach(0, EstEndpoint(estimator), 10e6)
    estimator.epoch = 5
    value_before = estimator._value
    estimator._on_push(1, SizeEstimateMessage(epoch=3, value=0.5))
    assert estimator._value == value_before


def test_epoch_ahead_message_fast_forwards():
    sim = Simulator()
    net = Network(sim)
    estimator = SizeEstimator(sim, net, 0, None, random.Random(1), is_leader=False)
    net.attach(0, EstEndpoint(estimator), 10e6)
    net.attach(1, EstEndpoint(estimator), 10e6)
    estimator._on_push(1, SizeEstimateMessage(epoch=4, value=0.5))
    assert estimator.epoch == 4
    # Non-leader restarted at 0 then averaged with 0.5.
    assert estimator._value == pytest.approx(0.25)


def test_rounds_per_epoch_validation():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(ValueError):
        SizeEstimator(sim, net, 0, None, random.Random(1), rounds_per_epoch=0)


def test_wire_sizes():
    assert SizeEstimateMessage(0, 0.5).wire_size() == 24
