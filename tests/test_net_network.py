"""Unit and integration tests for the network fabric."""

import random

import pytest

from repro.net.latency import ConstantLatency
from repro.net.loss import BernoulliLoss
from repro.net.message import (UDP_IP_HEADER_BYTES, datagram_size,
                               intern_kind)
from repro.net.network import Network
from repro.sim.engine import Simulator


class FakePayload:
    def __init__(self, kind="test", size=100):
        self.kind = kind
        self.kind_id = intern_kind(kind, register=True)
        self._size = size

    def wire_size(self):
        return self._size


class Sink:
    def __init__(self):
        self.received = []

    def on_message(self, envelope):
        self.received.append(envelope)


def make_net(latency=0.05, loss=None):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(latency), loss=loss)
    return sim, net


def test_datagram_size_includes_header():
    assert datagram_size(FakePayload(size=100)) == 100 + UDP_IP_HEADER_BYTES


def test_message_delivered_with_latency_and_serialization():
    sim, net = make_net(latency=0.05)
    a, b = Sink(), Sink()
    net.attach(1, a, upload_capacity_bps=1_000_000)
    net.attach(2, b, upload_capacity_bps=1_000_000)
    payload = FakePayload(size=972)  # 1000B datagram -> 8ms at 1Mbps
    net.send(1, 2, payload)
    sim.run()
    assert len(b.received) == 1
    env = b.received[0]
    assert env.payload is payload
    assert env.arrival_time == pytest.approx(0.008 + 0.05)
    assert env.transit_time == pytest.approx(0.058)


def test_send_from_unattached_node_returns_none():
    sim, net = make_net()
    net.attach(2, Sink(), 1e6)
    assert net.send(1, 2, FakePayload()) is None


def test_send_to_unattached_node_is_dropped():
    sim, net = make_net()
    net.attach(1, Sink(), 1e6)
    net.send(1, 99, FakePayload())
    sim.run()
    assert net.stats.dropped_dead == 1


def test_double_attach_rejected():
    sim, net = make_net()
    net.attach(1, Sink(), 1e6)
    with pytest.raises(ValueError):
        net.attach(1, Sink(), 1e6)


def test_uplink_queueing_delays_second_message():
    sim, net = make_net(latency=0.0)
    sink = Sink()
    net.attach(1, Sink(), upload_capacity_bps=8000.0)  # 1000B -> 1s
    net.attach(2, sink, upload_capacity_bps=8000.0)
    net.send(1, 2, FakePayload(size=1000 - UDP_IP_HEADER_BYTES))
    net.send(1, 2, FakePayload(size=1000 - UDP_IP_HEADER_BYTES))
    sim.run()
    arrivals = [env.arrival_time for env in sink.received]
    assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]


def test_crashed_node_stops_receiving():
    sim, net = make_net(latency=0.5)
    sink = Sink()
    net.attach(1, Sink(), 1e9)
    net.attach(2, sink, 1e9)
    net.send(1, 2, FakePayload())
    net.crash(2)
    sim.run()
    assert sink.received == []
    assert net.stats.dropped_dead == 1
    assert not net.is_alive(2)


def test_crashed_node_stops_sending():
    sim, net = make_net()
    net.attach(1, Sink(), 1e9)
    net.attach(2, Sink(), 1e9)
    net.crash(1)
    assert net.send(1, 2, FakePayload()) is None


def test_queued_datagrams_die_with_sender():
    # Sender enqueues 10 slow datagrams then crashes at t=1.5: datagrams
    # whose serialization finished before the crash survive, the rest die.
    sim, net = make_net(latency=0.0)
    sink = Sink()
    net.attach(1, Sink(), upload_capacity_bps=8000.0)  # 1000B/s -> 1s each
    net.attach(2, sink, upload_capacity_bps=8000.0)
    for _ in range(10):
        net.send(1, 2, FakePayload(size=1000 - UDP_IP_HEADER_BYTES))
    sim.schedule(1.5, lambda: net.crash(1))
    sim.run()
    assert len(sink.received) == 1  # only the first (exit t=1.0) made it


def test_messages_on_wire_survive_sender_crash():
    sim, net = make_net(latency=1.0)
    sink = Sink()
    net.attach(1, Sink(), 1e9)
    net.attach(2, sink, 1e9)
    net.send(1, 2, FakePayload())  # exits wire ~immediately, arrives t~1.0
    sim.schedule(0.5, lambda: net.crash(1))
    sim.run()
    assert len(sink.received) == 1


def test_loss_model_applied():
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.0),
                  loss=BernoulliLoss(random.Random(1), 1.0))
    sink = Sink()
    net.attach(1, Sink(), 1e9)
    net.attach(2, sink, 1e9)
    net.send(1, 2, FakePayload())
    sim.run()
    assert sink.received == []
    assert net.stats.lost == 1


def test_stats_accounting():
    sim, net = make_net()
    sink = Sink()
    net.attach(1, Sink(), 1e9)
    net.attach(2, sink, 1e9)
    net.send(1, 2, FakePayload(kind="propose", size=72))
    net.send(1, 2, FakePayload(kind="serve", size=1372))
    sim.run()
    stats = net.stats
    assert stats.sent == 2
    assert stats.delivered == 2
    assert stats.count_by_kind == {"propose": 1, "serve": 1}
    assert stats.bytes_by_kind["propose"] == 72 + UDP_IP_HEADER_BYTES
    assert stats.node(1).bytes_up == stats.node(2).bytes_down
    assert stats.delivery_ratio() == 1.0


def test_control_overhead_fraction():
    sim, net = make_net()
    net.attach(1, Sink(), 1e9)
    net.attach(2, Sink(), 1e9)
    net.send(1, 2, FakePayload(kind="serve", size=1000 - UDP_IP_HEADER_BYTES))
    net.send(1, 2, FakePayload(kind="propose", size=1000 - UDP_IP_HEADER_BYTES))
    sim.run()
    assert net.stats.control_overhead_fraction() == pytest.approx(0.5)


def test_on_deliver_observer():
    sim, net = make_net()
    seen = []
    net.on_deliver = lambda env: seen.append(env.payload.kind)
    net.attach(1, Sink(), 1e9)
    net.attach(2, Sink(), 1e9)
    net.send(1, 2, FakePayload(kind="x"))
    sim.run()
    assert seen == ["x"]


def test_queue_cap_drops_recorded_in_stats():
    sim, net = make_net(latency=0.0)
    net.attach(1, Sink(), upload_capacity_bps=8000.0, max_queue_delay=0.5)
    net.attach(2, Sink(), upload_capacity_bps=8000.0)
    for _ in range(3):
        net.send(1, 2, FakePayload(size=1000 - UDP_IP_HEADER_BYTES))
    sim.run()
    assert net.stats.dropped_queue == 2


def test_detach_removes_node():
    sim, net = make_net()
    net.attach(1, Sink(), 1e9)
    assert net.is_alive(1)
    net.detach(1)
    assert not net.is_alive(1)
    assert 1 not in set(net.node_ids)


# ----------------------------------------------------------------------
# multicast fast path (send_many)
# ----------------------------------------------------------------------
class TestSendMany:
    def _stats_key(self, net):
        stats = net.stats
        return (stats.sent, stats.delivered, stats.lost, stats.dropped_queue,
                stats.bytes_sent, dict(stats.bytes_by_kind),
                dict(stats.count_by_kind),
                {n: (s.bytes_up, s.bytes_down, s.datagrams_up,
                     s.datagrams_down) for n, s in stats.per_node.items()})

    def _build(self, n, seed, reuse=False):
        """A fabric with per-destination RNG consumption in both the loss
        and latency models, so any deviation from caller-order draws shows."""
        from repro.net.latency import PairwiseLatency

        sim = Simulator()
        net = Network(sim, latency=PairwiseLatency(random.Random(seed)),
                      loss=BernoulliLoss(random.Random(seed + 1), 0.2),
                      reuse_envelopes=reuse)
        sinks = [Sink() for _ in range(n)]
        for i, sink in enumerate(sinks):
            net.attach(i, sink, 1e6)
        return sim, net, sinks

    @pytest.mark.parametrize("reuse", [False, True])
    def test_bit_identical_to_send_loop(self, reuse):
        """send_many == a per-destination send loop: same RNG draws, same
        arrivals, same stats — the golden-trace contract in miniature."""
        dsts = [3, 1, 4, 2, 1]  # duplicates and non-monotonic order on purpose
        payload = FakePayload(kind="fan", size=300)

        sim_a, net_a, sinks_a = self._build(5, seed=7, reuse=reuse)
        for dst in dsts:
            net_a.send(0, dst, payload)
        sim_a.run()

        sim_b, net_b, sinks_b = self._build(5, seed=7, reuse=reuse)
        wired = net_b.send_many(0, dsts, payload)
        sim_b.run()

        assert wired == net_b.stats.sent
        assert self._stats_key(net_a) == self._stats_key(net_b)
        for sink_a, sink_b in zip(sinks_a, sinks_b):
            assert ([(e.src, e.dst, e.arrival_time) for e in sink_a.received]
                    == [(e.src, e.dst, e.arrival_time) for e in sink_b.received])

    def test_wire_cost_computed_once_but_charged_per_destination(self):
        sim, net = make_net(latency=0.0)
        net.attach(1, Sink(), 1e9)
        sinks = [Sink() for _ in range(3)]
        for i, sink in enumerate(sinks):
            net.attach(2 + i, sink, 1e9)
        payload = FakePayload(kind="multi", size=100)
        sent = net.send_many(1, [2, 3, 4], payload)
        sim.run()
        assert sent == 3
        size = 100 + UDP_IP_HEADER_BYTES
        assert net.stats.bytes_sent == 3 * size
        assert net.stats.bytes_by_kind["multi"] == 3 * size
        assert net.stats.count_by_kind["multi"] == 3
        assert net.stats.node(1).datagrams_up == 3
        assert all(len(sink.received) == 1 for sink in sinks)

    def test_dead_or_unattached_sender_sends_nothing(self):
        sim, net = make_net()
        net.attach(2, Sink(), 1e9)
        assert net.send_many(1, [2], FakePayload()) == 0
        net.attach(1, Sink(), 1e9)
        net.crash(1)
        assert net.send_many(1, [2], FakePayload()) == 0
        assert net.stats.sent == 0

    def test_queue_cap_drops_skip_loss_and_latency_draws(self):
        """A destination dropped at the queue cap consumes no RNG — the
        next destination's draws line up with the equivalent send loop."""
        def run(use_many):
            sim = Simulator()
            from repro.net.latency import UniformLatency
            net = Network(sim, latency=UniformLatency(random.Random(5)))
            net.attach(1, Sink(), upload_capacity_bps=8000.0,
                       max_queue_delay=0.5)
            sink = Sink()
            net.attach(2, sink, 1e9)
            payload = FakePayload(size=1000 - UDP_IP_HEADER_BYTES)
            if use_many:
                net.send_many(1, [2, 2, 2], payload)
            else:
                for _ in range(3):
                    net.send(1, 2, payload)
            sim.run()
            return (net.stats.dropped_queue, net.stats.sent,
                    [e.arrival_time for e in sink.received])

        assert run(use_many=False) == run(use_many=True)
        assert run(use_many=True)[0] == 2

    def test_empty_destination_list_is_a_noop(self):
        sim, net = make_net()
        net.attach(1, Sink(), 1e9)
        assert net.send_many(1, [], FakePayload()) == 0
        assert net.stats.sent == 0

    def test_shared_payload_delivered_to_every_destination(self):
        sim, net = make_net(latency=0.0)
        net.attach(1, Sink(), 1e9)
        sinks = {i: Sink() for i in (2, 3)}
        for i, sink in sinks.items():
            net.attach(i, sink, 1e9)
        payload = FakePayload(kind="shared")
        net.send_many(1, [2, 3], payload)
        sim.run()
        for sink in sinks.values():
            assert sink.received[0].payload is payload


# ----------------------------------------------------------------------
# envelope recycling (reuse_envelopes=True, the experiment-runner mode)
# ----------------------------------------------------------------------
class TestEnvelopePooling:
    def _pooled_net(self, latency=0.0):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(latency),
                      reuse_envelopes=True)
        return sim, net

    def test_delivery_behaves_identically_with_pooling(self):
        sim, net = self._pooled_net(latency=0.05)
        kinds = []

        class Reader:
            def on_message(self, envelope):
                kinds.append((envelope.payload.kind, envelope.src,
                              envelope.dst, envelope.size_bytes))

        net.attach(1, Reader(), 1e9)
        net.attach(2, Reader(), 1e9)
        for i in range(5):
            net.send(1, 2, FakePayload(kind=f"k{i}", size=100 + i))
        sim.run()
        assert kinds == [(f"k{i}", 1, 2, 128 + i + UDP_IP_HEADER_BYTES - 28)
                         for i in range(5)]

    def test_envelope_objects_are_recycled(self):
        sim, net = self._pooled_net()
        seen = []

        class Reader:
            def on_message(self, envelope):
                seen.append(id(envelope))

        net.attach(1, Reader(), 1e9)
        net.attach(2, Reader(), 1e9)
        net.send(1, 2, FakePayload())
        sim.run()
        net.send(1, 2, FakePayload())
        sim.run()
        assert len(seen) == 2
        assert seen[0] == seen[1]  # the freed envelope was reused

    def test_no_recycling_without_opt_in(self):
        sim, net = make_net(latency=0.0)
        sink = Sink()
        net.attach(1, Sink(), 1e9)
        net.attach(2, sink, 1e9)
        net.send(1, 2, FakePayload())
        sim.run()
        first = sink.received[0]
        net.send(1, 2, FakePayload())
        sim.run()
        # Default mode: retained envelopes stay valid forever.
        assert sink.received[0] is first
        assert first is not sink.received[1]

    def test_on_deliver_observer_suspends_recycling(self):
        sim, net = self._pooled_net()
        retained = []
        net.on_deliver = retained.append
        net.attach(1, Sink(), 1e9)
        net.attach(2, Sink(), 1e9)
        net.send(1, 2, FakePayload(kind="a"))
        sim.run()
        net.send(1, 2, FakePayload(kind="b"))
        sim.run()
        assert [env.payload.kind for env in retained] == ["a", "b"]
        assert retained[0] is not retained[1]

    def test_stats_identical_with_and_without_pooling(self):
        def traffic(reuse):
            sim = Simulator()
            net = Network(sim, latency=ConstantLatency(0.01),
                          reuse_envelopes=reuse)
            net.attach(1, Sink(), 1e6)
            net.attach(2, Sink(), 1e6)
            for _ in range(20):
                net.send(1, 2, FakePayload(kind="serve", size=500))
            sim.run()
            stats = net.stats
            return (stats.sent, stats.delivered, stats.bytes_sent,
                    dict(stats.bytes_by_kind), stats.node(2).bytes_down)

        assert traffic(False) == traffic(True)
