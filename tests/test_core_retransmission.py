"""Unit tests for the retransmission manager."""

import pytest

from repro.core.retransmission import RetransmissionManager
from repro.sim.engine import Simulator


class Harness:
    def __init__(self, period=0.5, max_retries=2):
        self.sim = Simulator()
        self.delivered = set()
        self.resends = []
        self.released = []
        self.manager = RetransmissionManager(
            self.sim, period=period, max_retries=max_retries,
            is_delivered=self.delivered.__contains__,
            resend=lambda peer, ids: self.resends.append((self.sim.now, peer, ids)),
            release=lambda ids: self.released.extend(ids),
        )


def test_no_action_when_everything_delivered():
    h = Harness()
    h.manager.track(peer=1, ids=[10, 11])
    h.delivered.update({10, 11})
    h.sim.run()
    assert h.resends == []
    assert h.released == []


def test_resend_missing_ids_to_same_peer():
    h = Harness(period=0.5)
    h.manager.track(peer=1, ids=[10, 11, 12])
    h.delivered.add(10)
    h.sim.run(until=0.6)
    assert h.resends == [(0.5, 1, [11, 12])]


def test_retries_then_release():
    h = Harness(period=0.5, max_retries=2)
    h.manager.track(peer=1, ids=[10])
    h.sim.run()
    # Two resends (t=0.5, 1.0) then release at t=1.5.
    assert [(t, peer) for t, peer, _ in h.resends] == [(0.5, 1), (1.0, 1)]
    assert h.released == [10]
    assert h.manager.retransmissions == 2
    assert h.manager.abandoned == 1


def test_partial_delivery_between_retries():
    h = Harness(period=0.5, max_retries=3)
    h.manager.track(peer=2, ids=[1, 2, 3])
    h.sim.schedule(0.4, lambda: h.delivered.add(1))
    h.sim.schedule(0.9, lambda: h.delivered.update({2, 3}))
    h.sim.run()
    assert h.resends == [(0.5, 2, [2, 3])]
    assert h.released == []


def test_zero_retries_releases_immediately_on_expiry():
    h = Harness(period=0.5, max_retries=0)
    h.manager.track(peer=1, ids=[7])
    h.sim.run()
    assert h.resends == []
    assert h.released == [7]


def test_empty_ids_is_noop():
    h = Harness()
    h.manager.track(peer=1, ids=[])
    assert h.manager.outstanding() == 0
    h.sim.run()
    assert h.resends == []


def test_outstanding_counter():
    h = Harness()
    h.manager.track(peer=1, ids=[1])
    h.manager.track(peer=2, ids=[2])
    assert h.manager.outstanding() == 2
    h.delivered.update({1, 2})
    h.sim.run()
    assert h.manager.outstanding() == 0


def test_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        RetransmissionManager(sim, period=0.0, max_retries=1,
                              is_delivered=lambda i: False,
                              resend=lambda p, i: None, release=lambda i: None)
    with pytest.raises(ValueError):
        RetransmissionManager(sim, period=1.0, max_retries=-1,
                              is_delivered=lambda i: False,
                              resend=lambda p, i: None, release=lambda i: None)
