"""Sharded single-scenario execution: determinism and parity tests.

The contract under test is the strongest one the sharded engine makes:
partitioning a scenario across shards is a pure *execution* strategy —
the merged result's metric summaries are byte-identical to the serial
run of the same scenario, for any shard count, for both the in-process
windowed driver and real worker processes (fork and spawn).

The flagship case is a 1k-node heap scenario (paper-scale-plus, the
population size the ROADMAP names as the point of intra-scenario
sharding), verified at 2 and 4 shards.
"""

import json

import pytest

from repro.experiments.runner import run_scenario
from repro.metrics.summary import standard_bundle, summarize
from repro.net.shard import (ShardRouter, merge_harvests, partition,
                             run_sharded, shard_of)
from repro.workloads.churn import CatastrophicFailure
from repro.workloads.distributions import MS_691, REF_691
from repro.workloads.scenario import ScenarioConfig


def summary_blob(result) -> str:
    """Canonical JSON of the standard spec bundle: the byte-parity key."""
    return json.dumps(summarize(result, standard_bundle()), sort_keys=True)


def sharded_config(**overrides) -> ScenarioConfig:
    base = dict(protocol="heap", n_nodes=80, duration=3.0, drain=6.0,
                seed=5, distribution=REF_691,
                latency_rng="per-pair", latency_floor=0.02)
    base.update(overrides)
    return ScenarioConfig(**base)


# ----------------------------------------------------------------------
# flagship: 1k nodes, shards 2 and 4, byte-identical summaries
# ----------------------------------------------------------------------
class TestThousandNodeParity:
    """The acceptance case: one large (1k-node) scenario, sharded."""

    @pytest.fixture(scope="class")
    def serial_blob(self):
        return summary_blob(run_scenario(self._config()))

    @staticmethod
    def _config(**overrides):
        return sharded_config(n_nodes=1000, duration=1.0, drain=2.0,
                              seed=11, latency_floor=0.04, **overrides)

    def test_two_shard_processes_match_serial(self, serial_blob):
        merged = run_sharded(self._config(shards=2), processes=True)
        assert summary_blob(merged) == serial_blob

    def test_four_shards_match_serial(self, serial_blob):
        merged = run_sharded(self._config(shards=4), processes=False)
        assert summary_blob(merged) == serial_blob


# ----------------------------------------------------------------------
# drivers and substrates at small scale
# ----------------------------------------------------------------------
class TestDriverParity:
    def test_serial_driver_matches_serial_run(self):
        config = sharded_config()
        serial = summary_blob(run_scenario(config))
        merged = run_sharded(config.with_(shards=3), processes=False)
        assert summary_blob(merged) == serial

    def test_spawn_workers_match_serial(self):
        config = sharded_config(n_nodes=50, duration=2.0, drain=4.0)
        serial = summary_blob(run_scenario(config))
        merged = run_sharded(config.with_(shards=2), processes=True,
                             start_method="spawn")
        assert summary_blob(merged) == serial

    def test_run_scenario_dispatches_on_shards_field(self):
        config = sharded_config(n_nodes=40, duration=2.0, drain=4.0)
        serial = run_scenario(config)
        merged = run_scenario(config.with_(shards=2))
        assert summary_blob(merged) == summary_blob(serial)
        # Merged traffic totals equal the serial fabric's.
        assert merged.net.stats.sent == serial.net.stats.sent
        assert merged.net.stats.delivered == serial.net.stats.delivered
        assert merged.net.stats.bytes_sent == serial.net.stats.bytes_sent
        assert (merged.net.stats.bytes_by_kind
                == serial.net.stats.bytes_by_kind)
        assert merged.publish_times == serial.publish_times

    def test_standard_protocol_and_other_distribution(self):
        config = sharded_config(protocol="standard", distribution=MS_691,
                                n_nodes=50, duration=2.0, drain=4.0)
        serial = summary_blob(run_scenario(config))
        merged = run_sharded(config.with_(shards=2), processes=False)
        assert summary_blob(merged) == serial

    def test_cyclon_membership_and_discovery_shard_cleanly(self):
        # Peer sampling is message-based and discovery phases come off a
        # shared setup stream consumed for every node: both must survive
        # partitioning bit-for-bit.
        config = sharded_config(n_nodes=50, duration=2.0, drain=4.0,
                                membership="cyclon",
                                capability_discovery=True)
        serial = summary_blob(run_scenario(config))
        merged = run_sharded(config.with_(shards=2), processes=False)
        assert summary_blob(merged) == serial


# ----------------------------------------------------------------------
# partitioning and validation
# ----------------------------------------------------------------------
class TestShardingRules:
    def test_round_robin_partition_covers_population(self):
        parts = [partition(10, 3, i) for i in range(3)]
        assert set().union(*parts) == set(range(10))
        assert sum(len(p) for p in parts) == 10
        assert shard_of(0, 3) == 0  # the source lives in shard 0
        for i in range(3):
            assert all(shard_of(n, 3) == i for n in parts[i])

    def test_shared_latency_rng_rejected(self):
        with pytest.raises(ValueError, match="per-pair"):
            ScenarioConfig(shards=2, latency_floor=0.02).validate()

    def test_zero_floor_rejected(self):
        with pytest.raises(ValueError, match="latency_floor"):
            ScenarioConfig(shards=2, latency_rng="per-pair",
                           latency_floor=0.0).validate()

    def test_churn_accepted(self):
        # Was rejected until churn became replicated, verified state
        # (tests/test_shard_complete.py covers the parity contract).
        sharded_config(
            shards=2,
            churn=CatastrophicFailure(fraction=0.2, at_time=5.0),
        ).validate()

    def test_audit_accepted(self):
        sharded_config(shards=2, audit=True, freerider_fraction=0.1,
                       freerider_mode="nonserve").validate()

    def test_shared_loss_rejected_per_pair_accepted(self):
        # The shared loss model consumes one stream in global send order,
        # which sharding cannot reproduce; the per-pair model can.
        with pytest.raises(ValueError, match="loss_rng='per-pair'"):
            sharded_config(shards=2, loss_rate=0.01).validate()
        sharded_config(shards=2, loss_rate=0.01,
                       loss_rng="per-pair").validate()

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(ValueError, match="per shard"):
            sharded_config(n_nodes=3, shards=4).validate()

    def test_run_sharded_requires_multiple_shards(self):
        with pytest.raises(ValueError, match="shards > 1"):
            run_sharded(sharded_config())

    def test_worker_failure_surfaces_as_runtime_error(self):
        # A worker that dies mid-window must produce a loud coordinated
        # error at the coordinator, not a silent hang at the barrier.
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork to propagate the injected failure")
        config = sharded_config(n_nodes=40, duration=2.0, drain=4.0,
                                shards=2)
        import repro.net.shard as shard_mod

        original = shard_mod._ShardRun.run_window
        try:
            def boom(self, until):
                raise RuntimeError("injected shard failure")

            shard_mod._ShardRun.run_window = boom
            with pytest.raises(RuntimeError, match="shard .* failed"):
                shard_mod._run_process_shards(config, config.end_time, None)
        finally:
            shard_mod._ShardRun.run_window = original


class TestMergedResult:
    def test_merged_result_exposes_experiment_surface(self):
        config = sharded_config(n_nodes=40, duration=2.0, drain=4.0,
                                shards=2)
        merged = run_scenario(config)
        receivers = merged.receiver_ids()
        assert receivers == list(range(1, 40))
        assert len(merged.class_labels()) == 3
        for node_id in receivers:
            assert merged.log_of(node_id) is not None
            assert 0.0 <= merged.uplink_utilization(node_id) <= 1.0
        assert merged.total_packets == len(merged.publish_times)
        assert merged.sim.events_executed > 0

    def test_merge_harvests_is_order_insensitive_by_ownership(self):
        # Each shard harvest carries disjoint logs/uplinks; merging must
        # reassemble the full population exactly once.
        config = sharded_config(n_nodes=30, duration=2.0, drain=4.0,
                                shards=3)
        from repro.net.shard import _run_serial_shards

        harvests = _run_serial_shards(config, config.end_time)
        merged = merge_harvests(config, harvests)
        owned = [set(h["logs"]) for h in harvests]
        assert set().union(*owned) == set(range(30))
        for a in range(3):
            for b in range(a + 1, 3):
                assert not (owned[a] & owned[b])
        assert len(merged.nodes) == 30


class TestShardRouterOwnership:
    def test_local_and_remote_split(self):
        owned = partition(20, 2, 0)
        router = ShardRouter(owned, 2)
        assert all(n % 2 == 0 for n in router.owned)
        assert len(router.take_outboxes()) == 2
