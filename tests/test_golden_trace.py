"""Golden-trace regression tests for the simulator hot path.

These pin the *exact* summary metrics of two small fig2-style scenarios
(standard gossip at fanout 15 and HEAP at fanout 7, both on the ms-691
distribution).  The pinned values were generated at the time of the
parallel-engine / hot-path overhaul and verified to be bit-identical to
the original seed implementation's output, so they encode the protocol's
behavior independently of how the engine is implemented.

If a refactor of the event queue, the network fast path, or the RNG
plumbing changes *any* of these numbers, it changed protocol behavior —
not just performance — and every archived figure silently shifts.  Fix
the refactor, or (for an intentional behavioral change) regenerate the
constants and say so loudly in the commit.

Integer counters are compared exactly; floats with a 1e-9 relative
tolerance (they are deterministic on one platform, but libm differences
across platforms can wiggle the last bits of lognormal draws).
"""

import pytest

from repro.analysis.stats import mean
from repro.experiments.runner import run_scenario
from repro.metrics.bandwidth import utilization_by_class
from repro.metrics.jitter import jitter_free_fraction_by_class
from repro.metrics.lag import per_node_lag_jitter_free
from repro.workloads.distributions import MS_691
from repro.workloads.scenario import ScenarioConfig

APPROX = dict(rel=1e-9)


def _run(protocol: str, fanout: float):
    config = ScenarioConfig(protocol=protocol, n_nodes=40, duration=6.0,
                            drain=12.0, seed=42, distribution=MS_691)
    if fanout != config.gossip.fanout:
        config = config.with_(gossip=config.gossip.__class__(fanout=fanout))
    return run_scenario(config)


@pytest.fixture(scope="module")
def standard_result():
    return _run("standard", 15.0)


@pytest.fixture(scope="module")
def heap_result():
    return _run("heap", 7.0)


class TestStandardGolden:
    """standard gossip, fanout 15, ms-691, 40 nodes, seed 42."""

    def test_event_and_traffic_counters(self, standard_result):
        r = standard_result
        assert r.sim.events_executed == 57520
        assert r.net.stats.sent == 43475
        assert r.net.stats.delivered == 43475
        assert r.net.stats.bytes_sent == 20343420
        assert r.net.stats.bytes_by_kind["serve"] == 17441100

    def test_lag_summary(self, standard_result):
        lags = per_node_lag_jitter_free(standard_result)
        assert mean(lags.values()) == pytest.approx(0.9790508577822078, **APPROX)

    def test_quality_and_bandwidth_by_class(self, standard_result):
        jff = jitter_free_fraction_by_class(standard_result, 10.0)
        assert jff == {"512kbps": 100.0, "1Mbps": 100.0, "3Mbps": 100.0}
        util = utilization_by_class(standard_result)
        assert util["512kbps"] == pytest.approx(75.49241191208965, **APPROX)
        assert util["1Mbps"] == pytest.approx(55.57492574055989, **APPROX)
        assert util["3Mbps"] == pytest.approx(38.68052164713542, **APPROX)

    def test_full_delivery_no_duplicates(self, standard_result):
        r = standard_result
        total = r.total_packets
        delivery = mean(r.log_of(n).delivery_ratio(total)
                        for n in r.receiver_ids())
        assert delivery == 1.0
        assert sum(r.log_of(n).duplicates for n in r.receiver_ids()) == 0


class TestHeapGolden:
    """HEAP, fanout 7, ms-691, 40 nodes, seed 42."""

    def test_event_and_traffic_counters(self, heap_result):
        r = heap_result
        assert r.sim.events_executed == 46472
        assert r.net.stats.sent == 30548
        assert r.net.stats.delivered == 30537
        assert r.net.stats.bytes_sent == 19498880
        assert r.net.stats.bytes_by_kind["serve"] == 17362484

    def test_lag_summary(self, heap_result):
        lags = per_node_lag_jitter_free(heap_result)
        assert mean(lags.values()) == pytest.approx(1.163841312122211, **APPROX)

    def test_heap_equalizes_utilization(self, heap_result):
        util = utilization_by_class(heap_result)
        assert util["512kbps"] == pytest.approx(75.58646153922034, **APPROX)
        assert util["1Mbps"] == pytest.approx(79.88662719726564, **APPROX)
        assert util["3Mbps"] == pytest.approx(82.91965060763889, **APPROX)

    def test_delivery_ratio(self, heap_result):
        r = heap_result
        total = r.total_packets
        delivery = mean(r.log_of(n).delivery_ratio(total)
                        for n in r.receiver_ids())
        assert delivery == pytest.approx(0.9998445998446, **APPROX)
        assert sum(r.log_of(n).duplicates for n in r.receiver_ids()) == 0
