"""Unit tests for latency and loss models."""

import hashlib
import json
import random

import pytest

from repro.net.latency import (
    ConstantLatency,
    LogNormalLatency,
    PairwiseLatency,
    UniformLatency,
)
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, NoLoss, PerPairLoss


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.08)
        assert model.sample(1, 2) == 0.08
        assert model.mean() == 0.08

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(random.Random(1), low=0.02, high=0.09)
        samples = [model.sample(0, 1) for _ in range(200)]
        assert all(0.02 <= s < 0.09 for s in samples)
        assert model.mean() == pytest.approx(0.055)

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(random.Random(1), low=0.5, high=0.1)

    def test_lognormal_positive_and_floored(self):
        model = LogNormalLatency(random.Random(2), median=0.05, sigma=1.5, floor=0.01)
        samples = [model.sample(0, 1) for _ in range(500)]
        assert all(s >= 0.01 for s in samples)

    def test_lognormal_median_roughly_respected(self):
        model = LogNormalLatency(random.Random(3), median=0.05, sigma=0.5, floor=0.0001)
        samples = sorted(model.sample(0, 1) for _ in range(2000))
        median = samples[len(samples) // 2]
        assert 0.04 < median < 0.06

    def test_lognormal_rejects_nonpositive_median(self):
        with pytest.raises(ValueError):
            LogNormalLatency(random.Random(1), median=0.0)

    def test_pairwise_base_stable_and_symmetric(self):
        model = PairwiseLatency(random.Random(4), jitter=0.0)
        assert model.base(1, 2) == model.base(1, 2)
        assert model.base(1, 2) == model.base(2, 1)
        assert model.sample(1, 2) == model.base(1, 2)

    def test_pairwise_pairs_differ(self):
        model = PairwiseLatency(random.Random(5), jitter=0.0)
        bases = {model.base(0, i) for i in range(1, 20)}
        assert len(bases) > 10

    def test_pairwise_jitter_added(self):
        model = PairwiseLatency(random.Random(6), jitter=0.02)
        base = model.base(1, 2)
        samples = [model.sample(1, 2) for _ in range(100)]
        assert all(base <= s <= base + 0.02 for s in samples)
        assert len(set(samples)) > 1


class TestLossModels:
    def test_no_loss(self):
        assert NoLoss().is_lost(0, 1) is False

    def test_bernoulli_rate_zero_and_one(self):
        rng = random.Random(7)
        assert not any(BernoulliLoss(rng, 0.0).is_lost(0, 1) for _ in range(100))
        assert all(BernoulliLoss(rng, 1.0).is_lost(0, 1) for _ in range(100))

    def test_bernoulli_rate_statistical(self):
        model = BernoulliLoss(random.Random(8), 0.2)
        losses = sum(model.is_lost(0, 1) for _ in range(5000))
        assert 800 < losses < 1200

    def test_bernoulli_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            BernoulliLoss(random.Random(1), 1.5)

    def test_gilbert_elliott_loses_more_than_good_state_alone(self):
        model = GilbertElliottLoss(random.Random(9), p_good_to_bad=0.05,
                                   p_bad_to_good=0.2, good_loss=0.0, bad_loss=0.8)
        losses = sum(model.is_lost(0, 1) for _ in range(5000))
        expected_fraction = model.steady_state_bad_fraction() * 0.8
        assert losses > 0
        assert abs(losses / 5000 - expected_fraction) < 0.05

    def test_gilbert_elliott_state_is_per_link(self):
        model = GilbertElliottLoss(random.Random(10), p_good_to_bad=1.0,
                                   p_bad_to_good=0.0, good_loss=0.0, bad_loss=1.0)
        # Link (0,1) transitions to bad on first datagram and stays there.
        assert model.is_lost(0, 1)
        # A different link starts in its own good state but also flips.
        assert model.is_lost(2, 3)

    def test_gilbert_elliott_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(1), p_good_to_bad=2.0)

    def test_steady_state_bad_fraction_degenerate(self):
        model = GilbertElliottLoss(random.Random(1), p_good_to_bad=0.0, p_bad_to_good=0.0)
        assert model.steady_state_bad_fraction() == 0.0


class TestPerPairLoss:
    """The order-independent loss model sharded execution relies on."""

    def test_send_order_does_not_change_decisions(self):
        """The property sharding needs: drop decisions are a pure
        function of each directed link's own send sequence, so two
        executions that interleave links differently (a serial run vs a
        sharded one) draw identical per-link loss patterns."""
        links = [(0, 1), (0, 2), (3, 1), (2, 0)]
        forward = PerPairLoss(seed=11, rate=0.3)
        decisions = {link: [forward.is_lost(*link) for _ in range(50)]
                     for link in links}
        permuted = PerPairLoss(seed=11, rate=0.3)
        replayed = {link: [] for link in links}
        for round_ in range(50):
            for link in reversed(links):  # a different global interleaving
                replayed[link].append(permuted.is_lost(*link))
        assert replayed == decisions

    def test_links_are_independent_and_directed(self):
        model = PerPairLoss(seed=12, rate=0.5)
        a = [model.is_lost(0, 1) for _ in range(64)]
        b = [model.is_lost(1, 0) for _ in range(64)]
        c = [model.is_lost(0, 2) for _ in range(64)]
        assert a != b  # direction matters: (0,1) and (1,0) are distinct
        assert a != c

    def test_rate_statistical(self):
        model = PerPairLoss(seed=13, rate=0.2)
        losses = sum(model.is_lost(0, 1) for _ in range(5000))
        assert 800 < losses < 1200

    def test_rate_zero_and_one(self):
        assert not any(PerPairLoss(seed=1, rate=0.0).is_lost(0, 1)
                       for _ in range(100))
        assert all(PerPairLoss(seed=1, rate=1.0).is_lost(0, 1)
                   for _ in range(100))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PerPairLoss(seed=1, rate=1.5)


class TestSharedLossGoldenPin:
    """The historical shared-stream loss model must not move.

    ``loss_rng="per-pair"`` is a new, opt-in mode; the default
    ``"shared"`` mode (one stream consumed in global send order) is
    pinned here so the per-pair plumbing provably left it untouched.
    """

    def test_default_mode_traffic_is_bit_identical(self):
        from repro.experiments.runner import run_scenario
        from repro.metrics.summary import standard_bundle, summarize
        from repro.workloads.scenario import ScenarioConfig

        config = ScenarioConfig(protocol="heap", n_nodes=40, duration=2.0,
                                drain=4.0, seed=3, loss_rate=0.1)
        assert config.loss_rng == "shared"
        result = run_scenario(config)
        assert result.net.stats.lost == 1333
        assert result.net.stats.sent == 13713
        blob = json.dumps(summarize(result, standard_bundle()),
                          sort_keys=True)
        assert hashlib.sha256(blob.encode()).hexdigest() == (
            "7fe2e94f860d71fa2b592d29b280af0f1b5bac140354067438aa7bc728eb1402")
