"""Unit tests for the static-tree baseline."""

import pytest

from repro.baselines.tree import StaticTreeNode, TreePush, build_kary_tree
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.streaming.packets import StreamPacket


def packet(packet_id):
    return StreamPacket(packet_id=packet_id, window_id=0, publish_time=0.0)


class TestBuildKaryTree:
    def test_binary_tree_shape(self):
        children = build_kary_tree(range(7), arity=2)
        assert children[0] == [1, 2]
        assert children[1] == [3, 4]
        assert children[2] == [5, 6]
        assert children[3] == []

    def test_unary_tree_is_a_chain(self):
        children = build_kary_tree(range(4), arity=1)
        assert children == {0: [1], 1: [2], 2: [3], 3: []}

    def test_every_non_root_has_one_parent(self):
        children = build_kary_tree(range(50), arity=7)
        seen = [c for kids in children.values() for c in kids]
        assert sorted(seen) == list(range(1, 50))

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            build_kary_tree(range(3), arity=0)


class TestStaticTreeDissemination:
    def build(self, n=15, arity=2, latency=0.01):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(latency))
        children = build_kary_tree(range(n), arity)
        nodes = [StaticTreeNode(sim, net, i, children[i], 1e9) for i in range(n)]
        for i, node in enumerate(nodes):
            net.attach(i, node, upload_capacity_bps=1e9)
        return sim, net, nodes

    def test_packet_reaches_all_descendants(self):
        sim, net, nodes = self.build()
        nodes[0].publish(packet(0))
        sim.run()
        assert all(node.log.has(0) for node in nodes)

    def test_delivery_time_grows_with_depth(self):
        sim, net, nodes = self.build(n=7, arity=2, latency=0.05)
        nodes[0].publish(packet(0))
        sim.run()
        root = nodes[0].log.delivery_time(0)
        level1 = nodes[1].log.delivery_time(0)
        level2 = nodes[3].log.delivery_time(0)
        assert root < level1 < level2

    def test_interior_crash_starves_subtree(self):
        sim, net, nodes = self.build(n=7, arity=2)
        net.crash(1)  # children 3, 4 are cut off
        nodes[0].publish(packet(0))
        sim.run()
        assert nodes[2].log.has(0)
        assert not nodes[3].log.has(0)
        assert not nodes[4].log.has(0)

    def test_duplicate_push_not_reforwarded(self):
        sim, net, nodes = self.build(n=3, arity=2)
        nodes[0].publish(packet(0))
        sim.run()
        forwarded_before = nodes[1].packets_forwarded
        # Replay the same packet at node 1: must not forward again.
        nodes[1].on_message(type("E", (), {
            "payload": TreePush([packet(0)]), "src": 0, "dst": 1})())
        assert nodes[1].packets_forwarded == forwarded_before

    def test_wire_size(self):
        push = TreePush([packet(0), packet(1)])
        assert push.wire_size() == 8 + 2 * (1316 + 12)

    def test_start_stop_are_noops(self):
        sim, net, nodes = self.build(n=3)
        nodes[0].start()
        nodes[0].stop()  # must not raise
