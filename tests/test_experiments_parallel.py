"""Determinism tests for the parallel experiment engine.

The contract under test: a (ScenarioConfig, seed) cell fully determines
its result — so the same grid run serially, run under ``jobs=N``, or run
twice must produce identical records (metric scalars, event counts,
simulated end times, in-worker summaries), and only wall times may
differ.  The checkpoint tests add the resume contract: a killed grid
restarts from its JSONL records without recomputing finished cells.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import mean
from repro.experiments import parallel
from repro.experiments.multi_seed import (
    metric_offline_delivery,
    run_seeds,
)
from repro.experiments.parallel import RunRecord, run_grid
from repro.experiments.runner import run_scenario
from repro.metrics.lag import spec_lag_delivery, spec_mean_lag_by_class
from repro.workloads.churn import CatastrophicFailure
from repro.workloads.distributions import REF_691
from repro.workloads.scenario import ScenarioConfig


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(n_nodes=10, duration=2.0, drain=4.0, distribution=REF_691)
    base.update(overrides)
    return ScenarioConfig(**base)


def metric_events(result) -> float:
    """Module-level (picklable) metric: total receiver deliveries."""
    return float(sum(len(result.log_of(node_id))
                     for node_id in result.receiver_ids()))


METRICS = {"delivery": metric_offline_delivery, "deliveries": metric_events}


class TestGridShape:
    def test_records_in_scenario_major_seed_minor_order(self):
        grid = run_grid([tiny_config(name="a"), tiny_config(name="b")],
                        seeds=[7, 8], metrics=METRICS)
        order = [(r.scenario_name, r.seed) for r in grid.records]
        assert order == [("a", 7), ("a", 8), ("b", 7), ("b", 8)]
        assert [r.seed_index for r in grid.records] == [0, 1, 0, 1]

    def test_single_config_accepted_bare(self):
        grid = run_grid(tiny_config(), seeds=[1], metrics=METRICS)
        assert len(grid.records) == 1

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_grid([], seeds=[1], metrics=METRICS)
        with pytest.raises(ValueError):
            run_grid(tiny_config(), seeds=[], metrics=METRICS)

    def test_progress_called_once_per_cell(self):
        calls = []
        run_grid(tiny_config(), seeds=[1, 2, 3], metrics=METRICS,
                 progress=lambda event: calls.append((event.done, event.total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_records_are_picklable(self):
        grid = run_grid(tiny_config(), seeds=[1], metrics=METRICS)
        clone = pickle.loads(pickle.dumps(grid.records[0]))
        assert clone == grid.records[0]


class TestDeterminism:
    def test_repeated_serial_runs_identical(self):
        grids = [run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS)
                 for _ in range(2)]
        assert grids[0].determinism_keys() == grids[1].determinism_keys()

    def test_parallel_matches_serial_bit_for_bit(self):
        configs = [tiny_config(name="heap"),
                   tiny_config(name="standard", protocol="standard")]
        serial = run_grid(configs, seeds=[1, 2, 3], metrics=METRICS, jobs=1)
        parallel = run_grid(configs, seeds=[1, 2, 3], metrics=METRICS, jobs=2)
        assert serial.determinism_keys() == parallel.determinism_keys()
        assert serial.render() == parallel.render()

    def test_spawn_start_method_matches_serial(self):
        # The portable (and strictest) pool mode: workers import the
        # package from scratch and receive everything as pickles.
        serial = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS)
        spawned = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                           jobs=2, start_method="spawn")
        assert serial.determinism_keys() == spawned.determinism_keys()

    def test_seed_changes_results(self):
        grid = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS)
        assert (grid.records[0].events_executed
                != grid.records[1].events_executed)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_same_seed_same_receiver_logs(self, seed):
        """Property: one seed fully determines the full receiver trace."""
        config = tiny_config(seed=seed)
        a = run_scenario(pickle.loads(pickle.dumps(config)))
        b = run_scenario(pickle.loads(pickle.dumps(config)))
        assert a.sim.events_executed == b.sim.events_executed
        assert a.publish_times == b.publish_times
        for node_id in a.receiver_ids():
            assert dict(a.log_of(node_id).items()) == dict(b.log_of(node_id).items())

    @settings(max_examples=3, deadline=None)
    @given(seeds=st.lists(st.integers(min_value=0, max_value=10_000),
                          min_size=1, max_size=3, unique=True))
    def test_property_serial_equals_parallel(self, seeds):
        config = tiny_config()
        serial = run_grid(config, seeds=seeds, metrics=METRICS, jobs=1)
        parallel = run_grid(config, seeds=seeds, metrics=METRICS, jobs=2)
        assert serial.determinism_keys() == parallel.determinism_keys()


class TestChurnIsolation:
    def test_churn_state_does_not_leak_between_cells(self):
        # The CatastrophicFailure object records its victims; the engine
        # must hand every cell a fresh copy so seeds can't contaminate
        # each other (the historical reason run_seeds rejected churn).
        churn = CatastrophicFailure(fraction=0.3, at_time=3.0)
        config = tiny_config(duration=4.0, drain=4.0, churn=churn)
        grid = run_grid(config, seeds=[1, 2, 3], metrics=METRICS)
        assert churn.victims == []  # the caller's object is untouched
        repeat = run_grid(config, seeds=[1, 2, 3], metrics=METRICS)
        assert grid.determinism_keys() == repeat.determinism_keys()

    def test_run_seeds_still_rejects_shared_churn(self):
        config = tiny_config(churn=CatastrophicFailure(fraction=0.3,
                                                       at_time=3.0))
        with pytest.raises(ValueError):
            run_seeds(config, METRICS, seeds=[1, 2])


class TestRunSeedsCompat:
    def test_run_seeds_jobs_equivalence(self):
        config = tiny_config()
        serial = run_seeds(config, METRICS, seeds=[1, 2, 3])
        parallel = run_seeds(config, METRICS, seeds=[1, 2, 3], jobs=2)
        for name in METRICS:
            assert serial[name].values == parallel[name].values

    def test_run_seeds_matches_direct_runs(self):
        config = tiny_config()
        aggregated = run_seeds(config, {"delivery": metric_offline_delivery},
                               seeds=[4, 5])
        direct = [metric_offline_delivery(run_scenario(config.with_(seed=s)))
                  for s in (4, 5)]
        assert aggregated["delivery"].values == direct
        assert aggregated["delivery"].mean == mean(direct)

    def test_lambda_metrics_still_work_serially(self):
        # Serial execution must not require picklable metrics (the
        # pre-parallel API allowed closures).
        config = tiny_config()
        aggregated = run_seeds(
            config, {"half": lambda result: 0.5}, seeds=[1, 2])
        assert aggregated["half"].values == [0.5, 0.5]


SPECS = (spec_lag_delivery(0.99), spec_mean_lag_by_class())


class TestSummaries:
    def test_serial_records_carry_requested_summaries(self):
        grid = run_grid(tiny_config(), seeds=[1], metrics=METRICS,
                        summaries=SPECS)
        record = grid.records[0]
        assert set(record.summaries) == {spec.name for spec in SPECS}
        direct = run_scenario(tiny_config(seed=1))
        for spec in SPECS:
            assert record.summaries[spec.name] == spec.fn(direct)

    def test_pool_summaries_match_serial(self):
        serial = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                          summaries=SPECS)
        pooled = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                          summaries=SPECS, jobs=2, start_method="fork")
        assert serial.summary_keys() == pooled.summary_keys()
        assert serial.determinism_keys() == pooled.determinism_keys()

    def test_spawn_summaries_match_serial(self):
        # Spawn workers re-import the package with a fresh hash seed and
        # rebuild every RNG from the pickled config: the summaries must
        # still be bit-identical (the RNG registry derives streams from
        # SHA-256, never from process state).
        serial = run_grid(tiny_config(), seeds=[1], metrics=METRICS,
                          summaries=SPECS)
        spawned = run_grid(tiny_config(), seeds=[1, 1], metrics={},
                           summaries=SPECS, jobs=2, start_method="spawn")
        assert (serial.records[0].summary_key()
                == spawned.records[0].summary_key()
                == spawned.records[1].summary_key())

    def test_per_scenario_spec_lists(self):
        configs = [tiny_config(name="a"), tiny_config(name="b")]
        grid = run_grid(configs, seeds=[1], metrics=METRICS,
                        summaries=[(SPECS[0],), (SPECS[1],)])
        assert set(grid.records[0].summaries) == {SPECS[0].name}
        assert set(grid.records[1].summaries) == {SPECS[1].name}

    def test_spawn_rejects_main_module_functions(self):
        # A __main__-defined metric unpickles nowhere in a spawn worker;
        # historically that killed the worker and deadlocked the pool.
        def local_metric(result):  # pragma: no cover - never runs
            return 1.0

        local_metric.__module__ = "__main__"
        with pytest.raises(ValueError, match="__main__"):
            run_grid(tiny_config(), seeds=[1, 2],
                     metrics={"m": local_metric}, jobs=2,
                     start_method="spawn")


class TestOwnSeedGrids:
    def test_seeds_none_runs_each_config_under_its_own_seed(self):
        configs = [tiny_config(name="a", seed=7), tiny_config(name="b", seed=9)]
        grid = run_grid(configs, seeds=None, metrics=METRICS)
        assert [r.seed for r in grid.records] == [7, 9]
        assert grid.seeds == [None]
        direct = run_grid(tiny_config(name="a"), seeds=[7], metrics=METRICS)
        assert (grid.records[0].determinism_key()[3:]
                == direct.records[0].determinism_key()[3:])

    def test_records_for_one_per_scenario(self):
        configs = [tiny_config(name="a", seed=1), tiny_config(name="b", seed=2)]
        grid = run_grid(configs, seeds=None, metrics=METRICS)
        assert [r.scenario_name for r in grid.records_for(1)] == ["b"]

    def test_render_reports_each_scenarios_own_seed(self):
        configs = [tiny_config(name="a", seed=7), tiny_config(name="b", seed=9)]
        text = run_grid(configs, seeds=None, metrics=METRICS).render()
        assert "[0] a: " in text and "seeds=[7]" in text
        assert "[1] b: " in text and "seeds=[9]" in text
        assert "seeds=[7, 9]" not in text


class TestSingleCpuBypass:
    def test_one_cpu_host_skips_the_pool(self, monkeypatch):
        # On a 1-CPU host a pool is pure overhead (~9% measured): jobs>1
        # must run in-process.  Creating any pool context here fails the
        # test.
        import multiprocessing

        monkeypatch.setattr(parallel, "_available_cpus", lambda: 1)

        def forbidden(*args, **kwargs):
            raise AssertionError("pool must be bypassed on a 1-CPU host")

        monkeypatch.setattr(multiprocessing, "get_context", forbidden)
        grid = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS, jobs=4)
        assert len(grid.records) == 2

    def test_explicit_start_method_still_forces_the_pool(self, monkeypatch):
        monkeypatch.setattr(parallel, "_available_cpus", lambda: 1)
        grid = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                        jobs=2, start_method="fork")
        serial = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS)
        assert grid.determinism_keys() == serial.determinism_keys()


def _counting_run_scenario(monkeypatch):
    calls = []
    real = parallel.run_scenario

    def wrapper(config):
        calls.append(config.seed)
        return real(config)

    monkeypatch.setattr(parallel, "run_scenario", wrapper)
    return calls


class TestCheckpoint:
    def test_checkpoint_file_has_header_and_records(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                 summaries=SPECS, checkpoint=path)
        from repro.metrics.export import read_jsonl

        objects = read_jsonl(path)
        assert objects[0]["format"] == parallel.CHECKPOINT_FORMAT
        assert objects[0]["total"] == 2
        assert sorted(obj["index"] for obj in objects[1:]) == [0, 1]

    def test_resume_restores_without_recomputing(self, tmp_path, monkeypatch):
        path = str(tmp_path / "grid.jsonl")
        full = run_grid(tiny_config(), seeds=[1, 2, 3], metrics=METRICS,
                        summaries=SPECS, checkpoint=path)
        # Simulate a kill after the first record landed.
        lines = (tmp_path / "grid.jsonl").read_text().splitlines()
        (tmp_path / "grid.jsonl").write_text("\n".join(lines[:2]) + "\n")
        calls = _counting_run_scenario(monkeypatch)
        resumed = run_grid(tiny_config(), seeds=[1, 2, 3], metrics=METRICS,
                           summaries=SPECS, checkpoint=path, resume=True)
        assert calls == [2, 3]  # seed 1 restored from the checkpoint
        assert resumed.determinism_keys() == full.determinism_keys()
        assert resumed.summary_keys() == full.summary_keys()

    def test_resume_tolerates_a_truncated_last_line(self, tmp_path,
                                                    monkeypatch):
        path = str(tmp_path / "grid.jsonl")
        run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                 checkpoint=path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"index": 5, "rec')  # the kill landed mid-write
        calls = _counting_run_scenario(monkeypatch)
        resumed = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                           checkpoint=path, resume=True)
        assert calls == []
        assert len(resumed.records) == 2

    def test_resume_rejects_a_different_grid(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                 checkpoint=path)
        with pytest.raises(ValueError, match="different grid"):
            run_grid(tiny_config(), seeds=[1, 2, 3], metrics=METRICS,
                     checkpoint=path, resume=True)

    def test_checkpoint_without_resume_starts_fresh(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        run_grid(tiny_config(), seeds=[1], metrics=METRICS, checkpoint=path)
        run_grid(tiny_config(name="other"), seeds=[1], metrics=METRICS,
                 checkpoint=path)  # no resume: overwrite, no fingerprint clash
        from repro.metrics.export import read_jsonl

        objects = read_jsonl(path)
        assert objects[0]["total"] == 1

    def test_progress_fires_for_restored_and_fresh_cells(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                 checkpoint=path)
        lines = (tmp_path / "grid.jsonl").read_text().splitlines()
        (tmp_path / "grid.jsonl").write_text("\n".join(lines[:2]) + "\n")
        seen = []
        run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                 checkpoint=path, resume=True,
                 progress=lambda event: seen.append((event.done, event.total,
                                                     event.restored)))
        assert seen == [(1, 2, True), (2, 2, False)]

    def test_resume_after_torn_tail_repairs_checkpoint_file(self, tmp_path):
        """The glue regression: resuming appends to the checkpoint, so a
        torn tail must be truncated *on disk* first — otherwise the first
        fresh record lands glued onto the partial line, manufacturing a
        corrupt line in the middle of the file that poisons every later
        resume."""
        path = str(tmp_path / "grid.jsonl")
        full = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                        checkpoint=path)
        text = (tmp_path / "grid.jsonl").read_text()
        lines = text.splitlines(keepends=True)
        # Keep the header + record 0, then half of record 1 (killed
        # mid-write).
        (tmp_path / "grid.jsonl").write_text("".join(lines[:2])
                                             + lines[2][:20])
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            resumed = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                               checkpoint=path, resume=True)
        assert resumed.determinism_keys() == full.determinism_keys()
        # The file now parses cleanly end to end: header + both records,
        # no corrupt middle line — so it resumes again, warning-free.
        from repro.metrics.export import read_jsonl

        objects = read_jsonl(path)
        assert sorted(obj["index"] for obj in objects[1:]) == [0, 1]
        again = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                         checkpoint=path, resume=True)
        assert again.determinism_keys() == full.determinism_keys()


class TestProgressEvent:
    """Satellite: the structured progress-event API every consumer
    (CLI line, service SSE stream, tests) shares."""

    def test_event_carries_cell_identity_and_counters(self):
        from repro.workloads.scenario import scenario_key

        config = tiny_config()
        events = []
        run_grid(config, seeds=[5], metrics=METRICS, progress=events.append)
        (event,) = events
        assert (event.done, event.total) == (1, 1)
        assert event.restored is False
        # The key names the *cell* — the config with the cell's seed.
        assert event.cell_key == scenario_key(config.with_(seed=5))
        assert event.record.seed == 5
        assert event.record.metrics["delivery"] > 0
        assert event.events_per_sec >= 0.0

    def test_events_per_sec_guards_zero_wall_time(self):
        record = RunRecord(scenario_index=0, scenario_name="x", seed_index=0,
                           seed=1, metrics={}, events_executed=100,
                           sim_end_time=1.0, wall_time=0.0)
        event = parallel.ProgressEvent(done=1, total=1, record=record,
                                       cell_key="k")
        assert event.events_per_sec == 0.0

    def test_to_jsonable_is_flat_and_serializable(self):
        import json

        events = []
        run_grid(tiny_config(), seeds=[1], metrics=METRICS,
                 progress=events.append)
        payload = events[0].to_jsonable()
        assert json.loads(json.dumps(payload)) == payload
        for key in ("done", "total", "restored", "cell_key",
                    "scenario_name", "seed", "events_executed",
                    "events_per_sec", "metrics", "wire"):
            assert key in payload


class TestJsonlRepair:
    """Satellite: crash-safe checkpoint appends — torn tails are
    tolerated on read and (with ``repair=True``) truncated in place."""

    def test_torn_tail_truncated_in_place(self, tmp_path):
        from repro.metrics.export import read_jsonl

        path = tmp_path / "x.jsonl"
        path.write_text('{"a":1}\n{"a":2}\n{"a":3,"b"')
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            objects = read_jsonl(str(path), repair=True)
        assert objects == [{"a": 1}, {"a": 2}]
        assert path.read_text() == '{"a":1}\n{"a":2}\n'

    def test_unterminated_valid_tail_gets_its_newline(self, tmp_path):
        from repro.metrics.export import read_jsonl

        path = tmp_path / "x.jsonl"
        path.write_text('{"a":1}\n{"a":2}')  # record landed, "\n" did not
        with pytest.warns(RuntimeWarning, match="missing its newline"):
            objects = read_jsonl(str(path), repair=True)
        assert objects == [{"a": 1}, {"a": 2}]  # the record is kept
        assert path.read_text() == '{"a":1}\n{"a":2}\n'

    def test_without_repair_file_is_left_untouched(self, tmp_path):
        from repro.metrics.export import read_jsonl

        path = tmp_path / "x.jsonl"
        torn = '{"a":1}\n{"a":3,"b"'
        path.write_text(torn)
        assert read_jsonl(str(path)) == [{"a": 1}]
        assert path.read_text() == torn

    def test_corrupt_middle_line_still_raises(self, tmp_path):
        import json as json_module

        from repro.metrics.export import read_jsonl

        path = tmp_path / "x.jsonl"
        path.write_text('{"a":1}\nGARBAGE\n{"a":2}\n')
        with pytest.raises(json_module.JSONDecodeError):
            read_jsonl(str(path), repair=True)

    def test_append_after_repair_keeps_every_line_parseable(self, tmp_path):
        from repro.metrics.export import append_jsonl, read_jsonl

        path = tmp_path / "x.jsonl"
        path.write_text('{"a":1}\n{"a":2,"b"')
        with pytest.warns(RuntimeWarning):
            read_jsonl(str(path), repair=True)
        with open(path, "a", encoding="utf-8") as fh:
            append_jsonl(fh, {"a": 2})
        assert read_jsonl(str(path)) == [{"a": 1}, {"a": 2}]

    def test_append_jsonl_fsyncs_real_files_and_accepts_stringio(self,
                                                                 tmp_path):
        import io

        from repro.metrics.export import append_jsonl, read_jsonl

        path = tmp_path / "x.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            append_jsonl(fh, {"a": 1})  # fsync path: a real descriptor
        assert read_jsonl(str(path)) == [{"a": 1}]
        sink = io.StringIO()
        append_jsonl(sink, {"a": 2})  # no fileno -> flush-only, no raise
        assert sink.getvalue() == '{"a":2}\n'
