"""Determinism tests for the parallel experiment engine.

The contract under test: a (ScenarioConfig, seed) cell fully determines
its result — so the same grid run serially, run under ``jobs=N``, or run
twice must produce identical records (metric scalars, event counts,
simulated end times), and only wall times may differ.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import mean
from repro.experiments.multi_seed import (
    metric_offline_delivery,
    run_seeds,
)
from repro.experiments.parallel import RunRecord, run_grid
from repro.experiments.runner import run_scenario
from repro.workloads.churn import CatastrophicFailure
from repro.workloads.distributions import REF_691
from repro.workloads.scenario import ScenarioConfig


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(n_nodes=10, duration=2.0, drain=4.0, distribution=REF_691)
    base.update(overrides)
    return ScenarioConfig(**base)


def metric_events(result) -> float:
    """Module-level (picklable) metric: total receiver deliveries."""
    return float(sum(len(result.log_of(node_id))
                     for node_id in result.receiver_ids()))


METRICS = {"delivery": metric_offline_delivery, "deliveries": metric_events}


class TestGridShape:
    def test_records_in_scenario_major_seed_minor_order(self):
        grid = run_grid([tiny_config(name="a"), tiny_config(name="b")],
                        seeds=[7, 8], metrics=METRICS)
        order = [(r.scenario_name, r.seed) for r in grid.records]
        assert order == [("a", 7), ("a", 8), ("b", 7), ("b", 8)]
        assert [r.seed_index for r in grid.records] == [0, 1, 0, 1]

    def test_single_config_accepted_bare(self):
        grid = run_grid(tiny_config(), seeds=[1], metrics=METRICS)
        assert len(grid.records) == 1

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_grid([], seeds=[1], metrics=METRICS)
        with pytest.raises(ValueError):
            run_grid(tiny_config(), seeds=[], metrics=METRICS)

    def test_progress_called_once_per_cell(self):
        calls = []
        run_grid(tiny_config(), seeds=[1, 2, 3], metrics=METRICS,
                 progress=lambda done, total, rec: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_records_are_picklable(self):
        grid = run_grid(tiny_config(), seeds=[1], metrics=METRICS)
        clone = pickle.loads(pickle.dumps(grid.records[0]))
        assert clone == grid.records[0]


class TestDeterminism:
    def test_repeated_serial_runs_identical(self):
        grids = [run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS)
                 for _ in range(2)]
        assert grids[0].determinism_keys() == grids[1].determinism_keys()

    def test_parallel_matches_serial_bit_for_bit(self):
        configs = [tiny_config(name="heap"),
                   tiny_config(name="standard", protocol="standard")]
        serial = run_grid(configs, seeds=[1, 2, 3], metrics=METRICS, jobs=1)
        parallel = run_grid(configs, seeds=[1, 2, 3], metrics=METRICS, jobs=2)
        assert serial.determinism_keys() == parallel.determinism_keys()
        assert serial.render() == parallel.render()

    def test_spawn_start_method_matches_serial(self):
        # The portable (and strictest) pool mode: workers import the
        # package from scratch and receive everything as pickles.
        serial = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS)
        spawned = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS,
                           jobs=2, start_method="spawn")
        assert serial.determinism_keys() == spawned.determinism_keys()

    def test_seed_changes_results(self):
        grid = run_grid(tiny_config(), seeds=[1, 2], metrics=METRICS)
        assert (grid.records[0].events_executed
                != grid.records[1].events_executed)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_same_seed_same_receiver_logs(self, seed):
        """Property: one seed fully determines the full receiver trace."""
        config = tiny_config(seed=seed)
        a = run_scenario(pickle.loads(pickle.dumps(config)))
        b = run_scenario(pickle.loads(pickle.dumps(config)))
        assert a.sim.events_executed == b.sim.events_executed
        assert a.publish_times == b.publish_times
        for node_id in a.receiver_ids():
            assert dict(a.log_of(node_id).items()) == dict(b.log_of(node_id).items())

    @settings(max_examples=3, deadline=None)
    @given(seeds=st.lists(st.integers(min_value=0, max_value=10_000),
                          min_size=1, max_size=3, unique=True))
    def test_property_serial_equals_parallel(self, seeds):
        config = tiny_config()
        serial = run_grid(config, seeds=seeds, metrics=METRICS, jobs=1)
        parallel = run_grid(config, seeds=seeds, metrics=METRICS, jobs=2)
        assert serial.determinism_keys() == parallel.determinism_keys()


class TestChurnIsolation:
    def test_churn_state_does_not_leak_between_cells(self):
        # The CatastrophicFailure object records its victims; the engine
        # must hand every cell a fresh copy so seeds can't contaminate
        # each other (the historical reason run_seeds rejected churn).
        churn = CatastrophicFailure(fraction=0.3, at_time=3.0)
        config = tiny_config(duration=4.0, drain=4.0, churn=churn)
        grid = run_grid(config, seeds=[1, 2, 3], metrics=METRICS)
        assert churn.victims == []  # the caller's object is untouched
        repeat = run_grid(config, seeds=[1, 2, 3], metrics=METRICS)
        assert grid.determinism_keys() == repeat.determinism_keys()

    def test_run_seeds_still_rejects_shared_churn(self):
        config = tiny_config(churn=CatastrophicFailure(fraction=0.3,
                                                       at_time=3.0))
        with pytest.raises(ValueError):
            run_seeds(config, METRICS, seeds=[1, 2])


class TestRunSeedsCompat:
    def test_run_seeds_jobs_equivalence(self):
        config = tiny_config()
        serial = run_seeds(config, METRICS, seeds=[1, 2, 3])
        parallel = run_seeds(config, METRICS, seeds=[1, 2, 3], jobs=2)
        for name in METRICS:
            assert serial[name].values == parallel[name].values

    def test_run_seeds_matches_direct_runs(self):
        config = tiny_config()
        aggregated = run_seeds(config, {"delivery": metric_offline_delivery},
                               seeds=[4, 5])
        direct = [metric_offline_delivery(run_scenario(config.with_(seed=s)))
                  for s in (4, 5)]
        assert aggregated["delivery"].values == direct
        assert aggregated["delivery"].mean == mean(direct)

    def test_lambda_metrics_still_work_serially(self):
        # Serial execution must not require picklable metrics (the
        # pre-parallel API allowed closures).
        config = tiny_config()
        aggregated = run_seeds(
            config, {"half": lambda result: 0.5}, seeds=[1, 2])
        assert aggregated["half"].values == [0.5, 0.5]
