"""The per-file visitor driver: walk paths, parse, run rules, suppress.

Every rule receives a shared :class:`FileContext` (parsed tree, import
aliases, config, module identity) and yields findings; the driver
applies ``# repro-lint: disable=...`` suppressions and collects the
survivors.  Files that fail to parse produce a single ``E999`` finding
instead of crashing the run — a syntax error in the checked tree is a
finding, not an analyzer bug.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import import_aliases
from repro.lint.config import LintConfig, module_name_for
from repro.lint.findings import Finding
from repro.lint.registry import rules_matching
from repro.lint.suppress import is_suppressed, suppressions_for

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".repro-checkpoints",
              ".hypothesis", ".pytest_cache"}


class FileContext:
    """Everything a rule needs about the file under analysis."""

    __slots__ = ("path", "module", "source", "lines", "tree", "aliases",
                 "config")

    def __init__(self, path: str, module: str, source: str,
                 tree: ast.AST, config: LintConfig):
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.aliases = import_aliases(tree)
        self.config = config

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(rule=rule_id, path=self.path, line=line, col=col,
                       message=message, text=self.line_text(line))


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic .py file sequence."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in _SKIP_DIRS)
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(root, filename)
        elif path.endswith(".py") or os.path.isfile(path):
            yield path
        else:
            raise FileNotFoundError(path)


def _display_path(path: str) -> str:
    """Paths under the working directory render relative (stable in CI
    logs and baselines); anything else stays as given."""
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive on Windows
        return path
    return path if rel.startswith("..") else rel


def lint_file(path: str, config: Optional[LintConfig] = None,
              rules: Optional[List[object]] = None) -> List[Finding]:
    """Run the (selected) rule catalog over one file."""
    config = config if config is not None else LintConfig()
    if rules is None:
        rules = rules_matching(config.select)
    display = _display_path(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        raise FileNotFoundError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="E999", path=display,
                        line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                        message=f"syntax error: {exc.msg}",
                        text=(exc.text or "").strip())]
    ctx = FileContext(display, module_name_for(path), source, tree, config)
    suppressed: Dict[int, Set[str]] = suppressions_for(source)
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not is_suppressed(suppressed, finding.line, finding.rule):
                findings.append(finding)
    return findings


def lint_paths(paths: Iterable[str],
               config: Optional[LintConfig] = None
               ) -> Tuple[List[Finding], int]:
    """Lint every .py file under ``paths``.

    Returns ``(findings, files_checked)``; findings come back in
    (path, line, col, rule) order.
    """
    config = config if config is not None else LintConfig()
    rules = rules_matching(config.select)
    findings: List[Finding] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        findings.extend(lint_file(path, config, rules))
    findings.sort(key=lambda f: f.sort_key)
    return findings, files_checked
