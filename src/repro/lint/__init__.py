"""``repro lint`` — a determinism & shard-safety static analyzer.

The parity suites *sample* this repo's invariants: golden traces pin
determinism at a handful of seeds, shard parity is checked at one
population size and two shard counts, and payload immutability-once-sent
is a docstring promise.  This package checks the same contracts
*statically*, over every configuration at once:

* **D-rules** — determinism: no wall-clock reads or unseeded randomness
  inside the simulation-facing packages, no ordering-sensitive iteration
  over ``set``/``frozenset``, no ``id()``-based ordering.
* **S-rules** — shard/pickle safety: no lambdas or closure-local
  callables handed to worker pools or ``run_grid``; classes that cross
  the wire are module-level; no payload mutation after a
  ``send``/``send_many`` call (immutability-once-sent).
* **K-rules** — kind registry: every ``register_kind`` call runs at
  import time with a string-literal name, so kind-id tables are
  import-order-identical across fork/spawn workers.
* **P-rules** — hot-path hygiene: ``__slots__`` on classes in the
  configured hot-module list (the PR 1-5 perf work's standing rule).

Run it as ``python -m repro lint [paths]``; suppress a finding with a
``# repro-lint: disable=<RULE>`` comment on (or directly above) the
flagged line; grandfather existing findings with ``--baseline FILE``.
"""

from repro.lint.config import LintConfig
from repro.lint.driver import lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import all_rules, rules_matching

__all__ = ["Finding", "LintConfig", "all_rules", "lint_paths",
           "rules_matching"]
