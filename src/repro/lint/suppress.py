"""``# repro-lint: disable=<RULE>`` suppression comments.

A suppression comment on a flagged line silences the named rules (or
``all``) for that line.  A comment that stands alone on its own line
also applies to the next line, so long statements can carry their
justification above them::

    # Wall time here is reporting-only, never enters a summary.
    # repro-lint: disable=D101
    started = time.perf_counter()

Comma-separate multiple rule ids: ``# repro-lint: disable=D101,S201``.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Set

_PATTERN = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*,\s]+)")


def suppressions_for(source: str) -> Dict[int, Set[str]]:
    """Line number -> set of suppressed rule ids (``"all"`` wildcard)."""
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens: List[tokenize.TokenInfo] = list(
            tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        return suppressed
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        if not rules:
            continue
        line = token.start[0]
        suppressed.setdefault(line, set()).update(rules)
        # Own-line comment: nothing but whitespace before it -> the
        # suppression also covers the line below.
        text = lines[line - 1] if line - 1 < len(lines) else ""
        if text[:token.start[1]].strip() == "":
            suppressed.setdefault(line + 1, set()).update(rules)
    return suppressed


def is_suppressed(suppressed: Dict[int, Set[str]], line: int,
                  rule_id: str) -> bool:
    rules = suppressed.get(line)
    if not rules:
        return False
    return rule_id in rules or "all" in rules
