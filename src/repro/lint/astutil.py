"""Shared AST helpers: dotted-name resolution and scope tracking."""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map each locally bound import name to its canonical dotted path.

    ``import time`` binds ``time -> time``; ``from time import
    perf_counter as pc`` binds ``pc -> time.perf_counter``; relative
    imports keep their trailing module path so suffix matching works.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname:
                    aliases[a.asname] = a.name
                else:
                    root = a.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for a in node.names:
                if a.name == "*":
                    continue
                canonical = f"{base}.{a.name}" if base else a.name
                aliases[a.asname or a.name] = canonical
    return aliases


def canonical_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The canonical dotted name of a call target, or None.

    The root name is rewritten through the module's import aliases, so
    ``pc()`` after ``from time import perf_counter as pc`` resolves to
    ``time.perf_counter``.  Non-name call targets (calls on calls,
    subscripts) return None.
    """
    parts = dotted_parts(node.func)
    if parts is None:
        return None
    mapped = aliases.get(parts[0])
    if mapped is not None:
        parts = mapped.split(".") + parts[1:]
    return ".".join(parts)


def base_name(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a class base expression."""
    if isinstance(node, ast.Subscript):  # Protocol[...] / Generic[T]
        node = node.value
    parts = dotted_parts(node)
    return parts[-1] if parts else None


class ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor tracking the enclosing function-nesting depth.

    ``self.function_stack`` holds the chain of enclosing function nodes;
    ``self.class_stack`` the enclosing classes.  Subclasses override the
    ``visit_*`` hooks they need and must call ``self.generic_visit`` to
    descend (the scope bookkeeping wraps the function/class visits).
    """

    def __init__(self) -> None:
        self.function_stack: List[ast.AST] = []
        self.class_stack: List[ast.ClassDef] = []

    def _visit_function(self, node: ast.AST) -> None:
        self.function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.class_stack.pop()

    @property
    def in_function(self) -> bool:
        return bool(self.function_stack)
