"""S-rules: what may cross a process boundary, and what may not change.

Sharded and pooled execution pickle work across fork/spawn workers.
Lambdas and closure-local callables don't pickle (or worse, deadlock a
pool under spawn); classes reconstructed on the far side must be
importable at module scope; and a payload handed to ``send``/
``send_many`` may be retained by the fabric until the next window
barrier, so mutating it afterwards corrupts datagrams in flight.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.astutil import ScopedVisitor, dotted_parts
from repro.lint.findings import Finding
from repro.lint.registry import rule

#: Call targets that ship callables to worker processes.
_SINK_FUNCTIONS = {"run_grid"}
#: Method names that ship callables to worker processes.
_SINK_METHODS = {"submit", "apply_async", "map", "map_async", "imap",
                 "imap_unordered", "starmap", "starmap_async"}
#: Constructors whose keyword arguments cross the process boundary.
_SINK_CONSTRUCTOR_KEYWORDS = {
    "Process": ("target",),
    "Pool": ("initializer",),
    "ProcessPoolExecutor": ("initializer",),
}
#: Sink keywords that, by the sink's documented contract, never leave
#: the coordinator process: run_grid invokes ``progress`` after each
#: finished cell and uses ``run_fn`` on the serial path only.
_SINK_KEYWORD_LOCAL = {
    "run_grid": {"progress", "run_fn"},
}


def _lambda_in(node: ast.AST) -> ast.Lambda:
    for child in ast.walk(node):
        if isinstance(child, ast.Lambda):
            return child
    return None


class _PoolSinkVisitor(ScopedVisitor):
    def __init__(self, ctx, rule_id: str):
        super().__init__()
        self.ctx = ctx
        self.rule_id = rule_id
        self.findings: List[Finding] = []
        #: Names bound by a def nested inside an enclosing function.
        self.local_defs: List[Set[str]] = []

    def _visit_function(self, node):
        if self.function_stack and hasattr(node, "name"):
            self.local_defs[-1].add(node.name)
        self.local_defs.append(set())
        self.function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()
            self.local_defs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def _is_closure_local(self, name: str) -> bool:
        return any(name in frame for frame in self.local_defs)

    def _flag_arg(self, call: ast.Call, arg: ast.AST, sink: str) -> None:
        offender = _lambda_in(arg)
        if offender is not None:
            self.findings.append(self.ctx.finding(
                self.rule_id, offender,
                f"lambda passed into {sink} cannot be pickled to a "
                f"worker process; use a module-level function"))
            return
        if isinstance(arg, ast.Name) and self._is_closure_local(arg.id):
            self.findings.append(self.ctx.finding(
                self.rule_id, arg,
                f"{arg.id!r} is defined inside an enclosing function; "
                f"callables shipped through {sink} must be module-level "
                f"(closures don't survive pickling to fork/spawn "
                f"workers)"))

    def visit_Call(self, node: ast.Call) -> None:
        parts = dotted_parts(node.func)
        if parts is not None:
            name = parts[-1]
            is_sink = ((len(parts) == 1 and name in _SINK_FUNCTIONS)
                       or (len(parts) > 1 and (name in _SINK_METHODS
                                               or name in _SINK_FUNCTIONS)))
            if is_sink:
                sink = ".".join(parts)
                local_keywords = _SINK_KEYWORD_LOCAL.get(name, ())
                for arg in node.args:
                    self._flag_arg(node, arg, sink)
                for keyword in node.keywords:
                    if keyword.arg in local_keywords:
                        continue
                    self._flag_arg(node, keyword.value, sink)
            elif name in _SINK_CONSTRUCTOR_KEYWORDS:
                wanted = _SINK_CONSTRUCTOR_KEYWORDS[name]
                for keyword in node.keywords:
                    if keyword.arg in wanted:
                        self._flag_arg(node, keyword.value,
                                       f"{name}({keyword.arg}=...)")
        self.generic_visit(node)


@rule
class PoolCallableRule:
    id = "S201"
    name = "picklable-pool-callables"
    rationale = ("lambdas/closure-local callables handed to pools or "
                 "run_grid fail to pickle under spawn (or deadlock the "
                 "pool); grid work must be module-level functions")

    def check(self, ctx) -> Iterator[Finding]:
        visitor = _PoolSinkVisitor(ctx, self.id)
        visitor.visit(ctx.tree)
        yield from visitor.findings


class _WireClassVisitor(ScopedVisitor):
    def __init__(self, ctx, rule_id: str):
        super().__init__()
        self.ctx = ctx
        self.rule_id = rule_id
        self.findings: List[Finding] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.function_stack and self._is_wire_class(node):
            self.findings.append(self.ctx.finding(
                self.rule_id, node,
                f"payload class {node.name!r} is defined inside a "
                f"function; classes crossing the shard wire must be "
                f"module-level so pickle can re-import them in workers"))
        self.class_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.class_stack.pop()

    @staticmethod
    def _is_wire_class(node: ast.ClassDef) -> bool:
        assigned: Set[str] = set()
        registers = False
        for stmt in node.body:
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
            if isinstance(value, ast.Call):
                parts = dotted_parts(value.func)
                if parts is not None and parts[-1] in (
                        "register_kind", "intern_kind"):
                    registers = True
        return registers or {"kind", "kind_id"} <= assigned


@rule
class WireClassModuleLevelRule:
    id = "S202"
    name = "wire-classes-module-level"
    rationale = ("a payload class defined inside a function cannot be "
                 "re-imported by pickle in shard workers, and its "
                 "register_kind call would run per-invocation, skewing "
                 "kind-id tables")

    def check(self, ctx) -> Iterator[Finding]:
        visitor = _WireClassVisitor(ctx, self.id)
        visitor.visit(ctx.tree)
        yield from visitor.findings


class _SendMutationVisitor(ScopedVisitor):
    """Per function body: names sent as payloads, then mutated later.

    Statement order is approximated by line numbers, which is exact for
    straight-line code and conservative-enough for loops (a mutation
    textually after a send in the same loop body is still a hazard: the
    next iteration's send may overlap the previous payload's window).
    """

    def __init__(self, ctx, rule_id: str):
        super().__init__()
        self.ctx = ctx
        self.rule_id = rule_id
        self.findings: List[Finding] = []
        #: Per enclosing function: payload name -> first send line.
        self.sent: List[Dict[str, int]] = []

    def _visit_function(self, node):
        self.sent.append({})
        self.function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()
            self.sent.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if self.sent and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("send", "send_many"):
            payload = None
            if len(node.args) >= 3:
                payload = node.args[2]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "payload":
                        payload = keyword.value
            if isinstance(payload, ast.Name):
                self.sent[-1].setdefault(payload.id, node.lineno)
        self.generic_visit(node)

    def _check_target(self, node: ast.AST, target: ast.AST) -> None:
        if not self.sent:
            return
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name):
            name = target.value.id
            sent_line = self.sent[-1].get(name)
            if sent_line is not None and node.lineno > sent_line:
                self.findings.append(self.ctx.finding(
                    self.rule_id, node,
                    f"attribute write on {name!r} after it was handed "
                    f"to send/send_many at line {sent_line}; payloads "
                    f"are immutable once sent (the fabric may hold them "
                    f"until the next window barrier)"))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node, node.target)
        self.generic_visit(node)


@rule
class PayloadMutationRule:
    id = "S203"
    name = "no-mutation-after-send"
    rationale = ("the fabric retains sent payloads (multicast shares one "
                 "object; the wire batcher interns it until the window "
                 "barrier) — mutating after send corrupts datagrams "
                 "still in flight")

    def check(self, ctx) -> Iterator[Finding]:
        visitor = _SendMutationVisitor(ctx, self.id)
        visitor.visit(ctx.tree)
        yield from visitor.findings
