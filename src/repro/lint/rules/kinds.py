"""K-rules: the kind-id registry must be import-order identical.

Kind ids are dense integers handed out in registration order
(:func:`repro.net.message.register_kind`).  Fork/spawn shard workers
rebuild the table by importing the same modules — which only yields the
same ids if every registration happens at import time, unconditionally,
with a literal name.  A registration reached at *run time* on one side
of the boundary skews every id after it, and the wire decodes garbage.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.astutil import ScopedVisitor, dotted_parts
from repro.lint.findings import Finding
from repro.lint.registry import rule


def _module_level_defs(tree: ast.AST) -> Set[str]:
    """Function names defined at the top level of this module (the
    registry implementation itself defines register_kind/intern_kind and
    must be allowed to call its own internals)."""
    return {node.name for node in getattr(tree, "body", [])
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


class _RegisterKindVisitor(ScopedVisitor):
    def __init__(self, ctx, rule_id: str):
        super().__init__()
        self.ctx = ctx
        self.rule_id = rule_id
        self.findings: List[Finding] = []
        self.own_defs = _module_level_defs(ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        parts = dotted_parts(node.func)
        if parts is not None and parts[-1] == "register_kind" \
                and "register_kind" not in self.own_defs:
            if self.in_function:
                self.findings.append(self.ctx.finding(
                    self.rule_id, node,
                    "register_kind called inside a function runs at an "
                    "unpredictable time; kind registration must happen "
                    "at module import (module top level or a top-level "
                    "class body) so fork/spawn workers build identical "
                    "kind-id tables"))
            elif not node.args or not (
                    isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                self.findings.append(self.ctx.finding(
                    self.rule_id, node,
                    "register_kind needs a string-literal name; a "
                    "computed name makes the registration order (and "
                    "thus every kind id) data-dependent"))
        self.generic_visit(node)


@rule
class RegisterKindImportTimeRule:
    id = "K301"
    name = "register-kind-at-import"
    rationale = ("kind ids are dense and registration-ordered; a "
                 "register_kind call outside module top level (or with "
                 "a computed name) skews id tables between fork/spawn "
                 "workers and corrupts cross-shard wire decoding")

    def check(self, ctx) -> Iterator[Finding]:
        visitor = _RegisterKindVisitor(ctx, self.id)
        visitor.visit(ctx.tree)
        yield from visitor.findings


class _InternKindVisitor(ScopedVisitor):
    def __init__(self, ctx, rule_id: str):
        super().__init__()
        self.ctx = ctx
        self.rule_id = rule_id
        self.findings: List[Finding] = []
        self.own_defs = _module_level_defs(ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_function and "intern_kind" not in self.own_defs:
            parts = dotted_parts(node.func)
            if parts is not None and parts[-1] == "intern_kind":
                for keyword in node.keywords:
                    if keyword.arg == "register" and not (
                            isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is False):
                        self.findings.append(self.ctx.finding(
                            self.rule_id, node,
                            "intern_kind(register=True) inside a "
                            "function registers kinds at run time — "
                            "reached on one side of a fork/spawn "
                            "boundary, it skews kind-id tables between "
                            "workers; register at import time or look "
                            "up with intern_kind(name)"))
        self.generic_visit(node)


@rule
class DynamicInternRule:
    id = "K302"
    name = "no-runtime-kind-interning"
    rationale = ("intern_kind(register=True) reached at run time is a "
                 "hidden registration — exactly the lookup-miss footgun "
                 "that skews kind-id tables across workers (lookups "
                 "without register= stay safe: they raise on unknown "
                 "names instead of mutating the table)")

    def check(self, ctx) -> Iterator[Finding]:
        visitor = _InternKindVisitor(ctx, self.id)
        visitor.visit(ctx.tree)
        yield from visitor.findings
