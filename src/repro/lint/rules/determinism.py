"""D-rules: the simulation must be a pure function of (config, seed).

Golden traces and shard parity both rest on runs being bit-for-bit
reproducible.  These rules catch the classic ways that breaks: reading
the wall clock, drawing from unseeded entropy, iterating hash-ordered
containers, and ordering by object identity.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.lint.astutil import ScopedVisitor, canonical_call, dotted_parts
from repro.lint.findings import Finding
from repro.lint.registry import rule

#: Wall-clock reads (D101).  Any of these inside a scenario makes the
#: trace depend on the host, not the seed.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Unseeded entropy sources (D102), matched by canonical prefix.
_ENTROPY_PREFIXES = ("os.urandom", "uuid.uuid1", "uuid.uuid4",
                     "secrets.", "numpy.random.", "random.SystemRandom")

#: ``random.<fn>`` module-level functions draw from the interpreter's
#: global stream — shared across everything in the process, therefore
#: ordering-coupled and unseeded from the scenario's point of view.
#: ``random.Random(seed)`` instances are the sanctioned alternative.
_GLOBAL_RANDOM_OK = {"random.Random"}


def _canonical(ctx, node: ast.Call):
    return canonical_call(node, ctx.aliases)


@rule
class WallClockRule:
    id = "D101"
    name = "no-wall-clock"
    rationale = ("wall-clock reads (time.time, datetime.now, ...) inside "
                 "sim/net/core/workloads make traces depend on the host, "
                 "breaking golden-trace and shard byte-parity")

    def check(self, ctx) -> Iterator[Finding]:
        if not ctx.config.is_deterministic_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                canonical = _canonical(ctx, node)
                if canonical in _WALL_CLOCK:
                    yield ctx.finding(
                        self.id, node,
                        f"wall-clock read {canonical}() in deterministic "
                        f"module {ctx.module}; derive times from the "
                        f"simulator clock (sim.now)")


@rule
class UnseededRandomRule:
    id = "D102"
    name = "no-unseeded-random"
    rationale = ("global-stream or OS-entropy randomness (random.random, "
                 "os.urandom, uuid4, random.Random()) is not reproducible "
                 "from the scenario seed; draw from a seeded "
                 "random.Random stream (see repro.sim.rng)")

    def check(self, ctx) -> Iterator[Finding]:
        if not ctx.config.is_deterministic_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical(ctx, node)
            if canonical is None:
                continue
            if canonical == "random.Random" and not node.args \
                    and not node.keywords:
                yield ctx.finding(
                    self.id, node,
                    "random.Random() without a seed draws from OS "
                    "entropy; pass a seed derived from the scenario "
                    "seed (repro.sim.rng.derive_seed)")
                continue
            if any(canonical.startswith(p) for p in _ENTROPY_PREFIXES):
                yield ctx.finding(
                    self.id, node,
                    f"{canonical}() is OS entropy, not a function of the "
                    f"scenario seed")
                continue
            if canonical.startswith("random.") \
                    and canonical not in _GLOBAL_RANDOM_OK \
                    and canonical.count(".") == 1:
                yield ctx.finding(
                    self.id, node,
                    f"{canonical}() draws from the interpreter-global "
                    f"stream; use a seeded random.Random instance "
                    f"instead")


class _SetExprTracker:
    """Local-name set inference for one scope: a name counts as a set
    only if *every* assignment to it in the scope is a set expression
    (conservative — one non-set rebind clears it)."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.non_set_names: Set[str] = set()

    def observe(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if self.is_set_expr(node.value):
                self.set_names.add(name)
            else:
                self.non_set_names.add(name)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.value is not None:
            name = node.target.id
            if self.is_set_expr(node.value):
                self.set_names.add(name)
            else:
                self.non_set_names.add(name)

    def is_known_set(self, name: str) -> bool:
        return name in self.set_names and name not in self.non_set_names

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            parts = dotted_parts(node.func)
            if parts is not None:
                if parts[-1] in ("set", "frozenset") and len(parts) == 1:
                    return True
                # set-returning methods on a known set expression
                if len(parts) >= 2 and parts[-1] in (
                        "union", "intersection", "difference",
                        "symmetric_difference", "copy") \
                        and self.is_known_set(parts[0]):
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return self.is_set_expr(node.left) \
                or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return self.is_known_set(node.id)
        return False


class _SetIterationVisitor(ScopedVisitor):
    """Finds hash-ordered iteration per scope (module or function)."""

    def __init__(self, ctx, rule_id: str):
        super().__init__()
        self.ctx = ctx
        self.rule_id = rule_id
        self.findings = []
        self.trackers = [_SetExprTracker()]

    def _visit_function(self, node):
        # Fresh local-name universe per function; pre-scan its direct
        # statements so uses before the (textual) assignment still infer.
        tracker = _SetExprTracker()
        for child in ast.walk(node):
            tracker.observe(child)
        self.trackers.append(tracker)
        self.function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()
            self.trackers.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    @property
    def tracker(self) -> _SetExprTracker:
        return self.trackers[-1]

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(self.ctx.finding(
            self.rule_id, node,
            f"iteration over {what} is hash-ordered and differs across "
            f"processes/runs; wrap it in sorted(...) (or suppress if the "
            f"consumer is provably order-insensitive)"))

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self.tracker.is_set_expr(iter_node):
            what = ("a set expression"
                    if not isinstance(iter_node, ast.Name)
                    else f"set {iter_node.id!r}")
            self._flag(iter_node, what)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_ordered_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_ordered_comp
    visit_GeneratorExp = _visit_ordered_comp
    visit_DictComp = _visit_ordered_comp

    # A SetComp's own output is unordered, so feeding it from a set is
    # harmless; only its nested ordered comprehensions matter, and the
    # generic visit reaches those.
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        parts = dotted_parts(node.func)
        if parts is not None and len(parts) == 1 \
                and parts[0] in ("list", "tuple", "enumerate") \
                and node.args and self.tracker.is_set_expr(node.args[0]):
            self._flag(node, f"a set materialized by {parts[0]}(...)")
        self.generic_visit(node)


@rule
class SetIterationRule:
    id = "D103"
    name = "no-set-iteration"
    rationale = ("set/frozenset iteration order is hash-seed and "
                 "history dependent; anything feeding results or merges "
                 "must iterate sorted(...) or parity breaks off-sample")

    def check(self, ctx) -> Iterator[Finding]:
        visitor = _SetIterationVisitor(ctx, self.id)
        # Module scope: observe top-level assignments before walking.
        for child in ast.walk(ctx.tree):
            if not isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                visitor.trackers[0].observe(child)
        visitor.visit(ctx.tree)
        yield from visitor.findings


def _is_id_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "id")


def _key_uses_id(keyword: ast.keyword) -> bool:
    value = keyword.value
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda):
        return any(_is_id_call(n) for n in ast.walk(value.body))
    return False


@rule
class IdOrderingRule:
    id = "D104"
    name = "no-id-ordering"
    rationale = ("id() values are allocation addresses — stable within "
                 "a process, different across fork/spawn workers — so "
                 "any ordering built on them diverges between shards")

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                parts = dotted_parts(node.func)
                is_order_call = parts is not None and parts[-1] in (
                    "sorted", "sort", "min", "max")
                if is_order_call:
                    for keyword in node.keywords:
                        if keyword.arg == "key" and _key_uses_id(keyword):
                            yield ctx.finding(
                                self.id, node,
                                "ordering by id() is per-process memory "
                                "layout; order by a stable identity "
                                "(node id, kind id, sort key) instead")
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                ordering_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
                if any(isinstance(op, ordering_ops) for op in node.ops) \
                        and any(_is_id_call(o) for o in operands):
                    yield ctx.finding(
                        self.id, node,
                        "comparing id() values imposes a per-process "
                        "ordering; compare stable identities instead")
