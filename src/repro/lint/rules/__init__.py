"""The shipped rule catalog.

Each submodule registers its rules with
:func:`repro.lint.registry.rule` at import time;
:func:`repro.lint.registry.all_rules` imports them lazily, so this
package has no import-time side effects of its own.

* :mod:`repro.lint.rules.determinism` — D1xx
* :mod:`repro.lint.rules.shard` — S2xx
* :mod:`repro.lint.rules.kinds` — K3xx
* :mod:`repro.lint.rules.hotpath` — P4xx
"""
