"""P-rules: hot-path hygiene.

Since PR 1 the standing rule on per-event/per-datagram paths is
``__slots__`` on every class: no per-instance ``__dict__`` saves memory
at 1k+ node populations and keeps attribute access on the send/deliver
fast paths cheap.  The hot-module list lives in
:data:`repro.lint.config.HOT_PREFIXES`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import base_name, dotted_parts
from repro.lint.findings import Finding
from repro.lint.registry import rule

#: Base classes that exempt a class from the __slots__ requirement:
#: typing.Protocol bodies are interfaces, exception types are cold by
#: definition, and enum/namedtuple machinery manages its own storage.
_EXEMPT_BASES = {"Protocol", "Exception", "BaseException", "Enum",
                 "IntEnum", "StrEnum", "Flag", "NamedTuple", "TypedDict"}


def _is_exception_base(name: str) -> bool:
    return name.endswith("Error") or name.endswith("Exception") \
        or name in ("Exception", "BaseException", "Warning")


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) \
                    and stmt.target.id == "__slots__":
                return True
    return False


def _dataclass_decorator(node: ast.ClassDef):
    """The @dataclass decorator node, or None."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        parts = dotted_parts(target)
        if parts is not None and parts[-1] == "dataclass":
            return decorator
    return None


def _dataclass_has_slots(decorator) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "slots" \
                and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is True
    return False


@rule
class SlotsRequiredRule:
    id = "P401"
    name = "slots-in-hot-modules"
    rationale = ("classes in hot modules (sim/net/core) must declare "
                 "__slots__ (or @dataclass(slots=True)): per-instance "
                 "__dict__ costs memory and attribute-access time on "
                 "per-event/per-datagram paths")

    def check(self, ctx) -> Iterator[Finding]:
        if not ctx.config.is_hot_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = [base_name(b) for b in node.bases]
            if any(b in _EXEMPT_BASES or (b and _is_exception_base(b))
                   for b in bases):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is not None:
                if not _dataclass_has_slots(decorator):
                    yield ctx.finding(
                        self.id, node,
                        f"dataclass {node.name!r} in hot module "
                        f"{ctx.module} should declare "
                        f"@dataclass(slots=True)")
                continue
            if not _declares_slots(node):
                yield ctx.finding(
                    self.id, node,
                    f"class {node.name!r} in hot module {ctx.module} "
                    f"has no __slots__; per-instance __dict__ is "
                    f"banned on hot paths (add __slots__, or a "
                    f"suppression if the class is provably cold)")
