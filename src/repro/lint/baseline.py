"""Baseline files: grandfather existing findings without silencing rules.

A baseline is a JSON document of finding keys — ``(rule, path, source
line text)`` with an occurrence count — written by ``--write-baseline``
and consumed by ``--baseline``.  Matching deliberately ignores line
numbers so a baseline survives unrelated edits; it breaks (the finding
resurfaces) as soon as the flagged line's text changes, which is the
moment the grandfathered code was touched and should be fixed for real.

CI runs with **no** baseline: the tree itself must be clean.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

_VERSION = 1

BaselineKey = Tuple[str, str, str]


class BaselineError(ValueError):
    """A baseline file that cannot be parsed or has the wrong shape."""


def write_baseline(path: str, findings: List[Finding]) -> int:
    """Write ``findings`` as a baseline; returns the entry count."""
    counts: Counter = Counter(f.baseline_key for f in findings)
    entries = [{"rule": rule, "path": file_path, "text": text,
                "count": count}
               for (rule, file_path, text), count in sorted(counts.items())]
    document = {"version": _VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def load_baseline(path: str) -> Dict[BaselineKey, int]:
    """Load a baseline into ``{(rule, path, text): allowed_count}``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path!r} is not valid JSON: "
                            f"{exc}") from exc
    if not isinstance(document, dict) or "entries" not in document:
        raise BaselineError(f"baseline {path!r} has no 'entries' list")
    if document.get("version") != _VERSION:
        raise BaselineError(f"baseline {path!r} has unsupported version "
                            f"{document.get('version')!r}")
    allowed: Dict[BaselineKey, int] = {}
    for entry in document["entries"]:
        try:
            key = (entry["rule"], entry["path"], entry["text"])
            count = int(entry.get("count", 1))
        except (TypeError, KeyError) as exc:
            raise BaselineError(f"malformed baseline entry {entry!r} in "
                                f"{path!r}") from exc
        allowed[key] = allowed.get(key, 0) + count
    return allowed


def filter_baselined(findings: List[Finding],
                     allowed: Dict[BaselineKey, int]) -> List[Finding]:
    """Drop findings covered by the baseline, respecting counts.

    With N allowed occurrences of a key, the first N findings matching
    it are dropped and any further ones are reported — adding a *second*
    copy of a grandfathered violation is still a new finding.
    """
    budget = dict(allowed)
    kept: List[Finding] = []
    for finding in sorted(findings, key=lambda f: f.sort_key):
        key = finding.baseline_key
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
        else:
            kept.append(finding)
    return kept
