"""Lint configuration: which modules each rule family applies to.

Module scoping is by dotted-name prefix.  A file's module name is
derived from its path (the component chain starting at the ``repro``
package directory); files outside the package (tests, benchmarks,
fixtures) fall back to their bare stem and match only the ``"*"``
wildcard prefix.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Tuple

#: Packages whose behaviour must be a pure function of (config, seed):
#: everything that runs inside a scenario.  ``repro.experiments`` is
#: deliberately absent — wall-clock timing for progress/wall_time
#: reporting is legitimate there.
DETERMINISTIC_PREFIXES: Tuple[str, ...] = (
    "repro.sim", "repro.net", "repro.core", "repro.workloads",
    "repro.membership", "repro.freeriders", "repro.streaming",
    "repro.baselines", "repro.adversary",
)

#: Modules on per-event/per-datagram allocation or dispatch paths, where
#: ``__slots__`` is the standing rule (P401).  Attack node/sampler
#: classes handle the same per-message traffic as their honest
#: superclasses, so the adversary package is hot too.
HOT_PREFIXES: Tuple[str, ...] = (
    "repro.sim", "repro.net", "repro.core", "repro.adversary",
)


def module_matches(module: str, prefixes: Tuple[str, ...]) -> bool:
    """True if ``module`` falls under any dotted ``prefixes`` entry.

    ``"*"`` matches everything (used by tests and ad-hoc runs to force a
    rule family onto files outside the package).
    """
    for prefix in prefixes:
        if prefix == "*":
            return True
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


def module_name_for(path: str) -> str:
    """Dotted module name for a source file path.

    Finds the ``repro`` package component in the path (preferring one
    directly under a ``src`` directory) and joins everything from there;
    ``__init__.py`` maps to its package.  Files outside any ``repro``
    tree get their bare stem, which matches no package-scoped prefix.
    """
    parts = os.path.normpath(path).split(os.sep)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    start = None
    for i, part in enumerate(parts[:-1] if len(parts) > 1 else parts):
        if part == "repro":
            if i > 0 and parts[i - 1] == "src":
                start = i
                break
            if start is None:
                start = i
    if start is None:
        return parts[-1] if parts else ""
    return ".".join(parts[start:])


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Per-run analyzer configuration."""

    deterministic_prefixes: Tuple[str, ...] = DETERMINISTIC_PREFIXES
    hot_prefixes: Tuple[str, ...] = HOT_PREFIXES
    #: Rule-id prefixes to run ("" selects all); see ``rules_matching``.
    select: Tuple[str, ...] = field(default_factory=tuple)

    def is_deterministic_module(self, module: str) -> bool:
        return module_matches(module, self.deterministic_prefixes)

    def is_hot_module(self, module: str) -> bool:
        return module_matches(module, self.hot_prefixes)
