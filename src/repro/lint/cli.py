"""The ``python -m repro lint`` entry point.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage/configuration
error (unknown rule selector, unreadable baseline, missing path).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.baseline import (BaselineError, filter_baselined,
                                 load_baseline, write_baseline)
from repro.lint.config import (DETERMINISTIC_PREFIXES, HOT_PREFIXES,
                               LintConfig)
from repro.lint.driver import lint_paths
from repro.lint.registry import catalog_lines
from repro.lint.report import RENDERERS


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``lint`` subcommand's arguments (shared with tests)."""
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=sorted(RENDERERS),
                        default="text", help="report format")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="JSON baseline of grandfathered findings "
                             "to ignore (matched by rule+path+line "
                             "text, not line numbers)")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write the current findings as a baseline "
                             "and exit 0")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids or prefixes "
                             "(e.g. D101 or D,S2); default: all rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog (id + rationale) "
                             "and exit")
    parser.add_argument("--deterministic-modules", default=None,
                        metavar="PREFIXES",
                        help="override the dotted-module prefixes the "
                             "D-rules apply to (comma-separated; '*' "
                             "matches everything; default: "
                             + ",".join(DETERMINISTIC_PREFIXES) + ")")
    parser.add_argument("--hot-modules", default=None, metavar="PREFIXES",
                        help="override the hot-module prefixes P401 "
                             "applies to (comma-separated; '*' matches "
                             "everything; default: "
                             + ",".join(HOT_PREFIXES) + ")")


def _split(value: Optional[str]) -> tuple:
    if value is None:
        return ()
    return tuple(part.strip() for part in value.split(",") if part.strip())


def run_lint(args) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    if args.list_rules:
        for line in catalog_lines():
            print(line)
        return 0
    config = LintConfig(
        deterministic_prefixes=(_split(args.deterministic_modules)
                                or DETERMINISTIC_PREFIXES),
        hot_prefixes=_split(args.hot_modules) or HOT_PREFIXES,
        select=_split(args.select),
    )
    try:
        findings, files_checked = lint_paths(args.paths, config)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        entries = write_baseline(args.write_baseline, findings)
        print(f"wrote {entries} baseline entr"
              f"{'y' if entries == 1 else 'ies'} "
              f"({len(findings)} finding(s)) to {args.write_baseline}",
              file=sys.stderr)
        return 0
    if args.baseline:
        try:
            findings = filter_baselined(findings, load_baseline(args.baseline))
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    RENDERERS[args.format](findings, files_checked, sys.stdout)
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & shard-safety static analyzer")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
