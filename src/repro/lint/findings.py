"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``text`` carries the stripped source line; the baseline matches on
    ``(rule, path, text)`` rather than line numbers, so grandfathered
    findings survive unrelated edits that shift lines.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    text: str = ""

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self):
        return (self.rule, self.path.replace("\\", "/"), self.text)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path.replace("\\", "/"),
                "line": self.line, "col": self.col,
                "message": self.message, "text": self.text}
