"""The rule registry.

A rule is a class with ``id``, ``name`` and ``rationale`` attributes and
a ``check(ctx)`` generator yielding :class:`~repro.lint.findings.Finding`
objects.  Rule modules register themselves at import time through the
:func:`rule` decorator; :func:`all_rules` imports the catalog packages
on first use so the registry is complete without callers having to know
the module layout.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterable, List, Sequence

#: Modules that define the shipped rule catalog (imported lazily).
_CATALOG_MODULES = (
    "repro.lint.rules.determinism",
    "repro.lint.rules.shard",
    "repro.lint.rules.kinds",
    "repro.lint.rules.hotpath",
)

_RULES: Dict[str, object] = {}
_catalog_loaded = False


def rule(cls):
    """Class decorator: instantiate and register a rule under its id."""
    instance = cls()
    rule_id = instance.id
    if rule_id in _RULES:
        raise ValueError(f"lint rule {rule_id!r} registered twice")
    _RULES[rule_id] = instance
    return cls


def _load_catalog() -> None:
    global _catalog_loaded
    if _catalog_loaded:
        return
    _catalog_loaded = True
    for module in _CATALOG_MODULES:
        importlib.import_module(module)


def all_rules() -> List[object]:
    """Every registered rule, ordered by id."""
    _load_catalog()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rules_matching(select: Sequence[str]) -> List[object]:
    """Rules whose id matches any selector (exact id or id prefix).

    An empty ``select`` means all rules.  Raises :class:`ValueError` for
    a selector that matches nothing — a typo'd ``--select D11`` silently
    checking nothing would be worse than failing.
    """
    rules = all_rules()
    if not select:
        return rules
    chosen: List[object] = []
    for token in select:
        matched = [r for r in rules if r.id == token
                   or r.id.startswith(token)]
        if not matched:
            known = ", ".join(r.id for r in rules)
            raise ValueError(f"--select {token!r} matches no rule "
                             f"(known: {known})")
        for r in matched:
            if r not in chosen:
                chosen.append(r)
    return sorted(chosen, key=lambda r: r.id)


def catalog_lines() -> Iterable[str]:
    """``--list-rules`` output: one ``ID<tab>rationale`` row per rule."""
    for r in all_rules():
        yield f"{r.id}  {r.name}: {r.rationale}"
