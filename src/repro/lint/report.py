"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, List

from repro.lint.findings import Finding

_VERSION = 1


def render_text(findings: List[Finding], files_checked: int,
                stream: IO[str]) -> None:
    """One ``path:line:col: RULE message`` row per finding + a summary."""
    ordered = sorted(findings, key=lambda f: f.sort_key)
    for finding in ordered:
        stream.write(finding.render() + "\n")
    noun = "finding" if len(ordered) == 1 else "findings"
    stream.write(f"repro lint: {len(ordered)} {noun} "
                 f"in {files_checked} file(s) checked\n")


def render_json(findings: List[Finding], files_checked: int,
                stream: IO[str]) -> None:
    """Machine-readable report (stable field order, sorted findings)."""
    ordered = sorted(findings, key=lambda f: f.sort_key)
    counts = Counter(f.rule for f in ordered)
    document = {
        "version": _VERSION,
        "files_checked": files_checked,
        "total": len(ordered),
        "counts_by_rule": dict(sorted(counts.items())),
        "findings": [f.as_dict() for f in ordered],
    }
    json.dump(document, stream, indent=2, sort_keys=False)
    stream.write("\n")


RENDERERS = {"text": render_text, "json": render_json}
