"""Scenario execution: build the system, run it, collect results.

The runner wires together every substrate — simulator, network fabric,
membership directory, stream source, protocol nodes — from one
:class:`~repro.workloads.scenario.ScenarioConfig`, runs to the scenario's
horizon and returns an :class:`ExperimentResult` holding the receiver
logs and enough context to compute any of the paper's metrics offline.

Node 0 is always the stream source; nodes 1..n-1 are receivers whose
upload capacities come from the scenario's capability distribution.

Construction and execution are split: :func:`build_scenario` wires the
full system and starts its active components, :func:`run_scenario` then
drives the event loop to the horizon.  The split exists for the sharded
execution engine (:mod:`repro.net.shard`): a shard worker builds the
*entire* scenario — setup must consume every shared random stream in
exactly the serial order, so the values assigned to its own nodes match
the serial run — but passes ``owned`` so only its partition's nodes,
samplers, probers and (for shard 0) the stream source actually start.
With ``config.shards > 1``, :func:`run_scenario` transparently delegates
to the sharded engine and returns a merged result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.adversary.mix import Placement, effective_adversary, place_attackers
from repro.adversary.registry import get_attack
from repro.baselines.tree import StaticTreeNode, build_kary_tree
from repro.core.discovery import CapabilityProber
from repro.core.heap import HeapGossipNode
from repro.core.standard import StandardGossipNode
from repro.freeriders.detection import FreeriderDetector
from repro.membership.directory import MembershipDirectory
from repro.membership.peer_sampling import PeerSamplingService
from repro.membership.selector import CapabilityBiasedSelector
from repro.net.latency import PairwiseLatency, PerPairLatency
from repro.net.loss import BernoulliLoss, PerPairLoss
from repro.net.network import Network
from repro.net.router import Router
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry, derive_seed
from repro.streaming.player import PlaybackAnalyzer
from repro.streaming.receiver import ReceiverLog
from repro.streaming.source import StreamSource
from repro.workloads.scenario import ScenarioConfig

#: The stream source is always node 0.
SOURCE_ID = 0


class ExperimentResult:
    """Everything a metric needs about one finished run."""

    def __init__(self, config: ScenarioConfig, sim: Simulator, net: Network,
                 directory: MembershipDirectory, nodes: List,
                 publish_times: List[float], capacities: List[float],
                 labels: List[str], crash_times: Dict[int, float],
                 freerider_ids: Optional[List[int]] = None,
                 detectors: Optional[Dict[int, FreeriderDetector]] = None,
                 samplers: Optional[Dict[int, PeerSamplingService]] = None,
                 attackers: Optional[Placement] = None,
                 attacker_stats: Optional[Dict[int, Dict[str, int]]] = None):
        self.config = config
        self.sim = sim
        self.net = net
        self.directory = directory
        self.nodes = nodes
        self.publish_times = publish_times
        self.capacities = capacities
        self.labels = labels
        self.crash_times = crash_times
        self.freerider_ids = freerider_ids or []
        self.detectors = detectors or {}
        self.samplers = samplers or {}
        #: node_id -> (attack name, attack parameter) for every attacker
        #: (``freerider_ids`` above stays as the flat id list the legacy
        #: analysis consumes — always ``sorted(attackers)``).
        self.attackers = attackers or {}
        #: node_id -> attack-specific counters (``attack_stats()``).
        self.attacker_stats = attacker_stats or {}

    # ------------------------------------------------------------------
    # stream geometry
    # ------------------------------------------------------------------
    @property
    def total_packets(self) -> int:
        return len(self.publish_times)

    def windows(self) -> range:
        """Ids of the fully published windows."""
        return range(self.total_packets // self.config.stream.packets_per_window)

    def analyzer(self) -> PlaybackAnalyzer:
        return PlaybackAnalyzer(self.config.stream, self.publish_times.__getitem__)

    # ------------------------------------------------------------------
    # population accessors
    # ------------------------------------------------------------------
    def receiver_ids(self, include_crashed: bool = False) -> List[int]:
        """All nodes except the source, optionally excluding crash victims."""
        ids = []
        for node_id in range(1, self.config.n_nodes):
            if not include_crashed and node_id in self.crash_times:
                continue
            ids.append(node_id)
        return ids

    def log_of(self, node_id: int) -> ReceiverLog:
        return self.nodes[node_id].log

    def label_of(self, node_id: int) -> str:
        return self.labels[node_id]

    def capacity_of(self, node_id: int) -> float:
        return self.capacities[node_id]

    def class_labels(self) -> List[str]:
        """Distinct receiver class labels, poorest (slowest) first."""
        by_capacity: Dict[str, float] = {}
        for node_id in range(1, self.config.n_nodes):
            by_capacity.setdefault(self.labels[node_id], self.capacities[node_id])
        return sorted(by_capacity, key=by_capacity.get)

    def receivers_in_class(self, label: str, include_crashed: bool = False) -> List[int]:
        return [node_id for node_id in self.receiver_ids(include_crashed)
                if self.labels[node_id] == label]

    # ------------------------------------------------------------------
    # bandwidth accounting
    # ------------------------------------------------------------------
    def uplink_utilization(self, node_id: int) -> float:
        """Fraction of the node's upload capability actually used, over
        its lifetime inside the measurement interval."""
        start = self.config.stream_start
        end = self.crash_times.get(node_id, self.config.stream_start + self.config.duration)
        elapsed = max(1e-9, end - start)
        return self.net.uplink(node_id).utilization(elapsed)


def _place_scenario_attackers(config: ScenarioConfig,
                              capacities: Sequence[float]) -> Placement:
    """Which receivers misbehave, and how (empty for honest scenarios).

    Goes through :func:`repro.adversary.mix.effective_adversary`, so the
    deprecated ``freerider_*`` triple lands here too — as the equivalent
    single-attack mix whose random placement reproduces the historical
    ``freeriders``-stream selection bit for bit.
    """
    if config.protocol != "heap":
        return {}
    mix = effective_adversary(config)
    if mix is None:
        return {}
    return place_attackers(mix, seed=config.seed, n_nodes=config.n_nodes,
                           capacities=capacities)


def _collect_attacker_stats(nodes: List, samplers: Dict, attackers: Placement,
                            owned: Optional[Set[int]] = None
                            ) -> Dict[int, Dict[str, int]]:
    """node_id -> the attack-specific counters its implementation kept.

    A shard worker passes ``owned``: an unstarted replica's counters are
    all zero and must not shadow the owner's real ones in the merge.
    """
    stats: Dict[int, Dict[str, int]] = {}
    for node_id in sorted(attackers):
        if owned is not None and node_id not in owned:
            continue
        collected: Dict[str, int] = {}
        node = nodes[node_id]
        if hasattr(node, "attack_stats"):
            collected.update(node.attack_stats())
        sampler = samplers.get(node_id)
        if sampler is not None and hasattr(sampler, "attack_stats"):
            collected.update(sampler.attack_stats())
        stats[node_id] = collected
    return stats


def _build_gossip_nodes(config: ScenarioConfig, sim: Simulator, net: Network,
                        views, registry: RngRegistry,
                        capacities: Sequence[float],
                        attackers: Placement) -> List:
    node_class = HeapGossipNode if config.protocol == "heap" else StandardGossipNode
    nodes = []
    for node_id in range(config.n_nodes):
        rng = registry.fork(f"node-{node_id}").stream("protocol")
        spec = attackers.get(node_id)
        if spec is not None and get_attack(spec[0]).role == "node":
            name, param = spec
            node = get_attack(name).impl(sim, net, node_id, views[node_id],
                                         config.gossip, rng,
                                         capacities[node_id], param)
        else:
            # Honest, or a sampler-role attacker whose gossip node IS
            # honest (the misbehaviour lives in its sampling service).
            node = node_class(sim, net, node_id, views[node_id],
                              config.gossip, rng, capacities[node_id])
        nodes.append(node)
    if config.source_bias > 0:
        capability_of = lambda node_id: capacities[node_id]  # noqa: E731
        nodes[SOURCE_ID].selector = CapabilityBiasedSelector(
            registry.stream("source-bias"), capability_of, bias=config.source_bias)
    return nodes


def _build_tree_nodes(config: ScenarioConfig, sim: Simulator, net: Network,
                      capacities: Sequence[float]) -> List:
    # Tree arity mirrors the gossip fanout so the comparison is
    # like-for-like in out-degree.
    children = build_kary_tree(range(config.n_nodes), arity=int(config.gossip.fanout))
    return [StaticTreeNode(sim, net, node_id, children[node_id], capacities[node_id])
            for node_id in range(config.n_nodes)]


class ScenarioBuild:
    """A fully wired, started scenario that has not yet been run.

    Holds every substrate :func:`run_scenario` needs to drive the event
    loop and assemble the :class:`ExperimentResult`; shard workers hold
    one per shard and drive the loop in windows instead.
    """

    def __init__(self, config: ScenarioConfig, sim: Simulator, net: Network,
                 directory: MembershipDirectory, nodes: List,
                 publish_times: List[float], capacities: List[float],
                 labels: List[str], crash_times: Dict[int, float],
                 freerider_ids: List[int], detectors: Dict, samplers: Dict,
                 attackers: Optional[Placement] = None):
        self.config = config
        self.sim = sim
        self.net = net
        self.directory = directory
        self.nodes = nodes
        self.publish_times = publish_times
        self.capacities = capacities
        self.labels = labels
        self.crash_times = crash_times
        self.freerider_ids = freerider_ids
        self.detectors = detectors
        self.samplers = samplers
        self.attackers = attackers or {}

    def result(self) -> ExperimentResult:
        return ExperimentResult(self.config, self.sim, self.net,
                                self.directory, self.nodes,
                                self.publish_times, self.capacities,
                                self.labels, self.crash_times,
                                freerider_ids=self.freerider_ids,
                                detectors=self.detectors,
                                samplers=self.samplers,
                                attackers=self.attackers,
                                attacker_stats=_collect_attacker_stats(
                                    self.nodes, self.samplers, self.attackers))


def build_scenario(config: ScenarioConfig, *,
                   owned: Optional[Set[int]] = None,
                   router: Optional[Router] = None) -> ScenarioBuild:
    """Wire a scenario and start its active components.

    ``owned=None`` (the in-process default) starts everything.  A shard
    worker passes its node partition: the *whole* system is still built
    — all shared setup randomness (capability assignment, bootstrap
    views, discovery phases, freerider picks) is consumed in the serial
    order, so every shard assigns identical values — but timers, stream
    source and co-protocols start only for owned nodes.  ``router``
    replaces the network's default in-process delivery router.
    """
    config.validate()
    sim = Simulator()
    registry = RngRegistry(config.seed)

    def owns(node_id: int) -> bool:
        return owned is None or node_id in owned

    if config.latency_rng == "per-pair":
        latency = PerPairLatency(derive_seed(config.seed, "latency-pairs"),
                                 median_base=config.latency_median,
                                 jitter=config.latency_jitter,
                                 floor=config.latency_floor)
    else:
        latency = PairwiseLatency(registry.stream("latency"),
                                  median_base=config.latency_median,
                                  jitter=config.latency_jitter,
                                  floor=config.latency_floor)
    if config.loss_rate <= 0:
        loss = None
    elif config.loss_rng == "per-pair":
        loss = PerPairLoss(derive_seed(config.seed, "loss-pairs"),
                           config.loss_rate)
    else:
        loss = BernoulliLoss(registry.stream("loss"), config.loss_rate)
    # Envelope recycling is safe here: every endpoint the runner builds
    # drops the envelope when on_message returns.
    net = Network(sim, latency=latency, loss=loss, reuse_envelopes=True,
                  router=router)

    directory = MembershipDirectory(sim, registry.stream("detection"),
                                    mean_detection_delay=config.mean_detection_delay)
    directory.register_all(range(config.n_nodes))

    # Capacity assignment: node 0 (source) fixed, receivers from the
    # distribution.
    assignment = config.distribution.assign(config.n_nodes - 1,
                                            registry.stream("workload"))
    labels = ["source"] + [label for label, _ in assignment]
    capacities = [config.source_capacity_bps] + [cap for _, cap in assignment]

    # Adversary placement: a pure function of (mix, seed, population,
    # capacities) with its own derived RNGs, so computing it here — every
    # shard replicates it identically — consumes no shared stream draws.
    attackers = _place_scenario_attackers(config, capacities)
    freerider_ids = sorted(attackers)

    # Membership views: the directory's (full membership) or the
    # peer-sampling service's partial views.
    samplers: Dict[int, PeerSamplingService] = {}
    if config.membership == "cyclon" and config.protocol != "tree":
        boot_rng = registry.stream("cyclon-bootstrap")
        for node_id in range(config.n_nodes):
            rng = registry.fork(f"cyclon-{node_id}").stream("shuffle")
            view_size = config.cyclon_view_size
            shuffle_length = max(2, config.cyclon_view_size // 2)
            spec = attackers.get(node_id)
            if spec is not None and get_attack(spec[0]).role == "sampler":
                name, param = spec
                # Sampler convention: honest signature, then the attack
                # parameter, then the attacker coalition's ids.
                sampler = get_attack(name).impl(
                    sim, net, node_id, rng, view_size, shuffle_length, 1.0,
                    param, tuple(freerider_ids))
            else:
                sampler = PeerSamplingService(
                    sim, net, node_id, rng, view_size=view_size,
                    shuffle_length=shuffle_length)
            others = [n for n in range(config.n_nodes) if n != node_id]
            sampler.bootstrap(boot_rng.sample(
                others, min(config.cyclon_view_size, len(others))))
            samplers[node_id] = sampler
        views = {node_id: samplers[node_id].view
                 for node_id in range(config.n_nodes)}
    else:
        views = {node_id: directory.view_of(node_id)
                 for node_id in range(config.n_nodes)}

    if config.protocol == "tree":
        nodes = _build_tree_nodes(config, sim, net, capacities)
    else:
        nodes = _build_gossip_nodes(config, sim, net, views, registry,
                                    capacities, attackers)
        # The source advertises an average capability (see ScenarioConfig)
        # and gossips with the base fanout regardless of the aggregation
        # estimate: adapting the broadcaster's fanout to its oversized
        # uplink would make every node pull payloads straight from it and
        # congest it (fanout >= 1 is all reliability needs of the source).
        advertised = config.source_advertised_bps
        if advertised is None:
            advertised = config.distribution.average_bps()
        nodes[SOURCE_ID].capability_bps = advertised
        if config.protocol == "heap":
            from repro.core.fanout import FixedFanout
            nodes[SOURCE_ID].set_fanout_policy(
                FixedFanout(config.gossip.fanout, mode="round"))

    for node_id, node in enumerate(nodes):
        net.attach(node_id, node, upload_capacity_bps=capacities[node_id])

    # Co-hosted protocols: peer sampling and the freerider audit ride the
    # same endpoint by merging their kind-id tables into the node's
    # dispatch table (captured live by the network at attach time).
    detectors: Dict[int, FreeriderDetector] = {}
    if samplers:
        for node_id, node in enumerate(nodes):
            sampler = samplers[node_id]
            node.register_handlers(sampler.dispatch_table())
            if owns(node_id):
                sampler.start()
    # Capability discovery: HEAP receivers start from a low advertised
    # capability and slow-start toward their physical uplink (§2.2).
    probers: Dict[int, CapabilityProber] = {}
    if config.capability_discovery and config.protocol == "heap":
        for node_id in range(1, config.n_nodes):
            node = nodes[node_id]
            node.capability_bps = config.discovery_initial_bps
            # The phase draw is consumed for *every* node (shared
            # stream), so owned nodes see their serial-run phases.
            phase = registry.stream("discovery").uniform(0.0, 1.0)
            if not owns(node_id):
                continue
            prober = CapabilityProber(
                sim, net.uplink(node_id),
                initial_bps=config.discovery_initial_bps,
                ceiling_bps=capacities[node_id],
                on_change=lambda bps, n=node: setattr(n, "capability_bps", bps))
            prober.start(phase=phase)
            probers[node_id] = prober
        # Discovery is a join-time mechanism: freeze advertisements when
        # the stream ends so drain-phase silence does not erode them.
        sim.schedule_at(config.stream_start + config.duration,
                        lambda: [p.stop() for p in probers.values()])

    if config.audit and config.protocol != "tree":
        for node_id, node in enumerate(nodes):
            # Built for every node (the audit stream is a per-node fork,
            # so skipping draws is safe) but started only when owned: a
            # node's detector lives wholly on its owner shard and its
            # evidence is harvested into the merged result.
            detector = FreeriderDetector(
                sim, net, node_id, views[node_id],
                registry.fork(f"audit-{node_id}").stream("audit"))
            node.register_handlers(detector.dispatch_table())
            node.on_request_sent = detector.record_request
            node.on_serve_received = detector.record_serve
            if owns(node_id):
                detector.start()
            detectors[node_id] = detector

    # Degraded nodes: advertised capability unchanged, effective uplink cut.
    if config.degraded_fraction > 0:
        degraded_rng = registry.stream("degraded")
        receivers = list(range(1, config.n_nodes))
        count = round(config.degraded_fraction * len(receivers))
        for node_id in degraded_rng.sample(receivers, count):
            uplink = net.uplink(node_id)
            uplink.set_capacity(uplink.capacity_bps * config.degraded_factor)

    for node_id, node in enumerate(nodes):
        if owns(node_id):
            node.start()

    # The stream.
    publish_times: List[float] = []

    def publish(packet):
        publish_times.append(packet.publish_time)
        nodes[SOURCE_ID].publish(packet)

    if owns(SOURCE_ID):
        source = StreamSource(sim, config.stream, publish,
                              total_packets=config.total_packets)
        source.start(delay=config.stream_start)

    # Churn.
    crash_times: Dict[int, float] = {}

    if config.churn is not None:
        # Churn is *replicated* under sharding: every shard draws the
        # same victims from its copy of the churn/detection streams and
        # crashes them locally, so membership state stays serial-exact on
        # every shard.  A membership-aware router (the shard router) is
        # additionally notified so the victim's owner can announce the
        # event as a control row that peer shards verify against their
        # replica (see repro.net.shard).
        on_membership = getattr(net.router, "on_membership_event", None)

        def crash_node(victim: int) -> None:
            crash_times[victim] = sim.now
            net.crash(victim)
            nodes[victim].stop()
            if victim in samplers:
                samplers[victim].stop()
            if victim in detectors:
                detectors[victim].stop()
            if victim in probers:
                probers[victim].stop()
            if on_membership is not None:
                from repro.net.shard import EVENT_CRASH

                on_membership(EVENT_CRASH, victim, sim.now)

        config.churn.schedule(sim, directory, registry.stream("churn"),
                              crash_node, protect=[SOURCE_ID])

    return ScenarioBuild(config, sim, net, directory, nodes, publish_times,
                         capacities, labels, crash_times,
                         freerider_ids=freerider_ids, detectors=detectors,
                         samplers=samplers, attackers=attackers)


def run_scenario(config: ScenarioConfig,
                 until: Optional[float] = None) -> ExperimentResult:
    """Run one scenario to completion and collect its result.

    ``until`` overrides the horizon (rarely needed; tests use it).  With
    ``config.shards > 1`` the run is delegated to the sharded execution
    engine — same scenario, same metric summaries, partitioned across
    worker shards (see :mod:`repro.net.shard`).
    """
    if config.shards > 1:
        from repro.net.shard import run_sharded

        return run_sharded(config, until=until)
    build = build_scenario(config)
    build.sim.run(until=until if until is not None else config.end_time)
    return build.result()
