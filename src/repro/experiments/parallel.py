"""Parallel scenario×seed experiment engine.

The paper's figures are multi-seed averages over many scenario variants;
running those grids serially on one core is the single largest wall-clock
cost of reproducing them.  This module fans a scenario×seed grid out
across worker processes while keeping the results *bit-identical* to a
serial run:

* every cell of the grid is an independent ``(ScenarioConfig, seed)``
  task — simulations share no state, so parallelism cannot change any
  result, only its arrival order;
* tasks travel to workers as pickles (``ScenarioConfig`` is a plain
  dataclass, so this is spawn-safe); the serial path pickles the config
  too, which both exercises picklability on every run and gives churn
  objects the same fresh-copy semantics workers get;
* workers return compact :class:`RunRecord` values — metric scalars,
  run counters and the requested :class:`~repro.metrics.summary.MetricSpec`
  summaries, never the full ``ExperimentResult`` — so result transfer
  stays cheap at any grid size;
* records are merged by grid position, not completion order, so the
  aggregate output of ``--jobs 8`` is byte-identical to ``--jobs 1``;
* with ``checkpoint=`` the engine appends each finished record to a
  JSONL file as it lands, and ``resume=True`` reloads finished cells so
  a killed run restarts where it stopped instead of from scratch.

Usage::

    from repro.experiments.parallel import run_grid
    from repro.experiments.multi_seed import metric_offline_delivery

    grid = run_grid(
        [ScenarioConfig(protocol="heap"), ScenarioConfig(protocol="standard")],
        seeds=range(1, 9),
        metrics={"delivery": metric_offline_delivery},
        jobs=4,
        checkpoint="sweep.jsonl", resume=True,
    )
    print(grid.render())

or from the command line::

    python -m repro sweep --protocols heap,standard --num-seeds 8 --jobs 4 \
        --checkpoint sweep.jsonl --resume

Metrics and summary specs must be picklable (module-level functions, or
``functools.partial`` over them) when a pool is used.  Progress is
reported through an optional callback as tasks finish (restored
checkpoint records report first, in grid order).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Tuple)

from repro.experiments.runner import ExperimentResult, run_scenario
from repro.faults.failures import (CellFailure, TornCheckpointInjected,
                                   render_failures)
from repro.faults.inject import apply_cell_fault
from repro.faults.policy import SupervisionPolicy
from repro.faults.pool import SupervisedPool
from repro.metrics.export import append_jsonl, read_jsonl
from repro.metrics.summary import MetricSpec, summarize
from repro.workloads.scenario import ScenarioConfig, scenario_key

#: A metric maps a finished run to one scalar.
Metric = Callable[[ExperimentResult], float]

#: Progress callback: invoked with one :class:`ProgressEvent` per
#: finished (or checkpoint-restored) cell, on the coordinator thread.
ProgressCallback = Callable[["ProgressEvent"], None]

#: Header line identifying a grid checkpoint file.
CHECKPOINT_FORMAT = "repro-grid-checkpoint-v1"


class CheckpointError(ValueError):
    """A checkpoint file cannot be resumed (wrong grid, wrong format, or
    damaged beyond the tolerated trailing truncation)."""


@dataclass
class RunRecord:
    """Compact, picklable result of one (scenario, seed) cell."""

    scenario_index: int
    scenario_name: str
    seed_index: int
    seed: int
    #: metric name -> scalar value, in the caller's metric order.
    metrics: Dict[str, float]
    events_executed: int
    sim_end_time: float
    #: Worker wall-clock seconds; excluded from determinism comparisons.
    wall_time: float = field(compare=False)
    #: spec name -> compact summary value (JSON-able: the in-worker
    #: reductions of the receiver logs a figure asked for).  Excluded
    #: from ``==`` because a JSONL round trip turns tuples into lists;
    #: compare through :meth:`summary_key` instead.
    summaries: Dict[str, object] = field(default_factory=dict, compare=False)
    #: The run's merged cross-shard wire counters
    #: (:meth:`repro.net.stats.NetworkStats.wire_summary`; all-zero for
    #: unsharded cells).  Deterministic, but excluded from ``==`` so
    #: records from checkpoints written before this field existed still
    #: compare equal to fresh ones.
    wire: Dict[str, int] = field(default_factory=dict, compare=False)

    def determinism_key(self) -> tuple:
        """Everything that must be identical across serial/parallel runs."""
        return (self.scenario_index, self.scenario_name, self.seed_index,
                self.seed, tuple(self.metrics.items()),
                self.events_executed, self.sim_end_time)

    def summary_key(self) -> str:
        """Canonical JSON of the summaries: stable across JSONL round
        trips (tuples and lists serialize identically), so fresh and
        resumed records compare equal."""
        import json

        return json.dumps(self.summaries, sort_keys=True)

    def to_jsonable(self) -> dict:
        return {
            "scenario_index": self.scenario_index,
            "scenario_name": self.scenario_name,
            "seed_index": self.seed_index,
            "seed": self.seed,
            "metrics": self.metrics,
            "events_executed": self.events_executed,
            "sim_end_time": self.sim_end_time,
            "wall_time": self.wall_time,
            "summaries": self.summaries,
            "wire": self.wire,
        }

    @classmethod
    def from_jsonable(cls, obj: dict) -> "RunRecord":
        return cls(scenario_index=obj["scenario_index"],
                   scenario_name=obj["scenario_name"],
                   seed_index=obj["seed_index"],
                   seed=obj["seed"],
                   metrics=dict(obj["metrics"]),
                   events_executed=obj["events_executed"],
                   sim_end_time=obj["sim_end_time"],
                   wall_time=obj["wall_time"],
                   summaries=dict(obj.get("summaries", {})),
                   wire=dict(obj.get("wire", {})))


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress tick of a grid run.

    This is the *documented* event API every progress consumer shares —
    the CLI progress line, the service control plane's SSE stream and
    the tests all receive the same value.  Events fire on the
    coordinator thread (never inside a worker process — the S201
    sink-contract exemption for ``run_grid(progress=...)`` relies on
    that), once per cell: checkpoint-restored cells first, in grid
    order, with ``restored=True``, then fresh cells as they land.
    """

    #: Cells finished so far (restored + executed), and the grid total.
    done: int
    total: int
    #: The cell that just finished.
    record: RunRecord
    #: The cell's scenario value-identity — the same
    #: :func:`~repro.workloads.scenario.scenario_key` string the summary
    #: cache and checkpoint fingerprints use, so consumers can correlate
    #: progress with cached state.
    cell_key: str
    #: True when the cell was reloaded from a checkpoint rather than
    #: executed (resume accounting: ``executed == total - restored``).
    restored: bool = False

    @property
    def events_per_sec(self) -> float:
        """Simulator event throughput of the cell's run (0 if unknown)."""
        if self.record.wall_time <= 0:
            return 0.0
        return self.record.events_executed / self.record.wall_time

    def to_jsonable(self) -> dict:
        """Flat JSON view (what the service streams over SSE)."""
        record = self.record
        return {
            "done": self.done,
            "total": self.total,
            "restored": self.restored,
            "cell_key": self.cell_key,
            "scenario_index": record.scenario_index,
            "scenario_name": record.scenario_name,
            "seed_index": record.seed_index,
            "seed": record.seed,
            "events_executed": record.events_executed,
            "wall_time": record.wall_time,
            "events_per_sec": self.events_per_sec,
            "metrics": record.metrics,
            "wire": record.wire,
        }


class GridResult:
    """All records of one grid run, in deterministic grid order."""

    def __init__(self, configs: Sequence[ScenarioConfig], seeds: Sequence,
                 metric_names: Sequence[str], records: List[RunRecord],
                 jobs: int, wall_time: float,
                 failures: Sequence[CellFailure] = (),
                 cell_retries: int = 0):
        self.configs = list(configs)
        #: ``[None]`` marks an own-seed grid (each config ran under its
        #: embedded ``config.seed``; shape is scenarios × 1).
        self.seeds = list(seeds)
        self.metric_names = list(metric_names)
        #: Scenario-major, seed-minor — independent of completion order.
        #: A quarantined poison cell leaves ``None`` at its position (see
        #: ``failures``); every aggregation below tolerates that hole.
        self.records = records
        self.jobs = jobs
        #: Total wall-clock seconds for the whole grid (not deterministic).
        self.wall_time = wall_time
        #: Structured records of cells whose workers kept dying after the
        #: retry budget — the degraded-result contract: the sweep
        #: completed everything else and reports the holes here.
        self.failures: Tuple[CellFailure, ...] = tuple(failures)
        #: Worker-crash/stall retry attempts supervision recovered from
        #: (0 on a clean run; not deterministic — recovery evidence).
        self.cell_retries = cell_retries

    def records_for(self, scenario_index: int) -> List[RunRecord]:
        n = len(self.seeds)
        start = scenario_index * n
        return self.records[start:start + n]

    def aggregated_for(self, scenario_index: int):
        """Per-metric aggregation for one scenario: name -> AggregatedMetric."""
        from repro.experiments.multi_seed import AggregatedMetric
        records = [r for r in self.records_for(scenario_index) if r is not None]
        return {name: AggregatedMetric(name, [r.metrics[name] for r in records])
                for name in self.metric_names}

    def aggregated(self):
        """List of (config, {metric -> AggregatedMetric}) per scenario."""
        return [(config, self.aggregated_for(i))
                for i, config in enumerate(self.configs)]

    def determinism_keys(self) -> List[tuple]:
        return [record.determinism_key() for record in self.records
                if record is not None]

    def summary_keys(self) -> List[str]:
        return [record.summary_key() for record in self.records
                if record is not None]

    def render(self) -> str:
        """Deterministic text summary (identical for any ``jobs`` value).

        A faulted-but-recovered run renders byte-identically to a clean
        one: the failure block only appears when cells were actually
        quarantined.
        """
        lines = []
        for i, config in enumerate(self.configs):
            seeds = ([r.seed for r in self.records_for(i) if r is not None]
                     if self.seeds == [None] else list(self.seeds))
            label = config.name if len(self.configs) == 1 else f"[{i}] {config.name}"
            lines.append(f"{label}: protocol={config.protocol} "
                         f"n={config.n_nodes} duration={config.duration:g}s "
                         f"seeds={seeds}")
            for name, agg in self.aggregated_for(i).items():
                lines.append("  " + agg.summary())
        lines.extend(render_failures(self.failures))
        return "\n".join(lines)


def _run_cell(payload, run_fn=run_scenario) -> Tuple[int, RunRecord]:
    """Run one grid cell with a pluggable scenario runner."""
    (index, scenario_index, scenario_name, seed_index, config,
     metric_items, specs) = payload
    started = time.perf_counter()
    result = run_fn(config)
    values = {name: metric(result) for name, metric in metric_items}
    summaries = summarize(result, specs)
    record = RunRecord(
        scenario_index=scenario_index,
        scenario_name=scenario_name,
        seed_index=seed_index,
        seed=config.seed,
        metrics=values,
        events_executed=result.sim.events_executed,
        sim_end_time=result.sim.now,
        wall_time=time.perf_counter() - started,
        summaries=summaries,
        wire=result.net.stats.wire_summary(),
    )
    return index, record


def _execute(payload) -> Tuple[int, RunRecord]:
    """Pool entry point.  Module-level so it pickles to worker processes."""
    return _run_cell(payload)


def _default_start_method() -> str:
    """Prefer fork (milliseconds per worker) where the platform has it;
    fall back to spawn.  Every code path is spawn-safe — tasks, metrics
    and summary specs travel as pickles either way — so the choice only
    affects pool startup cost, which dominates small grids."""
    import multiprocessing

    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


def _available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _check_spawn_importable(metric_items, specs_by_scenario) -> None:
    """Refuse functions spawn workers cannot import.

    A function defined in ``__main__`` (a script or REPL) pickles by
    reference in the parent but fails to *unpickle* in a spawn worker,
    whose ``__main__`` is a different module.  Left unchecked that kills
    the worker during task ``get()``; the pool respawns it, the task is
    never completed and ``imap_unordered`` waits forever — a silent
    deadlock instead of an error.  Fail loudly up front instead.
    """
    import functools

    def origin(fn):
        while isinstance(fn, functools.partial):
            fn = fn.func
        return getattr(fn, "__module__", None), getattr(fn, "__qualname__", fn)

    offenders = []
    for name, metric in metric_items:
        module, qualname = origin(metric)
        if module == "__main__":
            offenders.append(f"metric {name!r} ({qualname})")
    for specs in specs_by_scenario:
        for spec in specs:
            module, qualname = origin(spec.fn)
            if module == "__main__":
                offenders.append(f"summary spec {spec.name!r} ({qualname})")
    if offenders:
        raise ValueError(
            "spawn workers cannot import functions defined in __main__: "
            + "; ".join(offenders)
            + " — move them into a module, or use fork/serial execution")


def _specs_per_scenario(summaries, n_configs: int) -> List[Tuple[MetricSpec, ...]]:
    """Normalize the ``summaries`` argument to one spec tuple per scenario."""
    if summaries is None:
        return [()] * n_configs
    summaries = list(summaries)
    if not summaries:
        return [()] * n_configs
    if isinstance(summaries[0], MetricSpec):
        flat = tuple(summaries)
        return [flat] * n_configs
    per_scenario = [tuple(specs) for specs in summaries]
    if len(per_scenario) != n_configs:
        raise ValueError(f"need one spec sequence per scenario: got "
                         f"{len(per_scenario)} for {n_configs} scenarios")
    return per_scenario


def grid_fingerprint(configs: Sequence[ScenarioConfig], seeds,
                     metric_names: Sequence[str],
                     specs_per_scenario: Sequence[Sequence[MetricSpec]]) -> str:
    """Stable identity of a grid: which runs, which reductions.

    Everything that changes a record's *content* is covered — scenario
    value-keys, the seed axis, metric names, summary-spec names — so a
    checkpoint can refuse to resume a different grid.  Spec names encode
    their parameters by construction (see ``MetricSpec``).
    """
    blob = repr((
        tuple(scenario_key(config) for config in configs),
        tuple(seeds) if seeds is not None else None,
        tuple(metric_names),
        tuple(tuple(spec.name for spec in specs)
              for specs in specs_per_scenario),
    ))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _load_checkpoint(path: str, fingerprint: str,
                     total: int) -> Dict[int, RunRecord]:
    """Read finished cells from a checkpoint; index -> record.

    Raises :class:`CheckpointError` if the file belongs to a different
    grid or is damaged — a resume must never silently mix two
    experiments' records.  A torn trailing line (the writer was killed
    mid-append) is repaired in place — truncated with a warning — so the
    append that follows starts on a clean line boundary instead of
    gluing onto the partial record.
    """
    import json

    try:
        objects = read_jsonl(path, repair=True)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path} is damaged beyond a "
                              f"truncated last line: {exc}") from exc
    if not objects:
        return {}
    header = objects[0]
    if (not isinstance(header, dict)
            or header.get("format") != CHECKPOINT_FORMAT):
        raise CheckpointError(f"{path} is not a grid checkpoint")
    if header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} belongs to a different grid "
            f"(scenarios, seeds or summary specs changed); "
            f"delete it or pass a fresh path")
    done: Dict[int, RunRecord] = {}
    for obj in objects[1:]:
        try:
            index = obj["index"]
            record = RunRecord.from_jsonable(obj["record"])
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"checkpoint {path} contains a "
                                  f"non-record line: {exc!r}") from exc
        if 0 <= index < total:
            done[index] = record
    return done


def run_grid(configs, seeds: Optional[Sequence[int]],
             metrics: Dict[str, Metric],
             jobs: int = 1, progress: Optional[ProgressCallback] = None,
             start_method: Optional[str] = None,
             summaries=None,
             checkpoint: Optional[str] = None,
             resume: bool = False,
             checkpoint_gc: bool = False,
             run_fn: Optional[Callable[[ScenarioConfig], ExperimentResult]] = None,
             faults=None,
             supervision: Optional[SupervisionPolicy] = None,
             ) -> GridResult:
    """Run every ``config`` under every seed and collect compact records.

    ``configs`` may be a single :class:`ScenarioConfig` or a sequence.
    ``seeds=None`` runs each config under its own embedded ``config.seed``
    (an N×1 grid — what the figure pipeline uses).  ``jobs`` <= 1 runs
    serially in-process; larger values fan the grid out over a
    ``multiprocessing`` pool — except on a single-CPU host, where the
    pool could only add overhead (~9 % measured) and is bypassed unless
    ``start_method`` is given explicitly (tests use that to force the
    pool path).  ``summaries`` requests in-worker
    :class:`~repro.metrics.summary.MetricSpec` reductions: either one
    sequence applied to every scenario, or one sequence *per* scenario.
    Cells whose scenario is *sharded* (``config.shards > 1``) run
    serially regardless of ``jobs`` — each such cell fans out its own
    shard worker processes, which a daemonic pool worker may not spawn.
    ``checkpoint`` appends each finished record to a JSONL file;
    ``resume=True`` reloads finished cells from it (validated by grid
    fingerprint) so only the remainder runs.  ``checkpoint_gc=True``
    turns on housekeeping for managed checkpoint files (the CLI's
    ``--checkpoint-dir`` mode): a resume against a stale checkpoint —
    fingerprint mismatch or damage beyond trailing truncation — is
    garbage-collected and the grid starts fresh instead of erroring, and
    the checkpoint is deleted after the grid completes successfully (a
    spent checkpoint can only ever shadow a future run).  ``run_fn``
    replaces the
    scenario runner on the serial path only (the figure pipeline passes
    ``cached_run`` there to share results process-wide).  Results are
    merged in grid order, so the outcome is bit-identical for any
    ``jobs`` value — only the wall time changes.

    ``faults`` takes a :class:`~repro.faults.plan.FaultPlan` whose cell
    and checkpoint clauses are injected deterministically (shard clauses
    travel on the configs instead); ``supervision`` tunes the pool's
    :class:`~repro.faults.policy.SupervisionPolicy` (retry budget,
    backoff, per-attempt timeout).  A crashed or wedged worker costs a
    retry, never the sweep: a cell that out-dies its budget becomes a
    structured :class:`~repro.faults.failures.CellFailure` on the result
    while every other cell completes.
    """
    if isinstance(configs, ScenarioConfig):
        configs = [configs]
    configs = list(configs)
    if not configs:
        raise ValueError("need at least one scenario config")
    if faults is not None:
        fault_errors = faults.violations()
        if fault_errors:
            raise ValueError("; ".join(fault_errors))
        if faults.torn_checkpoint is not None and checkpoint is None:
            raise ValueError("torn-checkpoint fault injection needs "
                             "checkpoint= (there is no file to tear)")
    if seeds is not None:
        seeds = list(seeds)
        if not seeds:
            raise ValueError("need at least one seed")
    for config in configs:
        config.validate()
    metric_items = tuple(metrics.items())
    metric_names = [name for name, _ in metric_items]
    specs_by_scenario = _specs_per_scenario(summaries, len(configs))

    payloads = []
    for scenario_index, config in enumerate(configs):
        specs = specs_by_scenario[scenario_index]
        if seeds is None:
            payloads.append((len(payloads), scenario_index, config.name, 0,
                             config, metric_items, specs))
        else:
            for seed_index, seed in enumerate(seeds):
                payloads.append((
                    len(payloads), scenario_index, config.name, seed_index,
                    config.with_(seed=seed), metric_items, specs,
                ))

    total = len(payloads)
    records: List[Optional[RunRecord]] = [None] * total
    started = time.perf_counter()

    # ------------------------------------------------------------------
    # checkpoint: restore finished cells, then append fresh ones.
    # ------------------------------------------------------------------
    checkpoint_fh = None
    done = 0
    if checkpoint is not None:
        fingerprint = grid_fingerprint(configs, seeds, metric_names,
                                       specs_by_scenario)
        restored: Dict[int, RunRecord] = {}
        if resume and os.path.exists(checkpoint):
            if checkpoint_gc:
                try:
                    restored = _load_checkpoint(checkpoint, fingerprint, total)
                except CheckpointError as exc:
                    import sys

                    print(f"checkpoint-gc: discarding stale checkpoint "
                          f"{checkpoint} ({exc})", file=sys.stderr)
                    restored = {}
            else:
                restored = _load_checkpoint(checkpoint, fingerprint, total)
        parent = os.path.dirname(checkpoint)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if restored:
            checkpoint_fh = open(checkpoint, "a", encoding="utf-8")
        else:
            checkpoint_fh = open(checkpoint, "w", encoding="utf-8")
            append_jsonl(checkpoint_fh, {"format": CHECKPOINT_FORMAT,
                                         "fingerprint": fingerprint,
                                         "total": total})
        for index in sorted(restored):
            records[index] = restored[index]
            done += 1
            if progress is not None:
                progress(ProgressEvent(
                    done=done, total=total, record=restored[index],
                    cell_key=scenario_key(payloads[index][4]),
                    restored=True))

    pending = [p for p in payloads if records[p[0]] is None]
    failures: List[CellFailure] = []
    cell_retries = 0
    fresh_appends = 0

    def finish(index: int, record: RunRecord) -> None:
        nonlocal done, fresh_appends
        records[index] = record
        done += 1
        if checkpoint_fh is not None:
            append_jsonl(checkpoint_fh,
                         {"index": index, "record": record.to_jsonable()})
            fresh_appends += 1
            if (faults is not None
                    and faults.torn_checkpoint == fresh_appends):
                checkpoint_fh.flush()
                _tear_checkpoint_tail(checkpoint)
                raise TornCheckpointInjected(checkpoint, index)
        if progress is not None:
            progress(ProgressEvent(done=done, total=total, record=record,
                                   cell_key=scenario_key(payloads[index][4])))

    # A pool on a 1-CPU host is pure overhead; run in-process unless the
    # caller pinned a start method (the parity tests do, to force the
    # pool path regardless of host).  Sharded cells (config.shards > 1)
    # spawn their own worker processes, which daemonic pool workers may
    # not — grid- and intra-scenario parallelism don't compose, so the
    # explicit shard request wins and the grid runs serially.
    sharded_cells = any(p[4].shards > 1 for p in pending)
    crash_faults = faults is not None and faults.has_pool_faults
    serial = (jobs <= 1 or len(pending) <= 1 or sharded_cells
              or (start_method is None and not crash_faults
                  and _available_cpus() <= 1))
    if crash_faults and serial:
        raise ValueError(
            "worker-crash fault injection needs a worker pool: pass "
            "jobs > 1 on an unsharded grid with 2+ pending cells")
    try:
        if serial:
            for payload in pending:
                # The config rides through pickle exactly as it would to
                # a worker: same spawn-safety guarantees, and stateful
                # churn objects get a fresh copy per run here too.
                config = pickle.loads(pickle.dumps(payload[4]))
                payload = payload[:4] + (config,) + payload[5:]
                if faults is not None:
                    # Only stall faults reach the serial path (crash
                    # faults required the pool above): the cell simply
                    # runs late, which is what per-attempt timeouts and
                    # the service watchdog are supervised against.
                    apply_cell_fault(faults.cell_fault(payload[0], 0))
                index, record = _run_cell(payload, run_fn or run_scenario)
                finish(index, record)
        else:
            import multiprocessing

            method = start_method or _default_start_method()
            if method == "spawn":
                _check_spawn_importable(metric_items, specs_by_scenario)
            ctx = multiprocessing.get_context(method)
            workers = min(jobs, len(pending))
            policy = supervision if supervision is not None else SupervisionPolicy()
            payload_by_index = {p[0]: p for p in pending}
            fault_for = faults.cell_fault if faults is not None else None
            with SupervisedPool(ctx, workers, _execute, policy=policy) as pool:
                for outcome in pool.run([(p[0], p) for p in pending],
                                        fault_for=fault_for):
                    if outcome[0] == "ok":
                        index, record = outcome[2]
                        finish(index, record)
                    else:
                        _tag, key, kind, attempts, message = outcome
                        payload = payload_by_index[key]
                        failures.append(CellFailure(
                            index=key, scenario_index=payload[1],
                            scenario_name=payload[2], seed_index=payload[3],
                            seed=payload[4].seed, kind=kind,
                            attempts=attempts, message=message))
                cell_retries = pool.retries
    finally:
        if checkpoint_fh is not None:
            checkpoint_fh.close()
    if checkpoint_gc and checkpoint is not None:
        # The grid completed: its checkpoint is spent.  Leaving it around
        # could only shadow a future (changed) grid with a mismatched
        # fingerprint, so managed checkpoints are collected on success.
        try:
            os.remove(checkpoint)
        except OSError:  # pragma: no cover - already gone / perms
            pass
    wall = time.perf_counter() - started
    return GridResult(configs, seeds if seeds is not None else [None],
                      metric_names, records, jobs, wall,
                      failures=failures, cell_retries=cell_retries)


def _tear_checkpoint_tail(path: str) -> None:
    """Truncate the checkpoint mid-way through its last line.

    This is the torn-checkpoint-write fault: the file ends exactly the
    way it would if the writing process had been killed inside a
    ``write`` — a partial JSON line with no trailing newline — which is
    the damage ``read_jsonl(repair=True)`` must repair on resume.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    line_start = data.rstrip(b"\n").rfind(b"\n") + 1
    torn = line_start + max(1, (len(data) - line_start) // 2)
    with open(path, "r+b") as fh:
        fh.truncate(torn)
