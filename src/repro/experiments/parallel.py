"""Parallel scenario×seed experiment engine.

The paper's figures are multi-seed averages over many scenario variants;
running those grids serially on one core is the single largest wall-clock
cost of reproducing them.  This module fans a scenario×seed grid out
across worker processes while keeping the results *bit-identical* to a
serial run:

* every cell of the grid is an independent ``(ScenarioConfig, seed)``
  task — simulations share no state, so parallelism cannot change any
  result, only its arrival order;
* tasks travel to workers as pickles (``ScenarioConfig`` is a plain
  dataclass, so this is spawn-safe); the serial path pickles the config
  too, which both exercises picklability on every run and gives churn
  objects the same fresh-copy semantics workers get;
* workers return compact :class:`RunRecord` values — metric scalars and
  run counters, never the full ``ExperimentResult`` — so result transfer
  stays cheap at any grid size;
* records are merged by grid position, not completion order, so the
  aggregate output of ``--jobs 8`` is byte-identical to ``--jobs 1``.

Usage::

    from repro.experiments.parallel import run_grid
    from repro.experiments.multi_seed import metric_offline_delivery

    grid = run_grid(
        [ScenarioConfig(protocol="heap"), ScenarioConfig(protocol="standard")],
        seeds=range(1, 9),
        metrics={"delivery": metric_offline_delivery},
        jobs=4,
    )
    print(grid.render())

or from the command line::

    python -m repro sweep --protocols heap,standard --num-seeds 8 --jobs 4

Metrics must be picklable (module-level functions) when ``jobs > 1``.
Progress is reported through an optional callback as tasks finish.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentResult, run_scenario
from repro.workloads.scenario import ScenarioConfig

#: A metric maps a finished run to one scalar.
Metric = Callable[[ExperimentResult], float]

#: Progress callback: (tasks_done, tasks_total, record_just_finished).
ProgressCallback = Callable[[int, int, "RunRecord"], None]


@dataclass
class RunRecord:
    """Compact, picklable result of one (scenario, seed) cell."""

    scenario_index: int
    scenario_name: str
    seed_index: int
    seed: int
    #: metric name -> scalar value, in the caller's metric order.
    metrics: Dict[str, float]
    events_executed: int
    sim_end_time: float
    #: Worker wall-clock seconds; excluded from determinism comparisons.
    wall_time: float = field(compare=False)

    def determinism_key(self) -> tuple:
        """Everything that must be identical across serial/parallel runs."""
        return (self.scenario_index, self.scenario_name, self.seed_index,
                self.seed, tuple(self.metrics.items()),
                self.events_executed, self.sim_end_time)


class GridResult:
    """All records of one grid run, in deterministic grid order."""

    def __init__(self, configs: Sequence[ScenarioConfig], seeds: Sequence[int],
                 metric_names: Sequence[str], records: List[RunRecord],
                 jobs: int, wall_time: float):
        self.configs = list(configs)
        self.seeds = list(seeds)
        self.metric_names = list(metric_names)
        #: Scenario-major, seed-minor — independent of completion order.
        self.records = records
        self.jobs = jobs
        #: Total wall-clock seconds for the whole grid (not deterministic).
        self.wall_time = wall_time

    def records_for(self, scenario_index: int) -> List[RunRecord]:
        n = len(self.seeds)
        start = scenario_index * n
        return self.records[start:start + n]

    def aggregated_for(self, scenario_index: int):
        """Per-metric aggregation for one scenario: name -> AggregatedMetric."""
        from repro.experiments.multi_seed import AggregatedMetric
        records = self.records_for(scenario_index)
        return {name: AggregatedMetric(name, [r.metrics[name] for r in records])
                for name in self.metric_names}

    def aggregated(self):
        """List of (config, {metric -> AggregatedMetric}) per scenario."""
        return [(config, self.aggregated_for(i))
                for i, config in enumerate(self.configs)]

    def determinism_keys(self) -> List[tuple]:
        return [record.determinism_key() for record in self.records]

    def render(self) -> str:
        """Deterministic text summary (identical for any ``jobs`` value)."""
        lines = []
        for i, config in enumerate(self.configs):
            label = config.name if len(self.configs) == 1 else f"[{i}] {config.name}"
            lines.append(f"{label}: protocol={config.protocol} "
                         f"n={config.n_nodes} duration={config.duration:g}s "
                         f"seeds={list(self.seeds)}")
            for name, agg in self.aggregated_for(i).items():
                lines.append("  " + agg.summary())
        return "\n".join(lines)


def _execute(payload) -> Tuple[int, RunRecord]:
    """Run one grid cell.  Module-level so it pickles for worker processes."""
    index, scenario_index, scenario_name, seed_index, config, metric_items = payload
    started = time.perf_counter()
    result = run_scenario(config)
    values = {name: metric(result) for name, metric in metric_items}
    record = RunRecord(
        scenario_index=scenario_index,
        scenario_name=scenario_name,
        seed_index=seed_index,
        seed=config.seed,
        metrics=values,
        events_executed=result.sim.events_executed,
        sim_end_time=result.sim.now,
        wall_time=time.perf_counter() - started,
    )
    return index, record


def _default_start_method() -> str:
    """Prefer fork (milliseconds per worker) where the platform has it;
    fall back to spawn.  Every code path is spawn-safe — tasks and
    metrics travel as pickles either way — so the choice only affects
    pool startup cost, which dominates small grids."""
    import multiprocessing

    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


def run_grid(configs, seeds: Sequence[int], metrics: Dict[str, Metric],
             jobs: int = 1, progress: Optional[ProgressCallback] = None,
             start_method: Optional[str] = None) -> GridResult:
    """Run every ``config`` under every seed and collect compact records.

    ``configs`` may be a single :class:`ScenarioConfig` or a sequence.
    ``jobs`` <= 1 runs serially in-process; larger values fan the grid out
    over a ``multiprocessing`` pool.  ``start_method`` picks the pool's
    start method (``"fork"`` where available, else ``"spawn"``; pass
    ``"spawn"`` explicitly to force the portable path — everything is
    spawn-safe).  Results are merged in grid order, so the outcome is
    bit-identical for any ``jobs`` value — only the wall time changes.
    """
    if isinstance(configs, ScenarioConfig):
        configs = [configs]
    configs = list(configs)
    seeds = list(seeds)
    if not configs:
        raise ValueError("need at least one scenario config")
    if not seeds:
        raise ValueError("need at least one seed")
    for config in configs:
        config.validate()
    metric_items = tuple(metrics.items())
    metric_names = [name for name, _ in metric_items]

    payloads = []
    for scenario_index, config in enumerate(configs):
        for seed_index, seed in enumerate(seeds):
            payloads.append((
                len(payloads), scenario_index, config.name, seed_index,
                config.with_(seed=seed), metric_items,
            ))

    total = len(payloads)
    records: List[Optional[RunRecord]] = [None] * total
    started = time.perf_counter()
    if jobs <= 1 or total == 1:
        for done, payload in enumerate(payloads, start=1):
            # The config rides through pickle exactly as it would to a
            # worker: same spawn-safety guarantees, and stateful churn
            # objects get a fresh copy per run here too.
            index, _, scenario_name, seed_index, config, _ = payload
            config = pickle.loads(pickle.dumps(config))
            index, record = _execute((index, payload[1], scenario_name,
                                      seed_index, config, metric_items))
            records[index] = record
            if progress is not None:
                progress(done, total, record)
    else:
        import multiprocessing

        ctx = multiprocessing.get_context(start_method or _default_start_method())
        workers = min(jobs, total)
        with ctx.Pool(processes=workers) as pool:
            done = 0
            for index, record in pool.imap_unordered(_execute, payloads,
                                                     chunksize=1):
                records[index] = record
                done += 1
                if progress is not None:
                    progress(done, total, record)
    wall = time.perf_counter() - started
    return GridResult(configs, seeds, metric_names, records, jobs, wall)
