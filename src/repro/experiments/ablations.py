"""Ablation experiments for HEAP's design knobs.

The paper's Section 5 names the levers this module explores:

* the aggregation protocol's accuracy/overhead trade-off;
* retransmission under datagram loss (UDP, "needs further research"
  towards TCP-friendliness);
* biasing neighbor selection towards rich nodes near the source
  ("a natural way to further improve the quality of gossiping");
* capping the adapted fanout (the superpeer concern: "elevate certain
  wealthy nodes to the rank of temporary superpeers").

Each ablation submits its whole parameter grid through
:func:`repro.experiments.gridrun.grid_summaries` in one call; the
module-level summary functions below run *inside* the workers (they are
picklable and reduce a result to a few JSON-able scalars).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.analysis.stats import mean
from repro.experiments.gridrun import grid_summaries
from repro.experiments.scales import Scale, current_scale, scenario_at
from repro.experiments.tables import TableResult
from repro.metrics.lag import per_node_lag_jitter_free, spec_lag_jitter_free
from repro.metrics.report import format_percent, format_seconds
from repro.metrics.summary import MetricSpec
from repro.workloads.distributions import MS_691, REF_691


def _mean_lag(result) -> float:
    return mean(per_node_lag_jitter_free(result).values())


def _offline_delivery(result) -> float:
    total = result.total_packets
    return mean(result.log_of(node_id).delivery_ratio(total)
                for node_id in result.receiver_ids())


# ----------------------------------------------------------------------
# in-worker summaries (module-level: they must pickle to pool workers)
# ----------------------------------------------------------------------
def aggregation_summary(result) -> dict:
    """Capability-estimate error, aggregation overhead and stream lag."""
    true_average = result.config.distribution.average_bps()
    errors = [abs(node.average_capability_estimate() - true_average)
              / true_average
              for node in (result.nodes[node_id]
                           for node_id in result.receiver_ids())]
    agg_bytes = result.net.stats.bytes_by_kind.get("aggregation", 0)
    per_node_rate = agg_bytes / result.config.n_nodes / (
        result.config.duration + result.config.drain)
    return {"estimate_error": mean(errors),
            "per_node_rate_bps": per_node_rate,
            "mean_lag": _mean_lag(result)}


def delivery_lag_summary(result) -> dict:
    """Offline delivery ratio plus mean jitter-free lag."""
    return {"offline_delivery": _offline_delivery(result),
            "mean_lag": _mean_lag(result)}


def rich_fanout_summary(result) -> dict:
    """Mean adapted fanout of the rich (3 Mbps) class, plus stream lag."""
    rich_fanouts = [result.nodes[node_id].current_fanout()
                    for node_id in result.receivers_in_class("3Mbps")]
    return {"rich_fanout": mean(rich_fanouts) if rich_fanouts else None,
            "mean_lag": _mean_lag(result)}


SPEC_AGGREGATION = MetricSpec("ablation_aggregation", aggregation_summary)
SPEC_DELIVERY_LAG = MetricSpec("ablation_delivery_lag", delivery_lag_summary)
SPEC_RICH_FANOUT = MetricSpec("ablation_rich_fanout", rich_fanout_summary)


def ablation_aggregation(scale: Scale = None,
                         fanouts: Sequence[int] = (1, 3, 7),
                         fresh_counts: Sequence[int] = (3, 10)) -> TableResult:
    """Aggregation fanout / freshness vs estimate error and stream lag."""
    scale = scale or current_scale()
    points = [(fanout, fresh) for fanout in fanouts for fresh in fresh_counts]
    cells = []
    for fanout, fresh in points:
        config = scenario_at(scale, protocol="heap", distribution=MS_691)
        config = config.with_(gossip=dataclasses.replace(
            config.gossip, aggregation_fanout=fanout,
            aggregation_fresh_count=fresh))
        cells.append((config, (SPEC_AGGREGATION,)))
    rows = []
    for (fanout, fresh), summary in zip(points, grid_summaries(cells)):
        values = summary[SPEC_AGGREGATION.name]
        rows.append([f"fanout={fanout}", f"fresh={fresh}",
                     format_percent(100.0 * values["estimate_error"]),
                     f"{values['per_node_rate_bps'] / 1024:.2f} KB/s",
                     format_seconds(values["mean_lag"])])
    return TableResult(
        "Ablation: aggregation",
        "capability-estimate error and overhead vs aggregation parameters "
        "(HEAP, ms-691)",
        rows, ["agg fanout", "fresh samples", "estimate error",
               "agg traffic/node", "mean jitter-free lag"])


def ablation_retransmission(scale: Scale = None,
                            loss_rates: Sequence[float] = (0.0, 0.01, 0.03)) -> TableResult:
    """Retransmission on/off across datagram loss rates."""
    scale = scale or current_scale()
    points = [(loss, retransmission) for loss in loss_rates
              for retransmission in (True, False)]
    cells = []
    for loss, retransmission in points:
        config = scenario_at(scale, protocol="heap", distribution=REF_691,
                             loss_rate=loss)
        config = config.with_(gossip=dataclasses.replace(
            config.gossip, retransmission=retransmission))
        cells.append((config, (SPEC_DELIVERY_LAG,)))
    rows = []
    for (loss, retransmission), summary in zip(points, grid_summaries(cells)):
        values = summary[SPEC_DELIVERY_LAG.name]
        rows.append([f"loss={loss:.0%}",
                     "on" if retransmission else "off",
                     format_percent(100.0 * values["offline_delivery"]),
                     format_seconds(values["mean_lag"])])
    return TableResult(
        "Ablation: retransmission",
        "offline delivery and lag with/without request retransmission "
        "(HEAP, ref-691)",
        rows, ["loss rate", "retransmission", "offline delivery",
               "mean jitter-free lag"])


def ablation_source_bias(scale: Scale = None,
                         biases: Sequence[float] = (0.0, 1.0, 2.0)) -> TableResult:
    """Bias the source's first-hop selection towards rich nodes (§5)."""
    scale = scale or current_scale()
    spec = spec_lag_jitter_free()
    cells = [(scenario_at(scale, protocol="heap", distribution=MS_691,
                          source_bias=bias), (spec,))
             for bias in biases]
    rows = []
    for bias, summary in zip(biases, grid_summaries(cells)):
        values = summary[spec.name]
        lags = sorted(values)
        median = lags[len(lags) // 2]
        p90 = lags[int(0.9 * len(lags))]
        rows.append([f"bias={bias:g}", format_seconds(median),
                     format_seconds(p90), format_seconds(mean(values))])
    return TableResult(
        "Ablation: source bias",
        "capability-biased first-hop selection at the source (HEAP, ms-691)",
        rows, ["bias exponent", "median lag", "p90 lag", "mean lag"])


def ablation_fanout_cap(scale: Scale = None,
                        caps: Sequence[float] = (0.0, 10.0, 14.0, 21.0)) -> TableResult:
    """Cap the adapted fanout (superpeer-risk knob; 0 = uncapped)."""
    scale = scale or current_scale()
    cells = []
    for cap in caps:
        config = scenario_at(scale, protocol="heap", distribution=MS_691)
        config = config.with_(gossip=dataclasses.replace(
            config.gossip, max_fanout=cap))
        cells.append((config, (SPEC_RICH_FANOUT,)))
    rows = []
    for cap, summary in zip(caps, grid_summaries(cells)):
        values = summary[SPEC_RICH_FANOUT.name]
        rich = values["rich_fanout"]
        rows.append(["uncapped" if cap == 0 else f"cap={cap:g}",
                     f"{rich:.1f}" if rich is not None else "n/a",
                     format_seconds(values["mean_lag"])])
    return TableResult(
        "Ablation: fanout cap",
        "bounding the adapted fanout of rich nodes (HEAP, ms-691)",
        rows, ["cap", "mean rich-node fanout", "mean jitter-free lag"])
