"""Ablation experiments for HEAP's design knobs.

The paper's Section 5 names the levers this module explores:

* the aggregation protocol's accuracy/overhead trade-off;
* retransmission under datagram loss (UDP, "needs further research"
  towards TCP-friendliness);
* biasing neighbor selection towards rich nodes near the source
  ("a natural way to further improve the quality of gossiping");
* capping the adapted fanout (the superpeer concern: "elevate certain
  wealthy nodes to the rank of temporary superpeers").
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.analysis.stats import mean
from repro.experiments.scales import Scale, cached_run, current_scale, scenario_at
from repro.experiments.tables import TableResult
from repro.metrics.lag import per_node_lag_jitter_free
from repro.metrics.report import format_percent, format_seconds
from repro.workloads.distributions import MS_691, REF_691


def _mean_lag(result) -> float:
    return mean(per_node_lag_jitter_free(result).values())


def _offline_delivery(result) -> float:
    total = result.total_packets
    return mean(result.log_of(node_id).delivery_ratio(total)
                for node_id in result.receiver_ids())


def ablation_aggregation(scale: Scale = None,
                         fanouts: Sequence[int] = (1, 3, 7),
                         fresh_counts: Sequence[int] = (3, 10)) -> TableResult:
    """Aggregation fanout / freshness vs estimate error and stream lag."""
    scale = scale or current_scale()
    rows = []
    true_average = MS_691.average_bps()
    for fanout in fanouts:
        for fresh in fresh_counts:
            config = scenario_at(scale, protocol="heap", distribution=MS_691)
            config = config.with_(gossip=dataclasses.replace(
                config.gossip, aggregation_fanout=fanout,
                aggregation_fresh_count=fresh))
            result = cached_run(config)
            errors = [abs(node.average_capability_estimate() - true_average)
                      / true_average
                      for node in (result.nodes[node_id]
                                   for node_id in result.receiver_ids())]
            agg_bytes = result.net.stats.bytes_by_kind.get("aggregation", 0)
            per_node_rate = agg_bytes / result.config.n_nodes / (
                result.config.duration + result.config.drain)
            rows.append([f"fanout={fanout}", f"fresh={fresh}",
                         format_percent(100.0 * mean(errors)),
                         f"{per_node_rate / 1024:.2f} KB/s",
                         format_seconds(_mean_lag(result))])
    return TableResult(
        "Ablation: aggregation",
        "capability-estimate error and overhead vs aggregation parameters "
        "(HEAP, ms-691)",
        rows, ["agg fanout", "fresh samples", "estimate error",
               "agg traffic/node", "mean jitter-free lag"])


def ablation_retransmission(scale: Scale = None,
                            loss_rates: Sequence[float] = (0.0, 0.01, 0.03)) -> TableResult:
    """Retransmission on/off across datagram loss rates."""
    scale = scale or current_scale()
    rows = []
    for loss in loss_rates:
        for retransmission in (True, False):
            config = scenario_at(scale, protocol="heap", distribution=REF_691,
                                 loss_rate=loss)
            config = config.with_(gossip=dataclasses.replace(
                config.gossip, retransmission=retransmission))
            result = cached_run(config)
            rows.append([f"loss={loss:.0%}",
                         "on" if retransmission else "off",
                         format_percent(100.0 * _offline_delivery(result)),
                         format_seconds(_mean_lag(result))])
    return TableResult(
        "Ablation: retransmission",
        "offline delivery and lag with/without request retransmission "
        "(HEAP, ref-691)",
        rows, ["loss rate", "retransmission", "offline delivery",
               "mean jitter-free lag"])


def ablation_source_bias(scale: Scale = None,
                         biases: Sequence[float] = (0.0, 1.0, 2.0)) -> TableResult:
    """Bias the source's first-hop selection towards rich nodes (§5)."""
    scale = scale or current_scale()
    rows = []
    for bias in biases:
        config = scenario_at(scale, protocol="heap", distribution=MS_691,
                             source_bias=bias)
        result = cached_run(config)
        lags = sorted(per_node_lag_jitter_free(result).values())
        median = lags[len(lags) // 2]
        p90 = lags[int(0.9 * len(lags))]
        rows.append([f"bias={bias:g}", format_seconds(median),
                     format_seconds(p90), format_seconds(_mean_lag(result))])
    return TableResult(
        "Ablation: source bias",
        "capability-biased first-hop selection at the source (HEAP, ms-691)",
        rows, ["bias exponent", "median lag", "p90 lag", "mean lag"])


def ablation_fanout_cap(scale: Scale = None,
                        caps: Sequence[float] = (0.0, 10.0, 14.0, 21.0)) -> TableResult:
    """Cap the adapted fanout (superpeer-risk knob; 0 = uncapped)."""
    scale = scale or current_scale()
    rows = []
    for cap in caps:
        config = scenario_at(scale, protocol="heap", distribution=MS_691)
        config = config.with_(gossip=dataclasses.replace(
            config.gossip, max_fanout=cap))
        result = cached_run(config)
        rich_fanouts = [result.nodes[node_id].current_fanout()
                        for node_id in result.receivers_in_class("3Mbps")]
        rows.append(["uncapped" if cap == 0 else f"cap={cap:g}",
                     f"{mean(rich_fanouts):.1f}" if rich_fanouts else "n/a",
                     format_seconds(_mean_lag(result))])
    return TableResult(
        "Ablation: fanout cap",
        "bounding the adapted fanout of rich nodes (HEAP, ms-691)",
        rows, ["cap", "mean rich-node fanout", "mean jitter-free lag"])
