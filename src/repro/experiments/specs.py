"""Declarative experiment specs: one JSON-able value per workload.

The CLI builds a :class:`SweepSpec` from argparse flags; the service
control plane (:mod:`repro.service`) builds the *same* value from an
HTTP request body.  Both execute through the same grid inputs —
``spec.configs()`` / ``spec.seed_list()`` / ``spec.metrics()`` — so a
sweep submitted over HTTP is the same experiment, cell for cell and
metric for metric, as ``python -m repro sweep ...``: identical records,
identical aggregate render, identical CSV export (modulo the measured
``wall_time_s`` column, which is flagged as a measurement).

The spec is also the *identity* of the workload: :meth:`fingerprint`
hashes the normalized parameter mapping, which the service uses to key
managed checkpoints — resubmitting the same spec after a cancel or a
crash resumes the same checkpoint file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Tuple

from repro.workloads.scenario import PROTOCOLS, ScenarioConfig
from repro.workloads import distribution_by_name


@dataclass(frozen=True)
class SweepSpec:
    """A protocol × seed grid, as the ``sweep`` CLI defines it.

    Field defaults mirror the CLI flag defaults exactly; anything that
    changes a record's content lives here, while pure *execution* knobs
    (worker count, checkpoint path, CSV destination) stay outside — two
    invocations that differ only in execution produce byte-identical
    results and share one fingerprint.
    """

    protocols: Tuple[str, ...] = ("heap", "standard")
    nodes: int = 100
    seconds: float = 20.0
    drain: float = 40.0
    distribution: str = "ref-691"
    loss: float = 0.0
    #: Explicit seed list; None derives ``base_seed .. base_seed+num_seeds-1``.
    seeds: Optional[Tuple[int, ...]] = None
    base_seed: int = 1
    num_seeds: int = 8
    audit: bool = False
    #: ``AttackMix.parse`` inputs (kept as the CLI's text form so the
    #: spec stays a plain JSON value).
    attacks: Optional[str] = None
    attack_params: Optional[str] = None
    victim_policy: str = "random"
    shards: int = 0
    #: None defers to the shard rule: "per-pair" when shards > 1,
    #: "shared" otherwise (exactly the CLI's behaviour).
    latency_rng: Optional[str] = None
    loss_rng: Optional[str] = None
    latency_floor: float = 0.002
    #: ``FaultPlan.parse`` input (chaos testing).  An *execution
    #: circumstance*, not an experiment parameter: recovered faulted
    #: runs are byte-identical to clean ones, so the field is excluded
    #: from :meth:`fingerprint` — a faulted resubmission finds the same
    #: managed checkpoint as the clean spec.
    faults: Optional[str] = None

    @classmethod
    def from_params(cls, params: Mapping) -> "SweepSpec":
        """Build and sanity-check a spec from a JSON-ish mapping.

        Unknown keys raise — a typoed parameter must not silently run
        the default experiment.  List-valued fields accept JSON lists or
        the CLI's comma-separated strings.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(f"unknown sweep parameter(s): "
                             f"{', '.join(unknown)}; known: "
                             f"{', '.join(sorted(known))}")
        kwargs = dict(params)
        if "protocols" in kwargs:
            kwargs["protocols"] = _names(kwargs["protocols"], "protocols")
        if kwargs.get("seeds") is not None:
            kwargs["seeds"] = _ints(kwargs["seeds"], "seeds")
        spec = cls(**kwargs)
        spec.check()
        return spec

    def check(self) -> None:
        """Spec-level validation (scenario-level checks live in
        :meth:`ScenarioConfig.validate`, via :meth:`configs`)."""
        if not self.protocols:
            raise ValueError("no protocols given")
        unknown = [p for p in self.protocols if p not in PROTOCOLS]
        if unknown:
            raise ValueError(f"unknown protocol(s) {', '.join(unknown)}; "
                             f"known: {', '.join(PROTOCOLS)}")
        if not self.seed_list():
            raise ValueError("no seeds given (check --num-seeds)")
        distribution_by_name(self.distribution)  # raises on unknown names
        plan = self.fault_plan()  # raises on bad fault syntax
        if plan is not None and plan.has_shard_faults and self.shards <= 1:
            raise ValueError("shard fault injection (shard-exit/shard-stall/"
                             "drop-wire) needs --shards > 1")

    def to_params(self) -> Dict[str, object]:
        """The normalized JSON mapping (tuples as lists), suitable for a
        request body and stable under a round trip through
        :meth:`from_params`."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    def fingerprint(self) -> str:
        """Stable identity of the workload (hex digest).

        Derived from every normalized parameter *except* ``faults``
        (an execution circumstance — recovered faulted runs are
        byte-identical to clean ones), so the service can key a managed
        checkpoint file by it: the same spec resubmitted after a cancel
        or crash — with or without injected faults — finds and resumes
        its own checkpoint.
        """
        params = self.to_params()
        params.pop("faults", None)
        blob = json.dumps(params, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # grid inputs
    # ------------------------------------------------------------------
    def seed_list(self) -> List[int]:
        if self.seeds is not None:
            return list(self.seeds)
        return list(range(self.base_seed, self.base_seed + self.num_seeds))

    def adversary(self):
        """The parsed :class:`~repro.adversary.AttackMix`, or None."""
        if not self.attacks:
            return None
        from repro.adversary import AttackMix

        return AttackMix.parse(self.attacks,
                               params_text=self.attack_params or "",
                               victim_policy=self.victim_policy)

    def fault_plan(self):
        """The parsed :class:`~repro.faults.FaultPlan`, or None."""
        if not self.faults:
            return None
        from repro.faults import FaultPlan

        return FaultPlan.parse(self.faults)

    def configs(self) -> List[ScenarioConfig]:
        """One validated ScenarioConfig per protocol — the exact configs
        ``repro sweep`` builds from the equivalent flags."""
        latency_rng = self.latency_rng
        loss_rng = self.loss_rng
        if self.shards > 1:
            if latency_rng is None:
                latency_rng = "per-pair"
            if loss_rng is None:
                loss_rng = "per-pair"
        adversary = self.adversary()
        plan = self.fault_plan()
        # Pool-level faults (crash-cell/stall-cell/torn-checkpoint) are
        # applied by run_grid itself; only shard-level faults travel on
        # the config into the sharded scenario driver.
        config_faults = (plan if plan is not None and plan.has_shard_faults
                         else None)
        configs = [ScenarioConfig(
            name=protocol,
            protocol=protocol,
            n_nodes=self.nodes,
            duration=self.seconds,
            drain=self.drain,
            distribution=distribution_by_name(self.distribution),
            loss_rate=self.loss,
            adversary=adversary,
            audit=self.audit,
            latency_rng=latency_rng if latency_rng is not None else "shared",
            loss_rng=loss_rng if loss_rng is not None else "shared",
            latency_floor=self.latency_floor,
            shards=self.shards,
            faults=config_faults,
        ) for protocol in self.protocols]
        for config in configs:
            config.validate()
        return configs

    def metrics(self) -> Dict[str, object]:
        """The sweep's metric columns, in CLI column order (module-level
        functions, so any ``jobs`` value works)."""
        from repro.experiments.multi_seed import (
            metric_jitter_free_10s,
            metric_mean_jitter_free_lag,
            metric_mean_utilization,
            metric_offline_delivery,
        )

        metrics = {
            "delivery": metric_offline_delivery,
            "lag_s": metric_mean_jitter_free_lag,
            "jitter_free_10s_pct": metric_jitter_free_10s,
            "utilization": metric_mean_utilization,
        }
        if self.adversary() is not None:
            from repro.adversary import ATTACK_GRID_METRICS

            metrics.update(ATTACK_GRID_METRICS)
        return metrics

    def cell_count(self) -> int:
        return len(self.protocols) * len(self.seed_list())


def _names(value, what: str) -> Tuple[str, ...]:
    """A tuple of names from a JSON list or a comma-separated string."""
    if isinstance(value, str):
        value = [p.strip() for p in value.split(",") if p.strip()]
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"{what} must be a list or comma-separated string, "
                         f"got {value!r}")
    return tuple(str(v) for v in value)


def _ints(value, what: str) -> Tuple[int, ...]:
    """A tuple of ints from a JSON list or a comma-separated string."""
    if isinstance(value, str):
        value = [s.strip() for s in value.split(",") if s.strip()]
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"{what} must be a list or comma-separated string, "
                         f"got {value!r}")
    try:
        return tuple(int(v) for v in value)
    except (TypeError, ValueError):
        raise ValueError(f"{what} must be a comma-separated integer list, "
                         f"got {value!r}") from None
