"""Experiment harness: scenario execution and per-figure/table definitions.

:mod:`repro.experiments.runner` turns a
:class:`~repro.workloads.scenario.ScenarioConfig` into an
:class:`~repro.experiments.runner.ExperimentResult`;
:mod:`repro.experiments.figures` and :mod:`repro.experiments.tables`
compute, for each figure and table of the paper's evaluation, the same
rows/series the paper plots — submitting their scenario grids through
:mod:`repro.experiments.parallel` (worker pools, in-worker summaries,
resumable JSONL checkpoints) via :mod:`repro.experiments.gridrun`.
"""

from repro.experiments.runner import ExperimentResult, run_scenario

__all__ = ["ExperimentResult", "run_scenario"]
