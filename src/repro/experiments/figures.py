"""Per-figure experiment definitions.

Each ``figN_*`` function runs the scenarios behind the corresponding
figure of the paper's evaluation and returns a result object whose
``render()`` produces the same rows/series the figure plots, as an ASCII
table.  Benches call these; examples reuse the cheaper ones.

Every figure submits its scenario cells through
:func:`repro.experiments.gridrun.grid_summaries` in **one** grid call:
workers reduce their receiver logs to exactly the values the figure
needs (``MetricSpec`` summaries), the grid engine fans cells out over
``--jobs N`` processes (byte-identical to serial), already-computed
cells come from the process-wide caches, and checkpointed runs resume
after a kill.

Lag CDFs follow the paper's two criteria:

* Figures 1-3: minimal lag to receive >= 99 % of all stream packets;
* Figure 9: minimal lag for a jitter-free (or <= 1 % jittered) stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.cdf import Cdf
from repro.experiments.gridrun import grid_summaries
from repro.experiments.scales import Scale, current_scale, scenario_at
from repro.metrics.bandwidth import spec_utilization_by_class
from repro.metrics.jitter import spec_jitter_free_fraction_by_class, spec_jitter_values
from repro.metrics.lag import (
    spec_lag_delivery,
    spec_lag_jitter_free,
    spec_lag_max_jitter,
    spec_mean_lag_by_class,
)
from repro.metrics.report import ascii_table, cdf_row, format_percent, format_seconds
from repro.metrics.windows import spec_window_delivery
from repro.streaming.player import OFFLINE
from repro.workloads.churn import CatastrophicFailure
from repro.workloads.distributions import (
    MS_691,
    REF_691,
    REF_724,
    UNCONSTRAINED,
    UNIFORM_691,
)

#: Lag values (seconds) at which CDF tables are sampled.
LAG_GRID = (1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0)
#: Jitter percentages at which Figure 7's CDF is sampled.
JITTER_GRID = (0.0, 1.0, 5.0, 10.0, 20.0, 50.0, 90.0)


@dataclass
class FigureResult:
    """A rendered figure: named CDF/series rows plus the ASCII table."""

    figure: str
    description: str
    rows: List[Sequence[str]]
    headers: Sequence[str]
    extra: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        title = f"[{self.figure}] {self.description}"
        return ascii_table(self.headers, self.rows, title=title)


def _lag_headers() -> List[str]:
    return ["series"] + [f"<={int(x)}s" for x in LAG_GRID]


# ----------------------------------------------------------------------
# Figure 1 — unconstrained uplinks, standard gossip, fanout 7
# ----------------------------------------------------------------------
def fig1_unconstrained(scale: Scale = None) -> FigureResult:
    scale = scale or current_scale()
    config = scenario_at(scale, protocol="standard", distribution=UNCONSTRAINED)
    spec = spec_lag_delivery(0.99)
    (summary,) = grid_summaries([(config, (spec,))])
    cdf = Cdf(summary[spec.name])
    rows = [cdf_row("standard f=7, unconstrained, 99% delivery", cdf, LAG_GRID)]
    percentiles = {q: cdf.percentile(q) for q in (0.5, 0.75, 0.9)}
    return FigureResult(
        "Fig 1", "percentage of nodes receiving >=99% of the stream vs lag "
        "(unconstrained uplinks)", rows, _lag_headers(),
        extra={"cdf": cdf, "percentiles": percentiles})


# ----------------------------------------------------------------------
# Figure 2 — fanout sweep on dist1 (ms-691) and dist2 (uniform-691)
# ----------------------------------------------------------------------
def fig2_fanout_sweep(scale: Scale = None,
                      fanouts_dist1: Sequence[float] = (7, 15, 20, 25, 30),
                      fanouts_dist2: Sequence[float] = (7, 15, 20)) -> FigureResult:
    # Eight runs: default to the reduced sweep population unless the
    # caller pins a scale explicitly.
    if scale is None:
        from repro.experiments.scales import SWEEP
        scale = SWEEP if current_scale().name == "default" else current_scale()
    spec = spec_lag_delivery(0.99)
    cells = []
    labels = []
    for dist, fanouts in ((MS_691, fanouts_dist1), (UNIFORM_691, fanouts_dist2)):
        for fanout in fanouts:
            config = scenario_at(scale, protocol="standard", distribution=dist)
            config = config.with_(gossip=config.gossip.__class__(fanout=float(fanout)))
            cells.append((config, (spec,)))
            labels.append(f"f={int(fanout)} {'dist1' if dist is MS_691 else 'dist2'}")
    rows = []
    cdfs: Dict[str, Cdf] = {}
    for label, summary in zip(labels, grid_summaries(cells)):
        cdf = Cdf(summary[spec.name])
        cdfs[label] = cdf
        rows.append(cdf_row(label, cdf, LAG_GRID))
    return FigureResult(
        "Fig 2", "fanout sweep under constrained heterogeneous uplinks "
        "(dist1 = ms-691, dist2 = uniform-691; same 691 kbps average)",
        rows, _lag_headers(), extra={"cdfs": cdfs})


# ----------------------------------------------------------------------
# Figure 3 — HEAP on dist1
# ----------------------------------------------------------------------
def fig3_heap_dist1(scale: Scale = None) -> FigureResult:
    scale = scale or current_scale()
    spec = spec_lag_delivery(0.99)
    heap, std = grid_summaries([
        (scenario_at(scale, protocol="heap", distribution=MS_691), (spec,)),
        (scenario_at(scale, protocol="standard", distribution=MS_691), (spec,)),
    ])
    cdf = Cdf(heap[spec.name])
    std_cdf = Cdf(std[spec.name])
    rows = [cdf_row("HEAP avg f=7, dist1, 99% delivery", cdf, LAG_GRID),
            cdf_row("standard f=7, dist1 (Fig 2 reference)", std_cdf, LAG_GRID)]
    percentiles = {q: cdf.percentile(q) for q in (0.5, 0.75, 0.9)}
    return FigureResult(
        "Fig 3", "HEAP on the skewed dist1: lag CDF at 99% delivery",
        rows, _lag_headers(), extra={"cdf": cdf, "percentiles": percentiles})


# ----------------------------------------------------------------------
# Figure 4 — bandwidth usage by class
# ----------------------------------------------------------------------
def fig4_bandwidth_usage(scale: Scale = None) -> FigureResult:
    scale = scale or current_scale()
    spec = spec_utilization_by_class()
    panels = [(dist, sub, protocol)
              for dist, sub in ((REF_691, "4a"), (MS_691, "4b"))
              for protocol in ("standard", "heap")]
    cells = [(scenario_at(scale, protocol=protocol, distribution=dist), (spec,))
             for dist, sub, protocol in panels]
    rows = []
    usage: Dict[Tuple[str, str], Dict[str, float]] = {}
    for (dist, sub, protocol), summary in zip(panels, grid_summaries(cells)):
        util = summary[spec.name]
        usage[(sub, protocol)] = util
        for label, value in util.items():
            rows.append([sub, dist.name, protocol, label,
                         format_percent(value)])
    return FigureResult(
        "Fig 4", "average bandwidth usage by bandwidth class",
        rows, ["panel", "distribution", "protocol", "class", "usage"],
        extra={"usage": usage})


# ----------------------------------------------------------------------
# Figures 5 and 6 — jitter-free window percentage by class (10 s lag)
# ----------------------------------------------------------------------
def _quality_cells(dist, scale: Scale, lag: float):
    """(cells, spec) for one distribution's standard-vs-heap comparison."""
    spec = spec_jitter_free_fraction_by_class(lag)
    cells = [(scenario_at(scale, protocol=protocol, distribution=dist), (spec,))
             for protocol in ("standard", "heap")]
    return cells, spec


def _quality_rows(dist, summaries, spec):
    rows = []
    data = {}
    for protocol, summary in zip(("standard", "heap"), summaries):
        fractions = summary[spec.name]
        data[protocol] = fractions
        for label, value in fractions.items():
            rows.append([dist.name, protocol, label, format_percent(value)])
    return rows, data


def fig5_quality_ref691(scale: Scale = None, lag: float = 10.0) -> FigureResult:
    scale = scale or current_scale()
    cells, spec = _quality_cells(REF_691, scale, lag)
    rows, data = _quality_rows(REF_691, grid_summaries(cells), spec)
    return FigureResult(
        "Fig 5", f"jitter-free percentage of the stream by class (ref-691, "
        f"{lag:.0f}s lag)", rows,
        ["distribution", "protocol", "class", "jitter-free windows"],
        extra={"data": data})


def fig6_quality_classes(scale: Scale = None, lag: float = 10.0) -> FigureResult:
    scale = scale or current_scale()
    cells_a, spec = _quality_cells(MS_691, scale, lag)
    cells_b, _ = _quality_cells(REF_724, scale, lag)
    summaries = grid_summaries(cells_a + cells_b)
    rows_a, data_a = _quality_rows(MS_691, summaries[:2], spec)
    rows_b, data_b = _quality_rows(REF_724, summaries[2:], spec)
    return FigureResult(
        "Fig 6", f"jitter-free percentage by class (6a: ms-691, 6b: ref-724; "
        f"{lag:.0f}s lag)", rows_a + rows_b,
        ["distribution", "protocol", "class", "jitter-free windows"],
        extra={"ms-691": data_a, "ref-724": data_b})


# ----------------------------------------------------------------------
# Figure 7 — CDF of experienced jitter (ref-691)
# ----------------------------------------------------------------------
def fig7_jitter_cdf(scale: Scale = None, lag: float = 10.0) -> FigureResult:
    scale = scale or current_scale()
    lag_spec = spec_jitter_values(lag)
    offline_spec = spec_jitter_values(OFFLINE)
    cells = [(scenario_at(scale, protocol=protocol, distribution=REF_691),
              (lag_spec, offline_spec))
             for protocol in ("standard", "heap")]
    rows = []
    cdfs = {}
    for protocol, summary in zip(("standard", "heap"), grid_summaries(cells)):
        for mode, spec in ((f"{lag:.0f}s lag", lag_spec),
                           ("offline", offline_spec)):
            cdf = Cdf(summary[spec.name])
            label = f"{protocol} - {mode}"
            cdfs[label] = cdf
            rows.append(cdf_row(label, cdf, JITTER_GRID))
    headers = ["series"] + [f"<={int(x)}% jitter" for x in JITTER_GRID]
    return FigureResult(
        "Fig 7", "cumulative distribution of nodes vs experienced jitter "
        "(ref-691)", rows, headers, extra={"cdfs": cdfs})


# ----------------------------------------------------------------------
# Figure 8 — average lag for a jitter-free stream by class
# ----------------------------------------------------------------------
def fig8_lag_by_class(scale: Scale = None) -> FigureResult:
    scale = scale or current_scale()
    spec = spec_mean_lag_by_class()
    panels = [(dist, sub, protocol)
              for dist, sub in ((REF_691, "8a"), (MS_691, "8b"))
              for protocol in ("standard", "heap")]
    cells = [(scenario_at(scale, protocol=protocol, distribution=dist), (spec,))
             for dist, sub, protocol in panels]
    rows = []
    data = {}
    for (dist, sub, protocol), summary in zip(panels, grid_summaries(cells)):
        means = summary[spec.name]
        data[(sub, protocol)] = means
        for label, value in means.items():
            rows.append([sub, dist.name, protocol, label,
                         format_seconds(value)])
    return FigureResult(
        "Fig 8", "average stream lag to obtain a jitter-free stream, by class",
        rows, ["panel", "distribution", "protocol", "class", "mean lag"],
        extra={"data": data})


# ----------------------------------------------------------------------
# Figure 9 — lag CDFs, no-jitter and max-1%-jitter
# ----------------------------------------------------------------------
def fig9_lag_cdf(scale: Scale = None) -> FigureResult:
    scale = scale or current_scale()
    free_spec = spec_lag_jitter_free()
    jitter_spec = spec_lag_max_jitter(0.01)
    panels = [(dist, sub, protocol)
              for dist, sub in ((REF_691, "9a"), (MS_691, "9b"))
              for protocol in ("standard", "heap")]
    cells = [(scenario_at(scale, protocol=protocol, distribution=dist),
              (free_spec, jitter_spec))
             for dist, sub, protocol in panels]
    rows = []
    cdfs = {}
    for (dist, sub, protocol), summary in zip(panels, grid_summaries(cells)):
        for mode, spec in (("no jitter", free_spec),
                           ("max 1% jitter", jitter_spec)):
            cdf = Cdf(summary[spec.name])
            label = f"{sub} {protocol} - {mode}"
            cdfs[label] = cdf
            rows.append(cdf_row(label, cdf, LAG_GRID))
    return FigureResult(
        "Fig 9", "cumulative distribution of nodes vs stream lag "
        "(9a: ref-691, 9b: ms-691)", rows, _lag_headers(), extra={"cdfs": cdfs})


# ----------------------------------------------------------------------
# Figure 10 — catastrophic failures
# ----------------------------------------------------------------------
def fig10_churn(scale: Scale = None, fraction: float = 0.2,
                failure_time: float = None) -> FigureResult:
    """One churn panel (10a: fraction=0.2, 10b: fraction=0.5).

    The failure fires at 1/3 of the stream (t=60 s of 180 s in the paper),
    scaled to the configured duration unless ``failure_time`` is given.
    """
    scale = scale or current_scale()
    # Churn needs stream both well before and well after the failure
    # (detection alone takes ~10 s), so enforce a minimum duration.
    duration = max(scale.duration, 45.0)
    base = scenario_at(scale, protocol="heap")
    at_time = (failure_time if failure_time is not None
               else base.stream_start + duration / 3.0)

    # One run per protocol computes every lag series that protocol's
    # curves need (the two standard-gossip lags share a run: the series
    # are pure reductions of the same deterministic receiver logs).
    wanted = (("heap", 12.0), ("standard", 20.0), ("standard", 30.0))
    specs_by_protocol: Dict[str, List] = {}
    for protocol, lag in wanted:
        specs_by_protocol.setdefault(protocol, []).append(
            spec_window_delivery(lag))
    cells = []
    for protocol, specs in specs_by_protocol.items():
        config = scenario_at(
            scale, protocol=protocol, distribution=REF_691, duration=duration,
            churn=CatastrophicFailure(fraction=fraction, at_time=at_time))
        cells.append((config, tuple(specs)))
    by_protocol = dict(zip(specs_by_protocol, grid_summaries(cells)))

    rows = []
    series_by_label = {}
    for protocol, lag in wanted:
        series = by_protocol[protocol][spec_window_delivery(lag).name]
        label = f"{protocol} - {lag:.0f}s lag"
        series_by_label[label] = series
        # Sample the series into before / around / after the failure.
        before = [f for _, t, f in series if t < at_time - 5]
        around = [f for _, t, f in series if at_time - 5 <= t <= at_time + 15]
        after = [f for _, t, f in series if t > at_time + 15]
        def _avg(vals):
            return format_percent(sum(vals) / len(vals)) if vals else "n/a"
        rows.append([label, _avg(before), _avg(around), _avg(after)])
    return FigureResult(
        f"Fig 10 ({fraction:.0%} crash)",
        f"percentage of nodes decoding each window; {fraction:.0%} of nodes "
        f"crash at t={at_time:.0f}s (ref-691)",
        rows, ["series", "before failure", "during failure", "after failure"],
        extra={"series": series_by_label, "failure_time": at_time})
