"""Experiment scales and the scenario cache.

The paper runs ~270 PlanetLab nodes for minutes; pure-Python simulation
of that takes minutes of wall clock per run, so the benches default to a
reduced scale that preserves every qualitative behaviour (the CSR, class
fractions, fanout and timing parameters are unchanged — only population
and stream length shrink).  Set ``REPRO_SCALE=full`` (or ``REPRO_FULL=1``)
to reproduce at paper scale, or ``REPRO_SCALE=quick`` for smoke runs.

``cached_run`` memoizes scenario results within the process so figures
sharing a run (e.g. Figure 4's two distributions) pay for it once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

from typing import Optional

from repro.experiments.runner import ExperimentResult, run_scenario
from repro.workloads.scenario import ScenarioConfig, scenario_key


@dataclass(frozen=True)
class Scale:
    """Population and stream length for one experiment tier."""

    name: str
    n_nodes: int
    duration: float
    drain: float


#: Smoke scale: tiny population, everything delivers — tests use this to
#: exercise the harness, not to reproduce numbers.
QUICK = Scale("quick", 50, 10.0, 20.0)
#: Default bench scale: the paper's full population (the congestion
#: behaviour is population-driven) over a shortened stream — 45 s is the
#: shortest stream at which standard gossip's congestion collapse on
#: ms-691 (Table 3's 0% row) fully develops.
DEFAULT = Scale("default", 270, 45.0, 60.0)
#: Paper scale: 270 nodes, 3 minutes of stream.
FULL = Scale("full", 270, 180.0, 90.0)
#: Reduced population for wide parameter sweeps (Figure 2's 8 runs).
SWEEP = Scale("sweep", 150, 25.0, 50.0)

_SCALES = {s.name: s for s in (QUICK, DEFAULT, FULL, SWEEP)}


def current_scale() -> Scale:
    """The scale selected through the environment (default: ``default``)."""
    if os.environ.get("REPRO_FULL") == "1":
        return FULL
    name = os.environ.get("REPRO_SCALE", "default").lower()
    try:
        return _SCALES[name]
    except KeyError:
        known = ", ".join(sorted(_SCALES))
        raise ValueError(f"unknown REPRO_SCALE {name!r}; known: {known}") from None


def scenario_at(scale: Scale, **overrides) -> ScenarioConfig:
    """A ScenarioConfig at the given scale, with overrides applied."""
    base = dict(n_nodes=scale.n_nodes, duration=scale.duration,
                drain=scale.drain, seed=42)
    base.update(overrides)
    return ScenarioConfig(**base)


_CACHE: Dict[str, ExperimentResult] = {}

#: The cache key is the shared scenario value-identity — the same key
#: the grid engine's summary cache and checkpoint fingerprints use, so
#: "already computed" means the same thing in-process and in-worker.
_cache_key = scenario_key


def cached_run(config: ScenarioConfig) -> ExperimentResult:
    """Run (or reuse) the scenario.  Results are cached per process.

    Churn objects carry per-run state (the victim list), so scenarios
    with churn are never cached.
    """
    if config.churn is not None:
        return run_scenario(config)
    key = _cache_key(config)
    result = _CACHE.get(key)
    if result is None:
        result = run_scenario(config)
        _CACHE[key] = result
    return result


def cached_result(config: ScenarioConfig) -> Optional[ExperimentResult]:
    """The already-computed result for ``config``, if this process has
    one (never a fresh run).  The grid pipeline uses this to compute a
    missing summary from an in-process result instead of resubmitting
    the scenario to a worker."""
    if config.churn is not None:
        return None
    return _CACHE.get(_cache_key(config))


def clear_cache() -> None:
    """Drop cached results *and* the grid pipeline's summary cache (the
    two must stay coherent: a summary without its run is fine, but tests
    that count runs need both gone)."""
    _CACHE.clear()
    from repro.experiments import gridrun

    gridrun.clear_summary_cache()
