"""Multi-seed experiment aggregation.

Single-run numbers from a randomized protocol carry run-to-run noise;
a credible comparison reports mean and dispersion across seeds.  This
module runs one scenario under several seeds and aggregates arbitrary
scalar metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.stats import mean, stdev
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.workloads.scenario import ScenarioConfig

#: A metric maps a finished run to one scalar.
Metric = Callable[[ExperimentResult], float]


@dataclass
class AggregatedMetric:
    """Mean and dispersion of one metric across seeds."""

    name: str
    values: List[float]

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def stdev(self) -> float:
        return stdev(self.values)

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def summary(self) -> str:
        return (f"{self.name}: {self.mean:.3f} +- {self.stdev:.3f} "
                f"[{self.min:.3f}, {self.max:.3f}] over {len(self.values)} seeds")


def run_seeds(config: ScenarioConfig, metrics: Dict[str, Metric],
              seeds: Sequence[int]) -> Dict[str, AggregatedMetric]:
    """Run ``config`` once per seed and aggregate each metric.

    The churn object (if any) carries per-run state, so scenarios with
    churn are rejected here — copy the config per seed yourself if you
    need multi-seed churn studies.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if config.churn is not None:
        raise ValueError("multi-seed runs do not support shared churn state")
    collected: Dict[str, List[float]] = {name: [] for name in metrics}
    for seed in seeds:
        result = run_scenario(config.with_(seed=seed))
        for name, metric in metrics.items():
            collected[name].append(metric(result))
    return {name: AggregatedMetric(name, values)
            for name, values in collected.items()}


# ----------------------------------------------------------------------
# ready-made metrics
# ----------------------------------------------------------------------
def metric_mean_jitter_free_lag(result: ExperimentResult) -> float:
    from repro.metrics.lag import per_node_lag_jitter_free
    return mean(per_node_lag_jitter_free(result).values())


def metric_offline_delivery(result: ExperimentResult) -> float:
    total = result.total_packets
    return mean(result.log_of(node_id).delivery_ratio(total)
                for node_id in result.receiver_ids())


def metric_jitter_free_fraction(lag: float) -> Metric:
    def metric(result: ExperimentResult) -> float:
        from repro.metrics.jitter import jitter_free_fraction_by_class
        return mean(jitter_free_fraction_by_class(result, lag).values())
    return metric
