"""Multi-seed experiment aggregation.

Single-run numbers from a randomized protocol carry run-to-run noise;
a credible comparison reports mean and dispersion across seeds.  This
module runs one scenario under several seeds and aggregates arbitrary
scalar metrics.  The execution itself is delegated to
:mod:`repro.experiments.parallel` — pass ``jobs=N`` to fan the seeds out
over worker processes; the aggregates are bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.stats import mean, stdev
from repro.experiments.parallel import run_grid
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.workloads.scenario import ScenarioConfig

#: A metric maps a finished run to one scalar.
Metric = Callable[[ExperimentResult], float]


@dataclass
class AggregatedMetric:
    """Mean and dispersion of one metric across seeds."""

    name: str
    values: List[float]

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def stdev(self) -> float:
        return stdev(self.values)

    @property
    def min(self) -> float:
        # nan, not ValueError, when every seed of a scenario was
        # quarantined by fault supervision (values can then be empty).
        return min(self.values) if self.values else float("nan")

    @property
    def max(self) -> float:
        return max(self.values) if self.values else float("nan")

    def summary(self) -> str:
        return (f"{self.name}: {self.mean:.3f} +- {self.stdev:.3f} "
                f"[{self.min:.3f}, {self.max:.3f}] over {len(self.values)} seeds")


def run_seeds(config: ScenarioConfig, metrics: Dict[str, Metric],
              seeds: Sequence[int],
              jobs: int = 1,
              checkpoint: Optional[str] = None,
              resume: bool = False) -> Dict[str, AggregatedMetric]:
    """Run ``config`` once per seed and aggregate each metric.

    ``jobs`` > 1 runs the seeds on a worker-process pool (metrics must
    then be picklable, i.e. module-level functions); the aggregated
    values are identical to a serial run, only faster.  ``checkpoint``
    persists each seed's record to JSONL as it finishes and
    ``resume=True`` reloads finished seeds after a kill.

    The churn object (if any) carries per-run state, so scenarios with
    churn are rejected here — use :func:`repro.experiments.parallel.run_grid`
    directly for multi-seed churn studies (it copies the config per run).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if config.churn is not None:
        raise ValueError("multi-seed runs do not support shared churn state")
    grid = run_grid(config, seeds, metrics, jobs=jobs,
                    checkpoint=checkpoint, resume=resume)
    return grid.aggregated_for(0)


# ----------------------------------------------------------------------
# ready-made metrics
# ----------------------------------------------------------------------
def metric_mean_jitter_free_lag(result: ExperimentResult) -> float:
    from repro.metrics.lag import per_node_lag_jitter_free
    return mean(per_node_lag_jitter_free(result).values())


def metric_offline_delivery(result: ExperimentResult) -> float:
    total = result.total_packets
    return mean(result.log_of(node_id).delivery_ratio(total)
                for node_id in result.receiver_ids())


def metric_jitter_free_fraction(lag: float) -> Metric:
    def metric(result: ExperimentResult) -> float:
        from repro.metrics.jitter import jitter_free_fraction_by_class
        return mean(jitter_free_fraction_by_class(result, lag).values())
    return metric


def metric_jitter_free_10s(result: ExperimentResult) -> float:
    """Jitter-free fraction at the paper's 10 s lag.  Module-level (and
    therefore picklable) for parallel sweeps."""
    from repro.metrics.jitter import jitter_free_fraction_by_class
    return mean(jitter_free_fraction_by_class(result, 10.0).values())


def metric_mean_utilization(result: ExperimentResult) -> float:
    """Mean receiver uplink utilization (Figure 4's quantity)."""
    return mean(result.uplink_utilization(node_id)
                for node_id in result.receiver_ids())
