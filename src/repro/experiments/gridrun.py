"""Cached, checkpointable grid execution for figures, tables and ablations.

This is the layer every figure/table/ablation entry point submits its
scenario cells through.  It adds three things on top of
:func:`repro.experiments.parallel.run_grid`:

* **a coherent summary cache** — each (scenario, summary-spec) pair is
  computed at most once per process, whether it was produced by a worker
  process, by the serial path, or derived from an already-cached full
  ``ExperimentResult``.  A figure that re-requests a cell another figure
  already paid for reuses the summary instead of recomputing it;
* **process-wide execution options** — ``configure(jobs=..., ...)`` sets
  the worker count / checkpoint / resume behaviour once (the CLI and the
  benchmark harness do this from ``--jobs`` / ``REPRO_JOBS``), so the
  ~18 figure/table entry points keep their simple ``fn(scale)``
  signatures;
* **resumable execution** — with a checkpoint configured, the grid's
  records append to JSONL as they land and a killed run resumes from the
  finished cells (each entry point makes exactly one grid call, so one
  artifact maps to one checkpoint file).

Determinism contract: summaries are pure functions of their run, runs
are pure functions of their config, and assembly happens in cell order —
so the output is byte-identical for any ``jobs`` value, with or without
an intervening kill/resume.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import (ProgressCallback, ProgressEvent,
                                        run_grid)
from repro.experiments.scales import cached_result, cached_run
from repro.metrics.summary import MetricSpec, standard_bundle
from repro.workloads.scenario import ScenarioConfig, scenario_key

#: One unit of figure work: a scenario and the reductions it needs.
Cell = Tuple[ScenarioConfig, Sequence[MetricSpec]]


def default_jobs() -> int:
    """Worker-process count from the environment (``REPRO_JOBS=N``)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", 1)))
    except ValueError:
        return 1


@dataclass
class GridOptions:
    """Process-wide defaults for figure/table grid execution."""

    #: None -> ``REPRO_JOBS`` (or 1).
    jobs: Optional[int] = None
    #: JSONL checkpoint path for the next grid call (CLI ``--checkpoint``).
    checkpoint: Optional[str] = None
    #: Reload finished cells from the checkpoint (CLI ``--resume``).
    resume: bool = False
    #: Pin the pool start method (also forces the pool on 1-CPU hosts —
    #: the parity tests rely on that).
    start_method: Optional[str] = None
    #: Per-record progress callback (the CLI prints to stderr).
    progress: Optional[ProgressCallback] = None
    #: Housekeep managed checkpoints (CLI ``--checkpoint-dir``): GC
    #: stale/mismatched files on resume, delete spent ones on success.
    checkpoint_gc: bool = False
    #: Compute the predeclared standard spec bundle
    #: (:func:`repro.metrics.summary.standard_bundle`) alongside the
    #: requested specs whenever a cell runs, so later figures reuse
    #: cached summaries instead of re-running the cell at ``--jobs N``.
    bundle: bool = True
    #: Run every cell's scenario under the sharded execution model (CLI
    #: ``--shards N``): configs are switched to the order-independent
    #: ``latency_rng="per-pair"`` / ``loss_rng="per-pair"`` modes and,
    #: for N > 1, partitioned across N shard workers.  0 leaves cells
    #: untouched.  Summaries are
    #: identical for any N >= 1 of the same artifact — N only picks the
    #: intra-scenario parallelism — but differ from the default
    #: shared-stream mode, so sharded runs cache/checkpoint under their
    #: own scenario keys.
    shards: int = 0
    #: Override each cell's ``latency_floor`` when the sharded model is
    #: on (CLI ``--latency-floor``).  The floor doubles as the shard
    #: lookahead, so raising it cuts window barriers; None keeps each
    #: scenario's own value.
    latency_floor: Optional[float] = None
    #: Deterministic fault plan (``repro.faults.FaultPlan``) injected
    #: into the next grid call (CLI ``--faults``; chaos testing).
    faults: Optional[object] = None
    #: Pool supervision policy (``repro.faults.SupervisionPolicy``):
    #: cell retry budget, backoff, per-attempt timeout.  None uses the
    #: policy defaults.
    supervision: Optional[object] = None


_OPTIONS = GridOptions()


def configure(**overrides) -> GridOptions:
    """Update the process-wide grid options; unknown names raise."""
    for name, value in overrides.items():
        if not hasattr(_OPTIONS, name):
            raise TypeError(f"unknown grid option {name!r}")
        setattr(_OPTIONS, name, value)
    return _OPTIONS


def current_options() -> GridOptions:
    return _OPTIONS


#: (scenario key, spec name) -> computed summary value.
_SUMMARY_CACHE: Dict[Tuple[str, str], object] = {}


def clear_summary_cache() -> None:
    _SUMMARY_CACHE.clear()


def summary_cache_size() -> int:
    return len(_SUMMARY_CACHE)


def stderr_progress(event: ProgressEvent) -> None:
    """A ready-made progress printer (the CLI's default for figures)."""
    record = event.record
    print(f"\r[{event.done}/{event.total}] {record.scenario_name} "
          f"seed={record.seed} "
          f"({record.events_executed:,} events, {record.wall_time:.2f}s)",
          file=sys.stderr, end="" if event.done < event.total else "\n",
          flush=True)


def grid_summaries(cells: Sequence[Cell], *,
                   jobs: Optional[int] = None,
                   checkpoint: Optional[str] = None,
                   resume: Optional[bool] = None,
                   start_method: Optional[str] = None,
                   progress: Optional[ProgressCallback] = None,
                   bundle: Optional[bool] = None,
                   shards: Optional[int] = None,
                   ) -> List[Dict[str, object]]:
    """Compute every cell's summaries; one name->value dict per cell,
    in cell order.

    Distinct cells naming the same scenario are deduplicated into one
    run that computes the union of their specs.  Per-process caches are
    consulted first: a summary computed earlier (even by a different
    figure) is reused, and a scenario whose full result is still in
    ``cached_run``'s cache yields missing summaries without a re-run.
    Keyword arguments override the :func:`configure` defaults for this
    call only.

    Any cell that actually *runs* additionally computes the predeclared
    standard spec bundle (unless ``bundle=False``): the full summary set
    of the protocol×distribution figure matrix.  Workers ship summaries,
    not results, so without this a second figure at ``--jobs N`` would
    re-run every shared scenario just to reduce it differently; with it,
    the second figure is a pure cache hit.

    With a checkpoint, cache-based skipping is disabled for the *grid
    membership* (every unique scenario is part of the checkpointed grid,
    so the file's fingerprint never depends on what some earlier process
    happened to have cached) — the serial path still reuses cached full
    results through ``cached_run``, and finished cells restore from the
    checkpoint itself.
    """
    opts = _OPTIONS
    jobs = jobs if jobs is not None else (
        opts.jobs if opts.jobs is not None else default_jobs())
    checkpoint = checkpoint if checkpoint is not None else opts.checkpoint
    resume = resume if resume is not None else opts.resume
    start_method = start_method if start_method is not None else opts.start_method
    progress = progress if progress is not None else opts.progress
    bundle = bundle if bundle is not None else opts.bundle
    bundle_specs = standard_bundle() if bundle else ()
    shards = shards if shards is not None else opts.shards
    if shards:
        # Sharded execution model: per-pair latency and loss streams
        # (the order-independent modes sharding requires) and, for
        # N > 1, intra-scenario partitioning.  Applied before
        # deduplication so cache keys, checkpoints and runs all agree
        # on the scenario.
        overrides = {"shards": shards, "latency_rng": "per-pair",
                     "loss_rng": "per-pair"}
        if opts.latency_floor is not None:
            overrides["latency_floor"] = opts.latency_floor
        cells = [(config.with_(**overrides), specs)
                 for config, specs in cells]

    # Deduplicate cells into one (config, union-of-specs) per scenario.
    unique: Dict[str, Tuple[ScenarioConfig, Dict[str, MetricSpec]]] = {}
    keys: List[str] = []
    for config, specs in cells:
        key = scenario_key(config)
        keys.append(key)
        if key not in unique:
            unique[key] = (config, {})
        merged = unique[key][1]
        for spec in specs:
            merged.setdefault(spec.name, spec)

    # Decide what actually has to run.
    def with_bundle(specs: Dict[str, MetricSpec],
                    key: str) -> Tuple[MetricSpec, ...]:
        """The specs a running cell computes: requested + the standard
        bundle (uncached entries only on the cache path; checkpointed
        grids include the whole bundle so the fingerprint stays a pure
        function of the cells)."""
        extra = {spec.name: spec for spec in bundle_specs
                 if spec.name not in specs
                 and (checkpoint is not None
                      or (key, spec.name) not in _SUMMARY_CACHE)}
        return tuple(specs.values()) + tuple(extra.values())

    to_run: List[Tuple[str, ScenarioConfig, Tuple[MetricSpec, ...]]] = []
    for key, (config, merged) in unique.items():
        if checkpoint is None:
            missing = {name: spec for name, spec in merged.items()
                       if (key, name) not in _SUMMARY_CACHE}
            if not missing:
                continue
            result = cached_result(config)
            if result is not None:
                # The full result is already in-process: reducing it here
                # is far cheaper than resubmitting the scenario.
                for name, spec in missing.items():
                    _SUMMARY_CACHE[(key, name)] = spec.fn(result)
                continue
            to_run.append((key, config, with_bundle(missing, key)))
        else:
            # Checkpointed grids always cover every unique scenario so
            # their fingerprint is a pure function of the cells.
            to_run.append((key, config, with_bundle(merged, key)))

    if to_run:
        grid = run_grid([config for _, config, _ in to_run],
                        seeds=None, metrics={}, jobs=jobs,
                        progress=progress, start_method=start_method,
                        summaries=[specs for _, _, specs in to_run],
                        checkpoint=checkpoint, resume=resume,
                        checkpoint_gc=opts.checkpoint_gc,
                        run_fn=cached_run,
                        faults=opts.faults, supervision=opts.supervision)
        for (key, _, _), record in zip(to_run, grid.records):
            if record is None:  # quarantined by fault supervision
                continue
            for name, value in record.summaries.items():
                _SUMMARY_CACHE[(key, name)] = value

    return [{spec.name: _SUMMARY_CACHE[(key, spec.name)] for spec in specs}
            for key, (_, specs) in zip(keys, cells)]
