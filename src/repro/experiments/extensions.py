"""Extension experiments beyond the paper's headline evaluation.

These exercise the forward-looking pieces the paper sketches:

* **freeriders** (§5): quality impact of freeriding and the accuracy of
  the gossip audit, for both attack variants;
* **decentralized membership**: HEAP on Cyclon partial views instead of
  full membership — the paper's protocols only assume a uniform sampler;
* **capability discovery** (§2.2): slow-start advertised capabilities
  instead of configured ones;
* **size estimation**: the ``ln(n)+c`` fanout rule fed by the push-pull
  size estimator instead of a known n.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.analysis.stats import mean
from repro.experiments.runner import run_scenario
from repro.experiments.scales import Scale, cached_run, current_scale, scenario_at
from repro.experiments.tables import TableResult
from repro.freeriders.analysis import (
    convictions,
    detection_accuracy,
    honest_vs_freerider_contribution,
)
from repro.metrics.jitter import jitter_free_fraction_by_class
from repro.metrics.lag import per_node_lag_jitter_free
from repro.metrics.report import format_percent, format_seconds
from repro.workloads.distributions import MS_691, REF_691


def _mean_lag(result) -> float:
    return mean(per_node_lag_jitter_free(result).values())


def ext_freeriders(scale: Scale = None,
                   fractions: Sequence[float] = (0.0, 0.1, 0.3)) -> TableResult:
    """Freerider impact and detection, by fraction and mode."""
    from repro.adversary import AttackMix

    scale = scale or current_scale()
    rows = []
    for mode, param in (("nonserve", 0.2), ("underclaim", 0.1)):
        for fraction in fractions:
            if fraction == 0.0 and mode == "underclaim":
                continue  # identical to the nonserve fraction-0 row
            # AttackMix.single is the deprecated freerider_* triple's
            # exact replacement: same placement stream, same node
            # classes, bit-identical results.
            adversary = (AttackMix.single(mode, fraction, param)
                         if fraction > 0 else None)
            config = scenario_at(scale, protocol="heap", distribution=REF_691,
                                 adversary=adversary, audit=True)
            result = cached_run(config) if fraction == 0 else run_scenario(config)
            quality = jitter_free_fraction_by_class(result, 10.0)
            honest_quality = mean(quality.values())
            if fraction > 0:
                convicted = convictions(result)
                accuracy = detection_accuracy(result, convicted)
                gap = honest_vs_freerider_contribution(result)
                detection = (f"P={accuracy.precision:.2f} "
                             f"R={accuracy.recall:.2f}")
                contribution = f"{gap['freeriders']:.2f}/{gap['honest']:.2f}"
            else:
                detection = "-"
                contribution = "-"
            rows.append([mode, f"{fraction:.0%}",
                         format_percent(honest_quality),
                         format_seconds(_mean_lag(result)),
                         detection, contribution])
    return TableResult(
        "Extension: freeriders",
        "freeriding impact and gossip-audit accuracy (HEAP, ref-691; "
        "contribution column: freerider/honest served-to-consumed index)",
        rows, ["mode", "fraction", "jitter-free@10s", "mean lag",
               "detection", "contribution"])


def ext_membership(scale: Scale = None) -> TableResult:
    """Full membership vs Cyclon partial views."""
    scale = scale or current_scale()
    rows = []
    for membership in ("directory", "cyclon"):
        for protocol in ("standard", "heap"):
            result = cached_run(scenario_at(scale, protocol=protocol,
                                            distribution=REF_691,
                                            membership=membership))
            lags = per_node_lag_jitter_free(result)
            import math
            reached = sum(1 for lag in lags.values() if math.isfinite(lag))
            rows.append([membership, protocol,
                         f"{reached}/{len(lags)}",
                         format_seconds(_mean_lag(result))])
    return TableResult(
        "Extension: membership",
        "full-membership directory vs Cyclon partial views (ref-691)",
        rows, ["membership", "protocol", "nodes reached (jitter-free)",
               "mean lag"])


def ext_capability_discovery(scale: Scale = None) -> TableResult:
    """Configured capabilities vs join-time slow-start discovery."""
    scale = scale or current_scale()
    rows = []
    for discovery in (False, True):
        result = cached_run(scenario_at(scale, protocol="heap",
                                        distribution=MS_691,
                                        capability_discovery=discovery))
        quality = jitter_free_fraction_by_class(result, 10.0)
        # How close did advertised capabilities get to the truth by the end?
        gaps = []
        for node_id in result.receiver_ids():
            node = result.nodes[node_id]
            gaps.append(node.capability_bps / result.capacity_of(node_id))
        rows.append(["discovery" if discovery else "configured",
                     format_percent(mean(quality.values())),
                     format_seconds(_mean_lag(result)),
                     f"{mean(gaps):.2f}"])
    return TableResult(
        "Extension: capability discovery",
        "slow-start capability discovery vs configured capabilities "
        "(HEAP, ms-691; last column: advertised/true capability at end)",
        rows, ["capabilities", "jitter-free@10s", "mean lag",
               "advertised/true"])


def ext_size_estimation(populations: Sequence[int] = (30, 80, 200),
                        seed: int = 17) -> TableResult:
    """Accuracy of the push-pull size estimator across populations."""
    from repro.core.size_estimation import SizeEstimator
    from repro.membership.directory import MembershipDirectory
    from repro.net.latency import ConstantLatency
    from repro.net.network import Network
    from repro.sim.engine import Simulator

    rows = []
    for n in populations:
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.02))
        directory = MembershipDirectory(sim, random.Random(seed),
                                        mean_detection_delay=0.0)
        directory.register_all(range(n))
        estimators = []
        for node_id in range(n):
            estimator = SizeEstimator(sim, net, node_id,
                                      directory.view_of(node_id),
                                      random.Random(seed * 271 + node_id),
                                      is_leader=(node_id == 0),
                                      rounds_per_epoch=40)
            # The estimator is an endpoint itself: the network captures
            # its kind-id dispatch table directly.
            net.attach(node_id, estimator, 10e6)
            estimators.append(estimator)
        for estimator in estimators:
            estimator.start()
        sim.run(until=30.0)
        estimates = [e.estimate() for e in estimators
                     if e.estimate() is not None]
        fanouts = [e.fanout_for_estimate() for e in estimators]
        rows.append([str(n),
                     f"{mean(estimates):.1f}" if estimates else "n/a",
                     format_percent(100.0 * mean(
                         abs(est - n) / n for est in estimates))
                     if estimates else "n/a",
                     f"{mean(fanouts):.2f}"])
    return TableResult(
        "Extension: size estimation",
        "push-pull averaging size estimator: mean estimate, error and the "
        "ln(n)+c fanout it implies",
        rows, ["true n", "mean estimate", "mean error", "implied fanout"])
