"""Per-table experiment definitions (Tables 1-3 of the paper).

Tables 2 and 3 submit their scenario cells through the parallel grid
pipeline (:func:`repro.experiments.gridrun.grid_summaries`) — one grid
call per table, in-worker per-class reductions, byte-identical for any
``--jobs`` value, resumable from a JSONL checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.gridrun import grid_summaries
from repro.experiments.scales import Scale, current_scale, scenario_at
from repro.metrics.jitter import spec_mean_jittered_delivery_by_class
from repro.metrics.lag import spec_jitter_free_pct_by_class
from repro.metrics.report import ascii_table, format_percent
from repro.workloads.distributions import KBPS, MS_691, REF_691, REF_724


@dataclass
class TableResult:
    table: str
    description: str
    rows: List[Sequence[str]]
    headers: Sequence[str]
    extra: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        title = f"[{self.table}] {self.description}"
        return ascii_table(self.headers, self.rows, title=title)


def table1_distributions(stream_rate_bps: float = 600 * KBPS) -> TableResult:
    """Table 1: the three reference distributions and their CSR."""
    rows = []
    for dist in (REF_691, REF_724, MS_691):
        fractions = " / ".join(
            f"{cls.fraction:.2f}@{cls.label}" for cls in dist.classes)
        rows.append([dist.name, f"{dist.csr(stream_rate_bps):.2f}",
                     f"{dist.average_bps() / KBPS:.1f} kbps", fractions])
    return TableResult(
        "Table 1", "upload capability distributions",
        rows, ["name", "CSR", "average", "class fractions"])


#: Evaluation lag per distribution: the paper uses 10 s for the reference
#: distributions and 20 s for the skewed ms-691 in Table 3.
TABLE_LAGS = {"ref-691": 10.0, "ref-724": 10.0, "ms-691": 20.0}

#: (distribution, protocol) matrix shared by Tables 2 and 3 — identical
#: cells, different reductions, so one table's runs serve the other
#: through the grid pipeline's caches.
_TABLE_MATRIX = [(dist, protocol)
                 for dist in (REF_691, REF_724, MS_691)
                 for protocol in ("standard", "heap")]


def _table_cells(scale: Scale, spec_for):
    """One cell per matrix entry; ``spec_for(lag)`` builds its spec."""
    cells = []
    specs = []
    for dist, protocol in _TABLE_MATRIX:
        spec = spec_for(TABLE_LAGS[dist.name])
        specs.append(spec)
        cells.append((scenario_at(scale, protocol=protocol,
                                  distribution=dist), (spec,)))
    return cells, specs


def table2_jittered_delivery(scale: Scale = None) -> TableResult:
    """Table 2: average delivery rate inside windows that cannot be decoded."""
    scale = scale or current_scale()
    cells, specs = _table_cells(scale, spec_mean_jittered_delivery_by_class)
    rows = []
    data = {}
    for (dist, protocol), spec, summary in zip(_TABLE_MATRIX, specs,
                                               grid_summaries(cells)):
        ratios = summary[spec.name]
        data[(dist.name, protocol)] = ratios
        for label, value in ratios.items():
            rows.append([dist.name, protocol, label, format_percent(value)])
    return TableResult(
        "Table 2", "average delivery rate in jittered windows "
        "(100% = the class had no jittered windows)",
        rows, ["distribution", "protocol", "class", "delivery in jittered"],
        extra={"data": data})


def table3_jitter_free_nodes(scale: Scale = None) -> TableResult:
    """Table 3: % of nodes receiving a fully jitter-free stream, by class."""
    scale = scale or current_scale()
    cells, specs = _table_cells(scale, spec_jitter_free_pct_by_class)
    rows = []
    data = {}
    for (dist, protocol), spec, summary in zip(_TABLE_MATRIX, specs,
                                               grid_summaries(cells)):
        lag = TABLE_LAGS[dist.name]
        percentages = summary[spec.name]
        data[(dist.name, protocol)] = percentages
        for label, value in percentages.items():
            rows.append([f"{dist.name} ({lag:.0f}s lag)", protocol, label,
                         format_percent(value)])
    return TableResult(
        "Table 3", "percentage of nodes receiving a jitter-free stream",
        rows, ["distribution", "protocol", "class", "% jitter-free nodes"],
        extra={"data": data})
