"""repro — a reproduction of "Heterogeneous Gossip" (HEAP, Middleware 2009).

A production-quality discrete-event implementation of HEAP, the
heterogeneity-aware gossip streaming protocol of Frey et al., together
with every substrate its evaluation needs: the event-driven network
simulator with throttled uplinks, membership with delayed failure
detection, the FEC-windowed stream model, the homogeneous-gossip and
static-tree baselines, the paper's workloads, and a benchmark harness
regenerating every figure and table of the paper's evaluation section.

Quickstart::

    from repro import ScenarioConfig, run_scenario
    from repro.workloads import MS_691

    result = run_scenario(ScenarioConfig(
        protocol="heap", n_nodes=80, duration=20.0, distribution=MS_691))
    print(result.analyzer().jitter_free_fraction(
        result.log_of(1), result.windows(), lag=10.0))

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core import GossipConfig, HeapGossipNode, StandardGossipNode
from repro.experiments import ExperimentResult, run_scenario
from repro.streaming import StreamConfig
from repro.workloads import ScenarioConfig

__version__ = "1.0.0"

__all__ = [
    "ExperimentResult",
    "GossipConfig",
    "HeapGossipNode",
    "ScenarioConfig",
    "StandardGossipNode",
    "StreamConfig",
    "__version__",
    "run_scenario",
]
