"""In-worker metric summaries: the data-locality layer of the grid engine.

Shipping a whole ``ExperimentResult`` (every receiver log, every node
object) back from a worker process would cost more than the run itself
at paper scale.  Instead, each figure/table declares *what it actually
needs* from a run — a handful of scalars, the per-node lag values behind
a CDF, a per-class mapping, a per-window series — as :class:`MetricSpec`
values, and the worker reduces its result to exactly those before the
record crosses the process boundary.

Contracts every spec must honour:

* ``fn`` must be **picklable** (a module-level function, or a
  :func:`functools.partial` over one) so it travels to spawn/fork pools;
* the returned value must be **JSON-serializable** (numbers incl.
  inf/nan, strings, lists/tuples, string-keyed dicts) so grid runs can
  checkpoint records to JSONL and resume after a kill;
* the value must be a pure function of the run, so serial and parallel
  executions are byte-identical and cached summaries are coherent.

Spec constructors for the paper's metric families live next to the
metrics themselves (:mod:`repro.metrics.lag`, :mod:`repro.metrics.jitter`,
:mod:`repro.metrics.bandwidth`, :mod:`repro.metrics.windows`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import ExperimentResult

#: A summary reduces one finished run to a compact JSON-able value.
SummaryFn = Callable[["ExperimentResult"], object]


@dataclass(frozen=True)
class MetricSpec:
    """One named in-worker reduction of an ``ExperimentResult``.

    The ``name`` doubles as the cache/checkpoint identity of the
    reduction, so it must encode every parameter that changes the value
    (e.g. ``lag_delivery_0.99``, ``jitter_values_10``) — two specs with
    the same name are assumed interchangeable.
    """

    name: str
    fn: SummaryFn

    def __call__(self, result: "ExperimentResult") -> object:
        return self.fn(result)


def summarize(result: "ExperimentResult",
              specs: Iterable[MetricSpec]) -> Dict[str, object]:
    """Apply every spec to ``result``; name -> summary value, in order."""
    return {spec.name: spec.fn(result) for spec in specs}


def standard_bundle() -> Tuple[MetricSpec, ...]:
    """The predeclared spec bundle for the protocol×distribution matrix.

    Every reduction any headline figure/table derives from a plain
    (protocol, distribution) run: the three lag families, per-class
    means/utilization/quality, and the two jitter CDF sample sets.  The
    grid pipeline computes this bundle alongside whatever a figure
    explicitly requested whenever a cell actually *runs*, so at
    ``--jobs N`` — where workers ship summaries, not full results — a
    second figure touching the same scenario finds its reductions
    already cached instead of re-running the cell.

    Computing a summary costs milliseconds against the seconds of the
    run it summarizes, so over-computing by this fixed set is the cheap
    side of the trade in every realistic grid.

    Constructors are imported lazily: the metric modules import
    :class:`MetricSpec` from here at module load.
    """
    from repro.metrics.bandwidth import spec_utilization_by_class
    from repro.metrics.jitter import (spec_jitter_free_fraction_by_class,
                                      spec_jitter_values)
    from repro.metrics.lag import (spec_lag_delivery, spec_lag_jitter_free,
                                   spec_lag_max_jitter,
                                   spec_mean_lag_by_class)
    from repro.streaming.player import OFFLINE

    return (
        spec_lag_delivery(0.99),
        spec_lag_jitter_free(),
        spec_lag_max_jitter(0.01),
        spec_mean_lag_by_class(),
        spec_utilization_by_class(),
        spec_jitter_free_fraction_by_class(10.0),
        spec_jitter_values(10.0),
        spec_jitter_values(OFFLINE),
    )
