"""CSV/JSONL export of figure/table data.

A real deployment of this reproduction wants to plot with external
tooling; these helpers turn the harness's result objects into plain CSV
files: one for tabular rows (figures 4-6, 8, tables) and one for curve
series (CDFs and the per-window churn series).  The JSONL helpers back
the grid engine's resumable checkpoints: one JSON object per line,
appended incrementally, read back tolerantly (a run killed mid-write
leaves a truncated last line, which must not poison the resume).
"""

from __future__ import annotations

import csv
import json
import math
import os
import warnings
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.cdf import Cdf


def jsonl_line(obj: object) -> str:
    """One compact JSON line (no trailing newline).  ``allow_nan`` stays
    on: per-node lags are legitimately ``inf`` (nodes that never reach
    the target) and per-class values ``nan`` (empty classes)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=False)


def append_jsonl(fh, obj: object) -> None:
    """Write one object as a JSONL line, flush *and* fsync.

    A record is a durability promise the moment it lands (checkpoint
    resume counts on it), so each append is pushed through the OS cache:
    a crash — of the process or the host — loses at most the record in
    flight, never one that was already reported finished.  Sinks without
    a real file descriptor (StringIO in tests) get flush-only."""
    fh.write(jsonl_line(obj) + "\n")
    fh.flush()
    try:
        os.fsync(fh.fileno())
    except (AttributeError, OSError, ValueError):
        pass  # not a real file: flush is all there is


def read_jsonl(path: str, repair: bool = False) -> List[object]:
    """Read a JSONL file, tolerating a trailing partial line (the
    signature of a killed writer).  A corrupt line anywhere *else*
    raises — that file is damaged, not merely truncated.

    With ``repair=True`` a torn tail is also *truncated in place* (with
    a warning) so a subsequent appender continues from a clean
    line boundary.  Without the truncation, a resume that appends after
    a torn tail would glue its first fresh record onto the partial line,
    manufacturing a corrupt line in the *middle* of the file — poisoning
    every later resume of a checkpoint that was merely killed mid-write.
    """
    objects: List[object] = []
    with open(path, "r", encoding="utf-8", newline="") as fh:
        text = fh.read()
    lines = text.splitlines(keepends=True)
    good = 0  # characters of fully-parsed, newline-terminated prefix
    unterminated_valid = False  # final record parses but lacks its "\n"
    for lineno, line in enumerate(lines):
        last = lineno == len(lines) - 1
        stripped = line.strip()
        if stripped:
            try:
                obj = json.loads(stripped)
            except json.JSONDecodeError:
                if last:
                    break
                raise
            objects.append(obj)
            if last and not line.endswith("\n"):
                # Parses, but the newline never made it to disk: an
                # appender would still glue onto it.  Keep the record,
                # let the repair below terminate the line.
                unterminated_valid = True
                break
        good += len(line)
    if repair and good < len(text):
        if unterminated_valid:
            warnings.warn(f"{path}: final record was missing its newline "
                          f"(killed writer); terminating the line",
                          RuntimeWarning, stacklevel=2)
            with open(path, "a", encoding="utf-8") as fh:
                fh.write("\n")
        else:
            tail = text[good:]
            warnings.warn(f"{path}: dropping a torn trailing line "
                          f"({len(tail)} chars; killed writer)",
                          RuntimeWarning, stacklevel=2)
            with open(path, "r+", encoding="utf-8") as fh:
                fh.truncate(len(text[:good].encode("utf-8")))
    return objects


def write_rows_csv(path: str, headers: Sequence[str],
                   rows: Iterable[Sequence[object]]) -> int:
    """Write tabular rows; returns the number of data rows written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
            count += 1
    return count


def write_result_csv(path: str, result) -> int:
    """Write a FigureResult/TableResult's rows as CSV."""
    return write_rows_csv(path, result.headers, result.rows)


def write_grid_csv(path: str, grid) -> int:
    """Write a :class:`~repro.experiments.parallel.GridResult`'s records
    as long-format CSV for external plotting: one row per (scenario,
    seed) cell, with scenario identity, run counters and one column per
    metric.  Rows land in deterministic grid order, so the file is
    byte-identical for any ``--jobs`` value (``wall_time`` excepted —
    it's a measurement, flagged as such by its column name)."""
    headers = (["scenario_index", "scenario_name", "protocol", "n_nodes",
                "duration_s", "distribution", "seed_index", "seed",
                "events_executed", "sim_end_time"]
               + [f"metric:{name}" for name in grid.metric_names]
               + ["wall_time_s"])
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for record in grid.records:
            if record is None:  # cell quarantined by fault supervision
                continue
            config = grid.configs[record.scenario_index]
            writer.writerow(
                [record.scenario_index, record.scenario_name,
                 config.protocol, config.n_nodes, f"{config.duration:g}",
                 config.distribution.name, record.seed_index, record.seed,
                 record.events_executed, f"{record.sim_end_time:.6f}"]
                + [f"{record.metrics[name]:.9g}"
                   for name in grid.metric_names]
                + [f"{record.wall_time:.4f}"])
            count += 1
    return count


def write_cdf_csv(path: str, cdfs: Dict[str, Cdf], max_points: int = 500) -> int:
    """Write named CDFs as long-format (series, x, cumulative_fraction).

    Infinite samples are omitted from the points but still weigh the
    fractions, matching how the paper's saturating curves read.
    """
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "x", "cumulative_fraction"])
        for name, cdf in cdfs.items():
            for x, fraction in cdf.points(max_points):
                writer.writerow([name, f"{x:.6f}", f"{fraction:.6f}"])
                count += 1
    return count


def write_series_csv(path: str,
                     series: Dict[str, List[Tuple[int, float, float]]]) -> int:
    """Write Figure-10-style window series:
    (series, window_id, publish_time, percent_of_nodes)."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "window_id", "publish_time", "percent_nodes"])
        for name, points in series.items():
            for window_id, publish_time, percent in points:
                writer.writerow([name, window_id, f"{publish_time:.4f}",
                                 f"{percent:.4f}"])
                count += 1
    return count


def lag_grid_rows(cdfs: Dict[str, Cdf],
                  grid: Sequence[float]) -> List[List[str]]:
    """Sample named CDFs on a lag grid (wide format for spreadsheets)."""
    rows = []
    for name, cdf in cdfs.items():
        row = [name]
        for x in grid:
            fraction = cdf.fraction_at(x)
            row.append("" if math.isnan(fraction) else f"{fraction:.4f}")
        rows.append(row)
    return rows
