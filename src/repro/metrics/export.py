"""CSV export of figure/table data.

A real deployment of this reproduction wants to plot with external
tooling; these helpers turn the harness's result objects into plain CSV
files: one for tabular rows (figures 4-6, 8, tables) and one for curve
series (CDFs and the per-window churn series).
"""

from __future__ import annotations

import csv
import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.cdf import Cdf


def write_rows_csv(path: str, headers: Sequence[str],
                   rows: Iterable[Sequence[object]]) -> int:
    """Write tabular rows; returns the number of data rows written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
            count += 1
    return count


def write_result_csv(path: str, result) -> int:
    """Write a FigureResult/TableResult's rows as CSV."""
    return write_rows_csv(path, result.headers, result.rows)


def write_cdf_csv(path: str, cdfs: Dict[str, Cdf], max_points: int = 500) -> int:
    """Write named CDFs as long-format (series, x, cumulative_fraction).

    Infinite samples are omitted from the points but still weigh the
    fractions, matching how the paper's saturating curves read.
    """
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "x", "cumulative_fraction"])
        for name, cdf in cdfs.items():
            for x, fraction in cdf.points(max_points):
                writer.writerow([name, f"{x:.6f}", f"{fraction:.6f}"])
                count += 1
    return count


def write_series_csv(path: str,
                     series: Dict[str, List[Tuple[int, float, float]]]) -> int:
    """Write Figure-10-style window series:
    (series, window_id, publish_time, percent_of_nodes)."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "window_id", "publish_time", "percent_nodes"])
        for name, points in series.items():
            for window_id, publish_time, percent in points:
                writer.writerow([name, window_id, f"{publish_time:.4f}",
                                 f"{percent:.4f}"])
                count += 1
    return count


def lag_grid_rows(cdfs: Dict[str, Cdf],
                  grid: Sequence[float]) -> List[List[str]]:
    """Sample named CDFs on a lag grid (wide format for spreadsheets)."""
    rows = []
    for name, cdf in cdfs.items():
        row = [name]
        for x in grid:
            fraction = cdf.fraction_at(x)
            row.append("" if math.isnan(fraction) else f"{fraction:.4f}")
        rows.append(row)
    return rows
