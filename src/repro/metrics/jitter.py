"""Stream-quality (jitter) metrics.

A window is *jittered* at lag L when fewer than 101 of its 110 packets
arrived within L of publication (Section 3.2).  These functions compute
the per-class jitter-free percentages of Figures 5/6, the per-node jitter
CDF of Figure 7 and the jittered-window delivery ratios of Table 2.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Dict, List

from repro.analysis.cdf import Cdf
from repro.analysis.stats import mean
from repro.experiments.runner import ExperimentResult
from repro.metrics.summary import MetricSpec
from repro.streaming.player import OFFLINE


def jitter_free_fraction_by_class(result: ExperimentResult,
                                  lag: float) -> Dict[str, float]:
    """class label -> mean % of jitter-free windows at ``lag``
    (Figures 5, 6; the paper uses lag = 10 s)."""
    analyzer = result.analyzer()
    windows = result.windows()
    fractions: Dict[str, float] = {}
    for label in result.class_labels():
        members = result.receivers_in_class(label)
        if not members:
            fractions[label] = math.nan
            continue
        per_node = [100.0 * analyzer.jitter_free_fraction(
            result.log_of(node_id), windows, lag) for node_id in members]
        fractions[label] = mean(per_node)
    return fractions


def jitter_values(result: ExperimentResult,
                  lag: float = OFFLINE) -> List[float]:
    """Per-node experienced jitter percentages at ``lag`` (worker-summary
    form of Figure 7's CDF sample)."""
    analyzer = result.analyzer()
    windows = result.windows()
    return [100.0 * analyzer.jitter_fraction(result.log_of(node_id), windows, lag)
            for node_id in result.receiver_ids()]


def jitter_cdf(result: ExperimentResult, lag: float = OFFLINE) -> Cdf:
    """CDF over nodes of the experienced jitter percentage at ``lag``
    (Figure 7; ``lag=OFFLINE`` is the paper's 'offline viewing')."""
    return Cdf(jitter_values(result, lag))


def mean_jittered_delivery_by_class(result: ExperimentResult,
                                    lag: float) -> Dict[str, float]:
    """class label -> average delivery ratio (%) inside jittered windows
    (Table 2).  Classes with no jittered windows report 100%."""
    analyzer = result.analyzer()
    windows = result.windows()
    ratios: Dict[str, float] = {}
    for label in result.class_labels():
        members = result.receivers_in_class(label)
        if not members:
            ratios[label] = math.nan
            continue
        per_node = [100.0 * analyzer.mean_jittered_delivery_ratio(
            result.log_of(node_id), windows, lag) for node_id in members]
        ratios[label] = mean(per_node)
    return ratios


# ----------------------------------------------------------------------
# in-worker summary specs (picklable, JSON-able; see repro.metrics.summary)
# ----------------------------------------------------------------------
def spec_jitter_values(lag: float = OFFLINE) -> MetricSpec:
    return MetricSpec(f"jitter_values_{lag:g}",
                      partial(jitter_values, lag=lag))


def spec_jitter_free_fraction_by_class(lag: float) -> MetricSpec:
    return MetricSpec(f"jitter_free_fraction_by_class_{lag:g}",
                      partial(jitter_free_fraction_by_class, lag=lag))


def spec_mean_jittered_delivery_by_class(lag: float) -> MetricSpec:
    return MetricSpec(f"mean_jittered_delivery_by_class_{lag:g}",
                      partial(mean_jittered_delivery_by_class, lag=lag))
