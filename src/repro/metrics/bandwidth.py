"""Bandwidth-usage metrics (Figure 4).

"Average bandwidth usage by bandwidth class": what fraction of its
advertised upload capability each class of nodes actually pushed through
its uplink during the stream.  Under standard gossip the poor classes
saturate (~90 %) while rich ones idle; under HEAP all classes settle at a
similar utilization — the signature of correct load adaptation.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.analysis.stats import mean
from repro.experiments.runner import ExperimentResult
from repro.metrics.summary import MetricSpec


def utilization_by_class(result: ExperimentResult) -> Dict[str, float]:
    """class label -> mean uplink utilization (%) over the stream."""
    usage: Dict[str, float] = {}
    for label in result.class_labels():
        members = result.receivers_in_class(label)
        if not members:
            usage[label] = math.nan
            continue
        usage[label] = mean(100.0 * result.uplink_utilization(node_id)
                            for node_id in members)
    return usage


def absolute_upload_by_class(result: ExperimentResult) -> Dict[str, float]:
    """class label -> mean upload rate in bps over the stream duration
    (the bar heights of Figure 4, before normalizing by capacity)."""
    duration = result.config.duration
    rates: Dict[str, float] = {}
    for label in result.class_labels():
        members = result.receivers_in_class(label)
        if not members:
            rates[label] = math.nan
            continue
        rates[label] = mean(
            result.net.uplink(node_id).bytes_sent * 8.0 / duration
            for node_id in members)
    return rates


# ----------------------------------------------------------------------
# in-worker summary specs (picklable, JSON-able; see repro.metrics.summary)
# ----------------------------------------------------------------------
def spec_utilization_by_class() -> MetricSpec:
    return MetricSpec("utilization_by_class", utilization_by_class)


def spec_absolute_upload_by_class() -> MetricSpec:
    return MetricSpec("absolute_upload_by_class", absolute_upload_by_class)
