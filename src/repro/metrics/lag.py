"""Stream-lag metrics.

Stream lag is "the difference between the time the stream is produced at
the source and the time it is viewed" (Section 3.2).  For each node we
compute the minimal lag that achieves a playback target (99 % delivery,
jitter-free, or at most X % jittered windows); CDFs of those per-node
lags are the paper's Figures 1, 2, 3 and 9, per-class means its Figure 8
and per-class percentages its Table 3.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Dict, List

from repro.analysis.cdf import Cdf
from repro.analysis.stats import mean
from repro.experiments.runner import ExperimentResult
from repro.metrics.summary import MetricSpec


def per_node_lag_jitter_free(result: ExperimentResult) -> Dict[int, float]:
    """node -> minimal lag for a fully jitter-free stream (inf if never)."""
    analyzer = result.analyzer()
    windows = result.windows()
    return {node_id: analyzer.min_lag_jitter_free(result.log_of(node_id), windows)
            for node_id in result.receiver_ids()}


def per_node_lag_max_jitter(result: ExperimentResult,
                            max_jitter: float) -> Dict[int, float]:
    """node -> minimal lag at which at most ``max_jitter`` of windows jitter."""
    analyzer = result.analyzer()
    windows = result.windows()
    return {node_id: analyzer.min_lag_max_jitter(result.log_of(node_id),
                                                 windows, max_jitter)
            for node_id in result.receiver_ids()}


def per_node_lag_delivery_ratio(result: ExperimentResult,
                                ratio: float = 0.99) -> Dict[int, float]:
    """node -> minimal lag to receive ``ratio`` of all packets on time
    (the '99% delivery' metric of Figures 1 and 2)."""
    analyzer = result.analyzer()
    total = result.total_packets
    return {node_id: analyzer.min_lag_delivery_ratio(result.log_of(node_id),
                                                     total, ratio)
            for node_id in result.receiver_ids()}


def lag_values_jitter_free(result: ExperimentResult) -> List[float]:
    """Per-node jitter-free lags as a plain list (worker-summary form)."""
    return list(per_node_lag_jitter_free(result).values())


def lag_values_max_jitter(result: ExperimentResult,
                          max_jitter: float) -> List[float]:
    return list(per_node_lag_max_jitter(result, max_jitter).values())


def lag_values_delivery_ratio(result: ExperimentResult,
                              ratio: float = 0.99) -> List[float]:
    return list(per_node_lag_delivery_ratio(result, ratio).values())


def lag_cdf_jitter_free(result: ExperimentResult) -> Cdf:
    return Cdf(lag_values_jitter_free(result))


def lag_cdf_max_jitter(result: ExperimentResult, max_jitter: float) -> Cdf:
    return Cdf(lag_values_max_jitter(result, max_jitter))


def lag_cdf_delivery_ratio(result: ExperimentResult, ratio: float = 0.99) -> Cdf:
    return Cdf(lag_values_delivery_ratio(result, ratio))


# ----------------------------------------------------------------------
# in-worker summary specs (picklable, JSON-able; see repro.metrics.summary)
# ----------------------------------------------------------------------
def spec_lag_jitter_free() -> MetricSpec:
    """Per-node jitter-free lag values (Figures 8/9's no-jitter curves)."""
    return MetricSpec("lag_jitter_free", lag_values_jitter_free)


def spec_lag_max_jitter(max_jitter: float) -> MetricSpec:
    return MetricSpec(f"lag_max_jitter_{max_jitter:g}",
                      partial(lag_values_max_jitter, max_jitter=max_jitter))


def spec_lag_delivery(ratio: float = 0.99) -> MetricSpec:
    return MetricSpec(f"lag_delivery_{ratio:g}",
                      partial(lag_values_delivery_ratio, ratio=ratio))


def spec_mean_lag_by_class() -> MetricSpec:
    return MetricSpec("mean_lag_by_class", mean_lag_by_class)


def spec_jitter_free_pct_by_class(lag: float) -> MetricSpec:
    return MetricSpec(f"jitter_free_pct_by_class_{lag:g}",
                      partial(jitter_free_node_percentage_by_class, lag=lag))


def mean_lag_by_class(result: ExperimentResult) -> Dict[str, float]:
    """class label -> mean (finite) jitter-free lag (Figure 8)."""
    lags = per_node_lag_jitter_free(result)
    return {label: mean(lags[node_id]
                        for node_id in result.receivers_in_class(label))
            for label in result.class_labels()}


def jitter_free_node_percentage_by_class(result: ExperimentResult,
                                         lag: float) -> Dict[str, float]:
    """class label -> % of the class's nodes with a fully jitter-free
    stream at ``lag`` (Table 3)."""
    lags = per_node_lag_jitter_free(result)
    percentages = {}
    for label in result.class_labels():
        members = result.receivers_in_class(label)
        if not members:
            percentages[label] = math.nan
            continue
        ok = sum(1 for node_id in members if lags[node_id] <= lag)
        percentages[label] = 100.0 * ok / len(members)
    return percentages
