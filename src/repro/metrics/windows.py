"""Per-window delivery over stream time (Figure 10, churn resilience).

For each encoded window, the percentage of nodes able to decode it
completely at a fixed lag.  The denominator is the *initial* receiver
population including eventual crash victims, matching the paper's plots
where the curve drops to ~80 % (resp. ~50 %) after the catastrophic
failure rather than re-normalizing to survivors.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from repro.experiments.runner import ExperimentResult
from repro.metrics.summary import MetricSpec


def window_delivery_over_time(result: ExperimentResult,
                              lag: float) -> List[Tuple[int, float, float]]:
    """[(window_id, window_publish_time, % of nodes decoding at ``lag``)].

    ``window_publish_time`` is when the window's first packet was
    published — the x-axis ("stream time") of Figure 10.
    """
    analyzer = result.analyzer()
    receivers = result.receiver_ids(include_crashed=True)
    per_window = result.config.stream.packets_per_window
    series: List[Tuple[int, float, float]] = []
    for window_id in result.windows():
        decoding = sum(
            1 for node_id in receivers
            if analyzer.window_playback(result.log_of(node_id),
                                        window_id, lag).decodable)
        publish_time = result.publish_times[window_id * per_window]
        series.append((window_id, publish_time,
                       100.0 * decoding / max(1, len(receivers))))
    return series


def spec_window_delivery(lag: float) -> MetricSpec:
    """In-worker summary of the per-window delivery series at ``lag``.

    The series checkpoints to JSONL as lists-of-lists; consumers must
    treat rows as sequences, not require tuples.
    """
    return MetricSpec(f"window_delivery_{lag:g}",
                      partial(window_delivery_over_time, lag=lag))
