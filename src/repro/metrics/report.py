"""ASCII rendering of experiment results.

The benchmark harnesses print the same rows/series the paper's figures
plot; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.analysis.cdf import Cdf


def format_percent(value: float, digits: int = 1) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    return f"{value:.{digits}f}%"


def format_seconds(value: float, digits: int = 1) -> str:
    if math.isinf(value):
        return "never"
    if math.isnan(value):
        return "n/a"
    return f"{value:.{digits}f}s"


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[str]],
                title: str = "") -> str:
    """Render a fixed-width table."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def cdf_row(label: str, cdf: Cdf, xs: Sequence[float],
            as_percent: bool = True) -> List[str]:
    """One table row sampling ``cdf`` at the given x values."""
    cells = [label]
    for x in xs:
        fraction = cdf.fraction_at(x)
        cells.append(format_percent(100.0 * fraction) if as_percent
                     else f"{fraction:.3f}")
    return cells
