"""Evaluation metrics over finished experiment runs.

Each module computes one family of the paper's measurements:

* :mod:`repro.metrics.lag` — stream-lag CDFs and per-class lag summaries
  (Figures 1, 2, 3, 8, 9; Table 3);
* :mod:`repro.metrics.jitter` — jitter-free window fractions and jittered
  delivery ratios (Figures 5, 6, 7; Table 2);
* :mod:`repro.metrics.bandwidth` — per-class uplink utilization (Figure 4);
* :mod:`repro.metrics.windows` — per-window delivery over stream time
  (Figure 10, the churn experiments);
* :mod:`repro.metrics.summary` — the :class:`~repro.metrics.summary.MetricSpec`
  layer: in-worker reductions of a run to the compact, JSON-able values a
  figure actually needs (what lets grid workers return summaries instead
  of whole results);
* :mod:`repro.metrics.report` — ASCII rendering of tables and CDF series.
"""

from repro.metrics.bandwidth import utilization_by_class
from repro.metrics.jitter import (
    jitter_cdf,
    jitter_free_fraction_by_class,
    mean_jittered_delivery_by_class,
)
from repro.metrics.lag import (
    jitter_free_node_percentage_by_class,
    lag_cdf_delivery_ratio,
    lag_cdf_jitter_free,
    lag_cdf_max_jitter,
    mean_lag_by_class,
    per_node_lag_delivery_ratio,
    per_node_lag_jitter_free,
    per_node_lag_max_jitter,
)
from repro.metrics.report import ascii_table, cdf_row, format_percent
from repro.metrics.summary import MetricSpec, summarize
from repro.metrics.windows import window_delivery_over_time

__all__ = [
    "MetricSpec",
    "summarize",
    "ascii_table",
    "cdf_row",
    "format_percent",
    "jitter_cdf",
    "jitter_free_fraction_by_class",
    "jitter_free_node_percentage_by_class",
    "lag_cdf_delivery_ratio",
    "lag_cdf_jitter_free",
    "lag_cdf_max_jitter",
    "mean_jittered_delivery_by_class",
    "mean_lag_by_class",
    "per_node_lag_delivery_ratio",
    "per_node_lag_jitter_free",
    "per_node_lag_max_jitter",
    "utilization_by_class",
    "window_delivery_over_time",
]
