"""Stream packet model and stream-level configuration.

Packet ids are dense global sequence numbers.  A packet belongs to window
``id // packets_per_window``; the first ``source_packets`` indices inside
a window carry stream data, the rest are FEC repair packets — this is
*systematic* coding, so source packets are useful on their own even when
the window cannot be fully decoded (the behaviour behind the paper's
"delivery ratio in jittered windows" metric, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of the encoded stream (defaults are the paper's)."""

    packet_size_bytes: int = 1316
    source_packets_per_window: int = 101
    fec_packets_per_window: int = 9
    effective_rate_bps: float = 600_000.0

    @property
    def packets_per_window(self) -> int:
        return self.source_packets_per_window + self.fec_packets_per_window

    @property
    def packet_interval(self) -> float:
        """Seconds between consecutive packet publications at the source."""
        return self.packet_size_bytes * 8.0 / self.effective_rate_bps

    @property
    def source_rate_bps(self) -> float:
        """Rate of useful (non-FEC) stream data; ~551 kbps at defaults."""
        return (self.effective_rate_bps * self.source_packets_per_window
                / self.packets_per_window)

    @property
    def window_duration(self) -> float:
        """Wall-clock seconds of stream covered by one window (~1.93 s)."""
        return self.packet_interval * self.packets_per_window

    def window_of(self, packet_id: int) -> int:
        return packet_id // self.packets_per_window

    def index_in_window(self, packet_id: int) -> int:
        return packet_id % self.packets_per_window

    def is_fec(self, packet_id: int) -> bool:
        return self.index_in_window(packet_id) >= self.source_packets_per_window

    def packets_for_duration(self, seconds: float) -> int:
        """Number of whole windows' worth of packets covering ``seconds``."""
        windows = max(1, round(seconds / self.window_duration))
        return windows * self.packets_per_window

    def validate(self) -> None:
        if self.packet_size_bytes <= 0:
            raise ValueError("packet size must be positive")
        if self.source_packets_per_window <= 0 or self.fec_packets_per_window < 0:
            raise ValueError("invalid window composition")
        if self.effective_rate_bps <= 0:
            raise ValueError("stream rate must be positive")


@dataclass(frozen=True)
class StreamPacket:
    """One published stream packet."""

    packet_id: int
    window_id: int
    publish_time: float
    is_fec: bool = False
    size_bytes: int = 1316

    def __post_init__(self):
        if self.packet_id < 0:
            raise ValueError("packet id must be non-negative")
