"""Video-streaming substrate.

Models the paper's streaming application layer:

* 1316-byte stream packets produced at a 600 kbps effective rate
  (551 kbps of source data + systematic FEC overhead);
* FEC windows of 101 source packets plus 9 repair packets — a window is
  decodable iff at least 101 of its 110 packets arrive
  (:mod:`repro.streaming.fec`);
* a :class:`~repro.streaming.source.StreamSource` that publishes packets
  into the dissemination protocol on a timer;
* per-node :class:`~repro.streaming.receiver.ReceiverLog` recording
  delivery times, and a :class:`~repro.streaming.player.PlaybackAnalyzer`
  that answers "what does the stream look like at lag L?" — the question
  behind every quality/lag figure in the paper.
"""

from repro.streaming.fec import FecCodec, WindowState
from repro.streaming.packets import StreamConfig, StreamPacket
from repro.streaming.player import PlaybackAnalyzer, WindowPlayback
from repro.streaming.receiver import ReceiverLog
from repro.streaming.source import StreamSource

__all__ = [
    "FecCodec",
    "PlaybackAnalyzer",
    "ReceiverLog",
    "StreamConfig",
    "StreamPacket",
    "StreamSource",
    "WindowPlayback",
    "WindowState",
]
