"""The stream source.

Publishes :class:`~repro.streaming.packets.StreamPacket` objects at the
configured effective rate into a publish callback — in experiments that
callback is the broadcaster node's ``publish`` (Algorithm 1), which
delivers locally and gossips the fresh id.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, Simulator
from repro.streaming.packets import StreamConfig, StreamPacket


class StreamSource:
    """Emits the encoded stream, one packet at a time."""

    __slots__ = ("_sim", "config", "_publish", "total_packets",
                 "packets_published", "_handle", "_stopped")

    def __init__(self, sim: Simulator, config: StreamConfig,
                 publish: Callable[[StreamPacket], None],
                 total_packets: Optional[int] = None):
        config.validate()
        self._sim = sim
        self.config = config
        self._publish = publish
        self.total_packets = total_packets
        self.packets_published = 0
        self._handle: Optional[EventHandle] = None
        self._stopped = False

    def start(self, delay: float = 0.0) -> None:
        if self._handle is not None or self._stopped:
            raise RuntimeError("source already started")
        self._handle = self._sim.schedule(delay, self._emit)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def finished(self) -> bool:
        """True once the configured number of packets has been published."""
        return (self.total_packets is not None
                and self.packets_published >= self.total_packets)

    def _emit(self) -> None:
        self._handle = None
        if self._stopped or self.finished:
            return
        packet_id = self.packets_published
        packet = StreamPacket(
            packet_id=packet_id,
            window_id=self.config.window_of(packet_id),
            publish_time=self._sim.now,
            is_fec=self.config.is_fec(packet_id),
            size_bytes=self.config.packet_size_bytes,
        )
        self.packets_published += 1
        self._publish(packet)
        if not self.finished and not self._stopped:
            self._handle = self._sim.schedule(self.config.packet_interval, self._emit)
