"""Playback analysis: what does a node's stream look like at lag L?

The paper's metrics (Section 3.2) are all functions of a *stream lag* L:
a packet is usable iff it was delivered no later than ``publish_time + L``;
a window is *jittered* at lag L iff fewer than 101 of its 110 packets are
usable.  This module answers those questions from a
:class:`~repro.streaming.receiver.ReceiverLog` plus the publish times,
including the inverse queries ("what is the minimal lag for a jitter-free
stream?") behind Figures 8 and 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.streaming.packets import StreamConfig
from repro.streaming.receiver import ReceiverLog

#: Lag value meaning "viewed offline, after the experiment" (Figure 7).
OFFLINE = math.inf


@dataclass
class WindowPlayback:
    """Decode state of one window at one lag."""

    window_id: int
    on_time_source: int
    on_time_fec: int
    needed: int
    source_per_window: int

    @property
    def on_time_total(self) -> int:
        return self.on_time_source + self.on_time_fec

    @property
    def decodable(self) -> bool:
        return self.on_time_total >= self.needed

    @property
    def jittered(self) -> bool:
        return not self.decodable

    @property
    def viewable_source_packets(self) -> int:
        if self.decodable:
            return self.source_per_window
        return self.on_time_source

    @property
    def delivery_ratio(self) -> float:
        return self.viewable_source_packets / self.source_per_window


class PlaybackAnalyzer:
    """Computes playback metrics for receiver logs.

    ``publish_time`` maps a packet id to the time the source published it
    (in experiments: ``publish_times.__getitem__`` over the recorded list).
    """

    def __init__(self, config: StreamConfig, publish_time: Callable[[int], float]):
        config.validate()
        self.config = config
        self._publish_time = publish_time

    # ------------------------------------------------------------------
    # forward queries: behaviour at a given lag
    # ------------------------------------------------------------------
    def window_playback(self, log: ReceiverLog, window_id: int, lag: float) -> WindowPlayback:
        config = self.config
        on_time_source = 0
        on_time_fec = 0
        start = window_id * config.packets_per_window
        for packet_id in range(start, start + config.packets_per_window):
            delivered = log.delivery_time(packet_id)
            if delivered is None:
                continue
            if delivered <= self._publish_time(packet_id) + lag:
                if config.is_fec(packet_id):
                    on_time_fec += 1
                else:
                    on_time_source += 1
        return WindowPlayback(
            window_id=window_id,
            on_time_source=on_time_source,
            on_time_fec=on_time_fec,
            needed=config.source_packets_per_window,
            source_per_window=config.source_packets_per_window,
        )

    def playback(self, log: ReceiverLog, windows: Sequence[int], lag: float) -> List[WindowPlayback]:
        return [self.window_playback(log, w, lag) for w in windows]

    def jitter_fraction(self, log: ReceiverLog, windows: Sequence[int], lag: float) -> float:
        """Fraction of ``windows`` that are jittered at ``lag`` (Fig. 7 x-axis)."""
        if not windows:
            return 0.0
        jittered = sum(1 for w in windows
                       if self.window_playback(log, w, lag).jittered)
        return jittered / len(windows)

    def jitter_free_fraction(self, log: ReceiverLog, windows: Sequence[int], lag: float) -> float:
        """Fraction of windows decodable at ``lag`` (Figs. 5 and 6 y-axis)."""
        return 1.0 - self.jitter_fraction(log, windows, lag)

    def mean_jittered_delivery_ratio(self, log: ReceiverLog, windows: Sequence[int],
                                     lag: float) -> float:
        """Average delivery ratio *inside jittered windows only* (Table 2).

        Returns 1.0 when no window is jittered (nothing to average —
        reported as perfect, as the paper's table footnote implies).
        """
        ratios = [wp.delivery_ratio
                  for wp in self.playback(log, windows, lag) if wp.jittered]
        if not ratios:
            return 1.0
        return sum(ratios) / len(ratios)

    # ------------------------------------------------------------------
    # inverse queries: minimal lag achieving a target
    # ------------------------------------------------------------------
    def window_required_lag(self, log: ReceiverLog, window_id: int) -> float:
        """Smallest lag at which ``window_id`` decodes; inf if it never does."""
        config = self.config
        start = window_id * config.packets_per_window
        delays = []
        for packet_id in range(start, start + config.packets_per_window):
            delivered = log.delivery_time(packet_id)
            if delivered is not None:
                delays.append(delivered - self._publish_time(packet_id))
        needed = config.source_packets_per_window
        if len(delays) < needed:
            return OFFLINE
        delays.sort()
        return max(0.0, delays[needed - 1])

    def min_lag_jitter_free(self, log: ReceiverLog, windows: Sequence[int]) -> float:
        """Smallest lag at which *every* window decodes (Figs. 8, 9 'no jitter')."""
        if not windows:
            return 0.0
        return max(self.window_required_lag(log, w) for w in windows)

    def min_lag_max_jitter(self, log: ReceiverLog, windows: Sequence[int],
                           max_jitter: float) -> float:
        """Smallest lag at which the jittered fraction is <= ``max_jitter``
        (Fig. 9 'max 1% jitter' uses max_jitter=0.01)."""
        if not windows:
            return 0.0
        if not 0.0 <= max_jitter <= 1.0:
            raise ValueError(f"max_jitter must be in [0, 1], got {max_jitter!r}")
        required = sorted(self.window_required_lag(log, w) for w in windows)
        allowed_jittered = math.floor(max_jitter * len(required))
        index = len(required) - 1 - allowed_jittered
        return required[index]

    def min_lag_delivery_ratio(self, log: ReceiverLog, total_packets: int,
                               ratio: float) -> float:
        """Smallest lag at which the node has received ``ratio`` of all
        published packets on time (Fig. 1's '99% delivery' curves)."""
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio!r}")
        needed = math.ceil(ratio * total_packets)
        delays = sorted(delivered - self._publish_time(packet_id)
                        for packet_id, delivered in log.items())
        if len(delays) < needed:
            return OFFLINE
        return max(0.0, delays[needed - 1])
