"""Per-node delivery log.

Records when each stream packet was first delivered to the node's
application layer.  Every evaluation metric — stream lag, jitter,
per-window decode state — is computed offline from these logs plus the
source's publish times, mirroring how the paper instruments its testbed.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class ReceiverLog:
    """First-delivery times of stream packets at one node."""

    __slots__ = ("node_id", "_deliveries", "duplicates")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._deliveries: Dict[int, float] = {}
        self.duplicates = 0

    def record(self, packet_id: int, time: float) -> bool:
        """Record a delivery; returns False (and counts it) for duplicates.

        The three-phase protocol should never deliver a payload twice —
        the duplicate counter existing and staying at zero is itself a
        protocol invariant the integration tests assert.
        """
        if packet_id in self._deliveries:
            self.duplicates += 1
            return False
        self._deliveries[packet_id] = time
        return True

    def delivery_time(self, packet_id: int) -> Optional[float]:
        return self._deliveries.get(packet_id)

    def has(self, packet_id: int) -> bool:
        return packet_id in self._deliveries

    def __len__(self) -> int:
        return len(self._deliveries)

    def items(self) -> Iterator[Tuple[int, float]]:
        return iter(self._deliveries.items())

    def received_count(self) -> int:
        return len(self._deliveries)

    def delivery_ratio(self, total_published: int) -> float:
        """Fraction of all published packets this node ever received."""
        if total_published == 0:
            return 1.0
        return len(self._deliveries) / total_published
