"""Systematic FEC window bookkeeping.

The paper encodes every window of 101 stream packets with 9 extra repair
packets (110 total) using a systematic code: a window is fully decodable
from *any* 101 of its 110 packets, and even an undecodable ("jittered")
window still yields every source packet that arrived directly.

We never need actual Reed-Solomon arithmetic — the evaluation uses only
decodability and per-window delivery counts — so :class:`FecCodec` is an
exact model of the code's erasure behaviour, not of its byte-level math
(see DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from repro.streaming.packets import StreamConfig


@dataclass
class WindowState:
    """Receiver-side delivery state of one FEC window."""

    window_id: int
    received_source: int
    received_fec: int
    needed: int
    source_per_window: int

    @property
    def received_total(self) -> int:
        return self.received_source + self.received_fec

    @property
    def decodable(self) -> bool:
        """True iff the whole window can be reconstructed."""
        return self.received_total >= self.needed

    @property
    def viewable_source_packets(self) -> int:
        """Source packets the player can render.

        All of them if the window decodes; otherwise exactly the source
        packets that arrived directly (systematic coding).
        """
        if self.decodable:
            return self.source_per_window
        return self.received_source

    @property
    def delivery_ratio(self) -> float:
        """Fraction of the window's source data that is viewable."""
        return self.viewable_source_packets / self.source_per_window


class FecCodec:
    """Erasure-level model of the paper's systematic FEC code."""

    def __init__(self, config: StreamConfig = StreamConfig()):
        config.validate()
        self.config = config

    def window_state(self, window_id: int, received_packet_ids: Iterable[int]) -> WindowState:
        """Classify the received packets of ``window_id`` into a state."""
        config = self.config
        source = 0
        fec = 0
        seen: Set[int] = set()
        for packet_id in received_packet_ids:
            if config.window_of(packet_id) != window_id or packet_id in seen:
                continue
            seen.add(packet_id)
            if config.is_fec(packet_id):
                fec += 1
            else:
                source += 1
        return WindowState(
            window_id=window_id,
            received_source=source,
            received_fec=fec,
            needed=config.source_packets_per_window,
            source_per_window=config.source_packets_per_window,
        )

    def is_decodable(self, received_count: int) -> bool:
        """Decodability from a raw distinct-packet count."""
        return received_count >= self.config.source_packets_per_window

    def window_packet_ids(self, window_id: int) -> range:
        """All packet ids belonging to ``window_id``."""
        per_window = self.config.packets_per_window
        start = window_id * per_window
        return range(start, start + per_window)
