"""Scenario configuration: one experiment run, fully described.

A scenario bundles everything the runner needs — population size,
protocol, capability distribution, stream and gossip parameters, network
conditions, churn — under a single seed, so a scenario value *is* the
experiment identity: same scenario, same result, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, TYPE_CHECKING

from repro.core.config import GossipConfig
from repro.streaming.packets import StreamConfig
from repro.workloads.churn import CatastrophicFailure
from repro.workloads.distributions import KBPS, REF_691, CapabilityDistribution

if TYPE_CHECKING:  # pragma: no cover
    from repro.adversary.mix import AttackMix
    from repro.faults.plan import FaultPlan

#: Protocols the runner knows how to build.
PROTOCOLS = ("standard", "heap", "tree")


@dataclass
class ScenarioConfig:
    """Everything needed to run one dissemination experiment."""

    name: str = "scenario"
    #: One of "standard" (Algorithm 1), "heap" (Algorithm 2) or "tree"
    #: (the static-tree baseline the introduction argues against).
    protocol: str = "heap"
    #: Total node count *including* the source (node 0).
    n_nodes: int = 100
    #: Seconds of stream published.
    duration: float = 30.0
    #: Extra simulated seconds after the source stops, so in-flight
    #: packets settle and offline metrics are exact.
    drain: float = 30.0
    #: Stream publication start (leaves the aggregation protocol a short
    #: warm-up, as a real deployment would have).
    stream_start: float = 2.0
    seed: int = 1

    distribution: CapabilityDistribution = REF_691
    stream: StreamConfig = field(default_factory=StreamConfig)
    gossip: GossipConfig = field(default_factory=GossipConfig)

    #: The source's uplink (well provisioned, as on the paper's testbed).
    source_capacity_bps: float = 5 * 2048 * KBPS
    #: Capability the source *advertises* to the fanout-adaptation and
    #: aggregation protocols.  None means "the distribution average", so
    #: the source gossips like an average node and its big uplink is pure
    #: headroom — advertising the raw uplink would make every node pull
    #: directly from the source and congest it.
    source_advertised_bps: Optional[float] = None
    #: Mean failure-detection delay (paper: ~10 s).
    mean_detection_delay: float = 10.0
    #: Bernoulli datagram loss rate (0 disables the loss model).
    loss_rate: float = 0.0
    #: How loss randomness is drawn: "shared" consumes one stream in
    #: global send order (the historical behaviour, golden-pinned);
    #: "per-pair" derives an independent stream per directed link, making
    #: drop decisions a pure function of each sender's own send sequence
    #: — the mode sharded execution requires when ``loss_rate > 0``.
    loss_rng: str = "shared"
    #: Median of the pairwise base latency distribution, seconds.
    latency_median: float = 0.05
    #: Per-message uniform jitter on top of the base latency, seconds.
    latency_jitter: float = 0.01
    #: Hard lower bound (floor) of the base latency, seconds.  Doubles
    #: as the conservative lookahead of sharded execution: shards
    #: synchronize every ``latency_floor`` simulated seconds, so larger
    #: floors mean fewer cross-shard barriers.
    latency_floor: float = 0.002
    #: How latency/jitter randomness is drawn: "shared" consumes one
    #: stream in global send order (the historical behaviour, pinned by
    #: the golden traces); "per-pair" derives an independent stream per
    #: link, making arrivals a pure function of each sender's own send
    #: sequence — the mode sharded execution requires.
    latency_rng: str = "shared"
    #: Optional catastrophic failure (Section 3.6).
    churn: Optional[CatastrophicFailure] = None

    #: Fraction of nodes whose *effective* uplink is degraded below their
    #: advertised capability (the paper's overloaded PlanetLab hosts,
    #: "between 5% and 7%" contributing far less than their limit).
    degraded_fraction: float = 0.0
    #: Effective capacity multiplier for degraded nodes.
    degraded_factor: float = 0.5

    #: Bias exponent for the source's first-hop target selection
    #: (0 = uniform, the paper's default; >0 explores its §5 extension).
    source_bias: float = 0.0

    #: Membership substrate: "directory" (full membership, the paper's
    #: PlanetLab assumption) or "cyclon" (decentralized partial views
    #: from the peer-sampling service).
    membership: str = "directory"
    #: Partial-view size when membership == "cyclon".
    cyclon_view_size: int = 20

    #: The scenario's adversary: a weighted attack mix plus a victim
    #: placement policy (see :class:`repro.adversary.mix.AttackMix`).
    #: None means an honest population — unless the deprecated
    #: ``freerider_*`` triple below is set, which the runner transparently
    #: lifts to the equivalent single-attack mix.
    adversary: Optional["AttackMix"] = None

    #: DEPRECATED (PR 8): fraction of receivers that freeride.  Kept as a
    #: back-compat shim over ``adversary`` — equivalent to
    #: ``AttackMix.single(freerider_mode, freerider_fraction,
    #: freerider_param)`` bit for bit.  Setting both is a config error.
    freerider_fraction: float = 0.0
    #: DEPRECATED (PR 8): "underclaim" — advertise freerider_param *
    #: capability to the aggregation protocol; "nonserve" — answer only
    #: freerider_param of received requests.
    freerider_mode: str = "underclaim"
    #: DEPRECATED (PR 8): claim factor (underclaim) or serve probability
    #: (nonserve).
    freerider_param: float = 0.1
    #: Run the gossip-based freerider audit on every node.
    audit: bool = False

    #: Discover upload capabilities at join time instead of trusting the
    #: configured value: nodes advertise ``discovery_initial_bps`` and
    #: slow-start toward their real uplink (§2.2's joining heuristic).
    capability_discovery: bool = False
    discovery_initial_bps: float = 128 * KBPS

    #: Partition the node population across this many worker shards and
    #: run them in parallel with conservative time-window synchronization
    #: (see :mod:`repro.net.shard`).  0 or 1 runs in-process.  Sharding
    #: is an execution strategy, not an experiment parameter: a sharded
    #: run produces byte-identical metric summaries to the serial run of
    #: the same scenario (it requires ``latency_rng="per-pair"`` — and
    #: ``loss_rng="per-pair"`` when lossy — so that random draws do not
    #: depend on global event order).
    shards: int = 0

    #: Deterministic fault injection (chaos testing, see
    #: :mod:`repro.faults`): shard-fault clauses fire inside this
    #: scenario's shard workers.  Like ``shards``, faults are an
    #: execution circumstance, not an experiment parameter — a faulted
    #: run that supervision recovers is byte-identical to a clean one —
    #: so the field is excluded from :func:`scenario_key`.
    faults: Optional["FaultPlan"] = None

    # ------------------------------------------------------------------
    def violations(self) -> List[str]:
        """Every way this scenario is invalid, as human-readable strings.

        :meth:`validate` joins them into a single :class:`ValueError`, so
        a config with three problems reports all three at once instead of
        failing one field at a time.
        """
        errors = []
        if self.protocol not in PROTOCOLS:
            errors.append(
                f"unknown protocol {self.protocol!r}; known: {PROTOCOLS}")
        if self.n_nodes < 2:
            errors.append("need at least a source and one receiver")
        if self.duration <= 0:
            errors.append("duration must be positive")
        if self.drain < 0:
            errors.append("drain must be >= 0")
        if self.stream_start < 0:
            errors.append("stream_start must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            errors.append("loss rate must be in [0, 1)")
        if self.source_capacity_bps <= 0:
            errors.append("source capacity must be positive")
        if not 0.0 <= self.degraded_fraction <= 1.0:
            errors.append("degraded fraction must be in [0, 1]")
        if not 0.0 < self.degraded_factor <= 1.0:
            errors.append("degraded factor must be in (0, 1]")
        if self.source_bias < 0:
            errors.append("source bias must be >= 0")
        if self.membership not in ("directory", "cyclon"):
            errors.append(f"unknown membership {self.membership!r}")
        if self.cyclon_view_size < 2:
            errors.append("cyclon view size must be >= 2")
        if not 0.0 <= self.freerider_fraction < 1.0:
            errors.append("freerider fraction must be in [0, 1)")
        if self.freerider_mode not in ("underclaim", "nonserve"):
            errors.append(f"unknown freerider mode {self.freerider_mode!r}")
        if not 0.0 < self.freerider_param <= 1.0:
            errors.append("freerider param must be in (0, 1]")
        if self.freerider_fraction > 0 and self.protocol != "heap":
            errors.append("freeriders are modelled for the heap protocol")
        errors.extend(self._adversary_violations())
        if self.discovery_initial_bps <= 0:
            errors.append("discovery initial capability must be positive")
        if self.latency_floor < 0:
            errors.append("latency floor must be >= 0")
        if self.latency_rng not in ("shared", "per-pair"):
            errors.append(f"unknown latency_rng {self.latency_rng!r}; "
                          f"known: 'shared', 'per-pair'")
        if self.loss_rng not in ("shared", "per-pair"):
            errors.append(f"unknown loss_rng {self.loss_rng!r}; "
                          f"known: 'shared', 'per-pair'")
        if self.shards < 0:
            errors.append("shards must be >= 0")
        if self.shards > 1:
            if self.shards >= self.n_nodes:
                errors.append("need at least one node per shard")
            if self.latency_rng != "per-pair":
                errors.append(
                    "sharded execution needs order-independent latency "
                    "draws; set latency_rng='per-pair'")
            if self.loss_rate > 0 and self.loss_rng != "per-pair":
                errors.append(
                    "sharded execution needs order-independent loss "
                    "draws; set loss_rng='per-pair' (the 'shared' model "
                    "consumes one stream in global send order)")
            if self.latency_floor <= 0:
                errors.append("sharded execution needs a positive "
                              "latency_floor (it is the lookahead)")
        if self.faults is not None:
            errors.extend(f"faults: {v}" for v in self.faults.violations())
            if self.faults.has_shard_faults and self.shards <= 1:
                errors.append("shard fault injection (shard-exit/"
                              "shard-stall/drop-wire) needs shards > 1")
        for sub in (self.stream, self.gossip):
            try:
                sub.validate()
            except ValueError as exc:
                errors.append(str(exc))
        return errors

    def _adversary_violations(self) -> List[str]:
        if self.adversary is None:
            return []
        errors = list(self.adversary.violations())
        if self.freerider_fraction > 0:
            errors.append(
                "set either adversary or the deprecated freerider_* "
                "fields, not both (freerider_* is the back-compat shim "
                "for a single-attack mix)")
        if self.protocol != "heap":
            errors.append("attacks are modelled for the heap protocol")
        required = self.adversary.required_membership()
        if required is not None and self.membership != required:
            errors.append(
                f"attack mix needs membership={required!r} "
                f"(got {self.membership!r})")
        return errors

    def validate(self) -> None:
        errors = self.violations()
        if errors:
            raise ValueError("; ".join(errors))

    def with_(self, **overrides) -> "ScenarioConfig":
        """A modified copy (convenience over dataclasses.replace)."""
        return replace(self, **overrides)

    @property
    def end_time(self) -> float:
        """Simulated time at which the run finishes."""
        return self.stream_start + self.duration + self.drain

    @property
    def total_packets(self) -> int:
        """Packets the source will publish (whole windows only)."""
        return self.stream.packets_for_duration(self.duration)


def scenario_key(config: ScenarioConfig) -> str:
    """Stable value-identity of a scenario, usable as a cache key.

    Derived from *every* field so newly added scenario options can never
    alias two different experiments; object-valued fields are reduced to
    stable identities (distributions by name, churn by its configuration,
    never its per-run state).  The same key is used by the in-process
    result cache, the grid summary cache and the JSONL checkpoint
    fingerprint, so all three agree on what "the same run" means.
    """
    import dataclasses

    parts = []
    for field_ in dataclasses.fields(config):
        if field_.name == "shards":
            # Sharding is an execution strategy, not an experiment
            # parameter: a sharded run is byte-identical to the serial
            # run of the same scenario (tests/test_sharded_scenario.py),
            # so shard counts share one cache/checkpoint identity —
            # `figure --shards 4` reuses cells `--shards 1` computed.
            continue
        if field_.name == "faults":
            # Fault injection is likewise execution circumstance, not
            # identity: a supervised-and-recovered faulted run is
            # byte-identical to a clean one, and sharing the key is what
            # lets its resume/restart reuse the clean run's checkpoints.
            continue
        value = getattr(config, field_.name)
        if field_.name == "adversary":
            # Honest scenarios skip the field entirely so every key
            # minted before the adversary engine existed stays valid
            # (cached summaries, JSONL checkpoints).
            if value is None:
                continue
            value = value.key()
        elif field_.name == "distribution":
            value = value.name
        elif field_.name == "churn":
            value = value.key() if value is not None else None
        parts.append((field_.name, repr(value)))
    return repr(parts)
