"""Churn scenarios.

:class:`CatastrophicFailure` reproduces Section 3.6: a fraction of the
nodes (victims drawn uniformly, so the capability supply ratio is
unchanged) crash simultaneously at a given time; survivors learn about
each failure after the directory's mean detection delay (10 s in the
paper).

:class:`IntervalChurn` is an extension beyond the paper's headline
experiments: continuous random crashes at a configurable rate, useful
for stress benches.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence


class CatastrophicFailure:
    """Simultaneous crash of a fraction of the nodes at ``at_time``."""

    def __init__(self, fraction: float, at_time: float = 60.0):
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {fraction!r}")
        if at_time < 0:
            raise ValueError(f"at_time must be >= 0, got {at_time!r}")
        self.fraction = fraction
        self.at_time = at_time
        #: Filled when the failure fires (for post-run analysis).
        self.victims: List[int] = []

    def schedule(self, sim, directory, rng: random.Random,
                 crash_node: Callable[[int], None],
                 protect: Sequence[int] = ()) -> None:
        """Arm the failure.  ``crash_node`` must kill one node id (network
        crash + protocol stop); view updates flow through the directory."""

        def fire():
            self.victims = directory.pick_crash_victims(
                self.fraction, rng, protect=protect)
            for victim in self.victims:
                crash_node(victim)
                directory.crash(victim)

        sim.schedule_at(self.at_time, fire)

    def key(self) -> tuple:
        """Stable identity of the *configuration* (never the per-run
        ``victims`` state) — used by scenario cache keys and grid
        checkpoint fingerprints."""
        return ("catastrophic", self.fraction, self.at_time)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CatastrophicFailure({self.fraction:.0%} at t={self.at_time}s)"


class IntervalChurn:
    """Crash one random node every ``interval`` seconds between
    ``start`` and ``stop`` (extension beyond the paper)."""

    def __init__(self, interval: float, start: float = 0.0,
                 stop: Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.interval = interval
        self.start = start
        self.stop = stop
        self.victims: List[int] = []

    def schedule(self, sim, directory, rng: random.Random,
                 crash_node: Callable[[int], None],
                 protect: Sequence[int] = ()) -> None:
        protected = set(protect)

        def fire():
            if self.stop is not None and sim.now > self.stop:
                return
            candidates = sorted(directory.alive_nodes - protected)
            if len(candidates) > 1:  # keep at least one node besides protected
                victim = rng.choice(candidates)
                self.victims.append(victim)
                crash_node(victim)
                directory.crash(victim)
            sim.schedule(self.interval, fire)

        sim.schedule_at(max(self.start, sim.now) + self.interval, fire)

    def key(self) -> tuple:
        """Stable configuration identity (excludes ``victims`` state)."""
        return ("interval", self.interval, self.start, self.stop)
