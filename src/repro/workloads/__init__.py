"""Workloads: upload-capability distributions and churn scenarios.

The capability distributions reproduce the paper's Table 1 exactly
(ref-691, ref-724 and the "more skewed" ms-691), plus the uniform dist2
of Figure 2 and the unconstrained setting of Figure 1.  Churn scenarios
implement the catastrophic-failure experiments of Section 3.6.
"""

from repro.workloads.churn import CatastrophicFailure, IntervalChurn
from repro.workloads.distributions import (
    MS_691,
    REF_691,
    REF_724,
    UNCONSTRAINED,
    UNIFORM_691,
    BandwidthClass,
    CapabilityDistribution,
    ContinuousUniformDistribution,
    distribution_by_name,
)
from repro.workloads.scenario import ScenarioConfig

__all__ = [
    "BandwidthClass",
    "CapabilityDistribution",
    "CatastrophicFailure",
    "ContinuousUniformDistribution",
    "IntervalChurn",
    "MS_691",
    "REF_691",
    "REF_724",
    "ScenarioConfig",
    "UNCONSTRAINED",
    "UNIFORM_691",
    "distribution_by_name",
]
