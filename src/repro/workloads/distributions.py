"""Upload-capability distributions (the paper's Table 1).

Capacities use binary kilobits (1 Mbps = 1024 kbps), which makes the
class averages come out exactly as the paper reports them:

* ref-691: 10% @ 2 Mbps, 50% @ 768 kbps, 40% @ 256 kbps  -> 691.2 kbps
* ref-724: 15% @ 2 Mbps, 39% @ 768 kbps, 46% @ 256 kbps  -> 724.5 kbps
* ms-691 : 5% @ 3 Mbps, 10% @ 1 Mbps, 85% @ 512 kbps     -> 691.2 kbps

The *capability supply ratio* (CSR) is the average capability over the
stream rate; the paper's distributions sit at 1.15-1.20, i.e. barely
above what the stream needs — the regime where heterogeneity-awareness
matters most.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

KBPS = 1024.0  # binary kilobit per second, in bps


@dataclass(frozen=True)
class BandwidthClass:
    """One class of nodes sharing an upload capability."""

    label: str
    capacity_bps: float
    fraction: float

    def __post_init__(self):
        if self.capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bps!r}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction!r}")


class CapabilityDistribution:
    """A discrete distribution of upload capabilities over node classes."""

    def __init__(self, name: str, classes: Sequence[BandwidthClass]):
        if not classes:
            raise ValueError("a distribution needs at least one class")
        total = sum(c.fraction for c in classes)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"class fractions must sum to 1, got {total!r}")
        self.name = name
        self.classes = tuple(classes)

    # ------------------------------------------------------------------
    def average_bps(self) -> float:
        return sum(c.capacity_bps * c.fraction for c in self.classes)

    def csr(self, stream_rate_bps: float) -> float:
        """Capability supply ratio: average capability / stream rate."""
        if stream_rate_bps <= 0:
            raise ValueError("stream rate must be positive")
        return self.average_bps() / stream_rate_bps

    def class_of(self, capacity_bps: float) -> Optional[BandwidthClass]:
        for cls in self.classes:
            if cls.capacity_bps == capacity_bps:
                return cls
        return None

    # ------------------------------------------------------------------
    def class_counts(self, n: int) -> Dict[str, int]:
        """Integer node counts per class using largest-remainder rounding,
        guaranteed to sum to ``n``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n!r}")
        exact = [(cls, cls.fraction * n) for cls in self.classes]
        counts = {cls.label: int(quota) for cls, quota in exact}
        remainder = n - sum(counts.values())
        by_fraction = sorted(exact, key=lambda item: item[1] - int(item[1]),
                             reverse=True)
        for cls, _ in by_fraction[:remainder]:
            counts[cls.label] += 1
        return counts

    def assign(self, n: int, rng: random.Random) -> List[Tuple[str, float]]:
        """Assign a (class label, capacity) to each of ``n`` nodes.

        Counts per class are deterministic (largest remainder); which node
        lands in which class is shuffled with ``rng``.
        """
        counts = self.class_counts(n)
        assignment: List[Tuple[str, float]] = []
        for cls in self.classes:
            assignment.extend([(cls.label, cls.capacity_bps)] * counts[cls.label])
        rng.shuffle(assignment)
        return assignment

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{c.fraction:.0%}@{c.label}" for c in self.classes)
        return f"CapabilityDistribution({self.name}: {parts})"


class ContinuousUniformDistribution(CapabilityDistribution):
    """Uniform capability in [low, high] bps — the paper's dist2.

    Exposed through the same interface; ``assign`` draws i.i.d. uniform
    capacities and labels every node "uniform".  For class-based metrics
    the nodes can be bucketed by tercile via :meth:`tercile_label`.
    """

    def __init__(self, name: str, low_bps: float, high_bps: float):
        if not 0 < low_bps <= high_bps:
            raise ValueError(f"invalid range [{low_bps}, {high_bps}]")
        self.low_bps = low_bps
        self.high_bps = high_bps
        mean = (low_bps + high_bps) / 2
        super().__init__(name, [BandwidthClass("uniform", mean, 1.0)])

    def average_bps(self) -> float:
        return (self.low_bps + self.high_bps) / 2

    def assign(self, n: int, rng: random.Random) -> List[Tuple[str, float]]:
        return [("uniform", rng.uniform(self.low_bps, self.high_bps))
                for _ in range(n)]

    def tercile_label(self, capacity_bps: float) -> str:
        span = (self.high_bps - self.low_bps) / 3
        if capacity_bps < self.low_bps + span:
            return "low"
        if capacity_bps < self.low_bps + 2 * span:
            return "mid"
        return "high"


# ----------------------------------------------------------------------
# The paper's distributions (Table 1).
# ----------------------------------------------------------------------
REF_691 = CapabilityDistribution("ref-691", [
    BandwidthClass("2Mbps", 2048 * KBPS, 0.10),
    BandwidthClass("768kbps", 768 * KBPS, 0.50),
    BandwidthClass("256kbps", 256 * KBPS, 0.40),
])

REF_724 = CapabilityDistribution("ref-724", [
    BandwidthClass("2Mbps", 2048 * KBPS, 0.15),
    BandwidthClass("768kbps", 768 * KBPS, 0.39),
    BandwidthClass("256kbps", 256 * KBPS, 0.46),
])

MS_691 = CapabilityDistribution("ms-691", [
    BandwidthClass("3Mbps", 3072 * KBPS, 0.05),
    BandwidthClass("1Mbps", 1024 * KBPS, 0.10),
    BandwidthClass("512kbps", 512 * KBPS, 0.85),
])

#: The paper's dist2: uniform with the same 691.2 kbps average as dist1.
UNIFORM_691 = ContinuousUniformDistribution(
    "uniform-691", low_bps=256 * KBPS, high_bps=1126.4 * KBPS)

#: Unconstrained PlanetLab-like uplinks (Figure 1).
UNCONSTRAINED = CapabilityDistribution("unconstrained", [
    BandwidthClass("100Mbps", 100_000 * KBPS, 1.0),
])

_BY_NAME = {d.name: d for d in (REF_691, REF_724, MS_691, UNIFORM_691, UNCONSTRAINED)}


def distribution_by_name(name: str) -> CapabilityDistribution:
    """Look up one of the paper's distributions by its name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown distribution {name!r}; known: {known}") from None
