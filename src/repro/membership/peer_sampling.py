"""Cyclon-style gossip peer-sampling service.

The paper's protocols assume a uniform random peer sampler; on PlanetLab
this came from full membership knowledge.  This module provides the
decentralized alternative: nodes keep a small partial view of (peer, age)
entries and periodically *shuffle* a slice of it with the oldest peer in
the view, which is known to approximate uniform sampling and to flush
dead entries quickly (Voulgaris, Gavidia, van Steen, JNSM 2005).

It is wired into experiments through the same :class:`LocalView`
interface as the directory, so the dissemination protocols do not care
which membership substrate is underneath.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.membership.view import LocalView
from repro.net.message import register_kind
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

#: Bytes per serialized view entry: node id (8) + age (4).
_ENTRY_BYTES = 12
#: Fixed protocol header bytes inside the datagram payload.
_HEADER_BYTES = 8


class ViewEntry:
    """One (peer, age) slot in a partial view."""

    __slots__ = ("node_id", "age")

    def __init__(self, node_id: int, age: int = 0):
        self.node_id = node_id
        self.age = age

    def copy(self) -> "ViewEntry":
        return ViewEntry(self.node_id, self.age)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ViewEntry({self.node_id}, age={self.age})"


class ShuffleRequest:
    kind = "shuffle-req"
    kind_id = register_kind("shuffle-req")
    __slots__ = ("entries",)

    def __init__(self, entries: List[Tuple[int, int]]):
        self.entries = entries

    def wire_size(self) -> int:
        return _HEADER_BYTES + _ENTRY_BYTES * len(self.entries)


class ShuffleReply:
    kind = "shuffle-rep"
    kind_id = register_kind("shuffle-rep")
    __slots__ = ("entries",)

    def __init__(self, entries: List[Tuple[int, int]]):
        self.entries = entries

    def wire_size(self) -> int:
        return _HEADER_BYTES + _ENTRY_BYTES * len(self.entries)


class PeerSamplingService:
    """One node's Cyclon shuffling agent.

    Exposes its current neighbor set as a :class:`LocalView` (the ``view``
    attribute) that tracks the partial view's membership, so dissemination
    protocols can sample from it exactly as they would from the directory.
    """

    __slots__ = ("_sim", "_net", "node_id", "_rng", "view_size",
                 "shuffle_length", "_entries", "_pending_sent", "view",
                 "shuffles_started", "_timer", "_dispatch")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 rng: random.Random, view_size: int = 20, shuffle_length: int = 8,
                 period: float = 1.0):
        if shuffle_length > view_size:
            raise ValueError("shuffle_length cannot exceed view_size")
        self._sim = sim
        self._net = net
        self.node_id = node_id
        self._rng = rng
        self.view_size = view_size
        self.shuffle_length = shuffle_length
        self._entries: Dict[int, ViewEntry] = {}
        self._pending_sent: Dict[int, List[int]] = {}
        self.view = LocalView(node_id)
        self.shuffles_started = 0
        self._timer = PeriodicTimer(sim, period, self._shuffle)
        self._dispatch = {
            ShuffleRequest.kind_id: self._handle_request,
            ShuffleReply.kind_id: self._handle_reply,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self, seeds: List[int]) -> None:
        """Fill the initial view from a list of known peers."""
        for seed in seeds:
            if seed != self.node_id and len(self._entries) < self.view_size:
                self._add_entry(ViewEntry(seed, 0))

    def start(self, phase: Optional[float] = None) -> None:
        self._timer.start(phase if phase is not None else self._rng.uniform(0, self._timer.period))

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    # view maintenance
    # ------------------------------------------------------------------
    def _add_entry(self, entry: ViewEntry) -> None:
        if entry.node_id == self.node_id:
            return
        existing = self._entries.get(entry.node_id)
        if existing is not None:
            if entry.age < existing.age:
                existing.age = entry.age
            return
        self._entries[entry.node_id] = entry
        self.view.add(entry.node_id)

    def _remove_peer(self, node_id: int) -> None:
        if node_id in self._entries:
            del self._entries[node_id]
            self.view.remove(node_id)

    def _oldest_peer(self) -> Optional[int]:
        if not self._entries:
            return None
        return max(sorted(self._entries), key=lambda n: self._entries[n].age)

    def neighbors(self) -> List[int]:
        return sorted(self._entries)

    # ------------------------------------------------------------------
    # shuffling
    # ------------------------------------------------------------------
    def _shuffle(self) -> None:
        for entry in self._entries.values():
            entry.age += 1
        target = self._oldest_peer()
        if target is None:
            return
        self.shuffles_started += 1
        # Select shuffle_length - 1 random other entries plus a fresh
        # entry for ourselves.
        others = [n for n in sorted(self._entries) if n != target]
        count = min(self.shuffle_length - 1, len(others))
        sample = self._rng.sample(others, count) if count > 0 else []
        payload_entries = [(self.node_id, 0)]
        payload_entries += [(n, self._entries[n].age) for n in sample]
        # The target entry is consumed by the shuffle: remove it now; it
        # may come back through future shuffles if still alive.
        self._remove_peer(target)
        self._pending_sent[target] = sample
        self._net.send(self.node_id, target,
                       ShuffleRequest(self._outgoing(payload_entries)))

    def on_shuffle_request(self, src: int, request: ShuffleRequest) -> None:
        others = sorted(self._entries)
        count = min(self.shuffle_length, len(others))
        sample = self._rng.sample(others, count) if count > 0 else []
        reply_entries = [(n, self._entries[n].age) for n in sample]
        self._net.send(self.node_id, src,
                       ShuffleReply(self._outgoing(reply_entries)))
        self._merge([ViewEntry(n, a) for n, a in request.entries], sent=sample)

    def _outgoing(self, entries: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """The (peer, age) entries this node actually advertises.

        An honest node advertises what it sampled; adversarial samplers
        (see :mod:`repro.adversary.attacks`) override this seam to
        fabricate entries without re-implementing the shuffle protocol.
        """
        return entries

    def on_shuffle_reply(self, src: int, reply: ShuffleReply) -> None:
        sent = self._pending_sent.pop(src, [])
        self._merge([ViewEntry(n, a) for n, a in reply.entries], sent=sent)

    def _merge(self, incoming: List[ViewEntry], sent: List[int]) -> None:
        """Cyclon merge: fill empty slots first, then overwrite the slots of
        entries we sent out, never duplicating and never pointing at self."""
        replaceable = [n for n in sent if n in self._entries]
        for entry in incoming:
            if entry.node_id == self.node_id or entry.node_id in self._entries:
                if entry.node_id in self._entries:
                    self._add_entry(entry)  # keeps the fresher age
                continue
            if len(self._entries) < self.view_size:
                self._add_entry(entry)
            elif replaceable:
                self._remove_peer(replaceable.pop())
                self._add_entry(entry)
            # else: view full and nothing replaceable -> drop the entry.

    # ------------------------------------------------------------------
    # network plumbing
    # ------------------------------------------------------------------
    def dispatch_table(self):
        """Kind-id dispatch for this service's two shuffle kinds.

        Merged into the hosting gossip node's endpoint table by the
        experiment runner (``GossipNode.register_handlers``), or captured
        directly when the service is attached as its own endpoint.
        """
        return self._dispatch

    def _handle_request(self, envelope) -> None:
        self.on_shuffle_request(envelope.src, envelope.payload)

    def _handle_reply(self, envelope) -> None:
        self.on_shuffle_reply(envelope.src, envelope.payload)

    def on_message(self, envelope) -> None:
        handler = self._dispatch.get(envelope.payload.kind_id)
        if handler is not None:
            handler(envelope)
