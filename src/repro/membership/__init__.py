"""Membership substrate.

The paper assumes each node can select gossip targets uniformly at random
among all (believed-alive) nodes, and that after a crash "surviving nodes
learn about the failure an average of 10 s after it happened".  This
package provides:

* :class:`~repro.membership.view.LocalView` — one node's current belief
  about who is alive, with uniform sampling;
* :class:`~repro.membership.directory.MembershipDirectory` — global truth
  plus per-survivor delayed failure notification;
* :class:`~repro.membership.selector.UniformSelector` and
  :class:`~repro.membership.selector.CapabilityBiasedSelector` — the
  paper's uniform selection and the source-bias extension of its §5;
* :class:`~repro.membership.peer_sampling.PeerSamplingService` — an
  optional Cyclon-style shuffling partial-view service, for experiments
  that do not want the full-membership assumption.
"""

from repro.membership.directory import MembershipDirectory
from repro.membership.peer_sampling import PeerSamplingService, ViewEntry
from repro.membership.selector import CapabilityBiasedSelector, UniformSelector
from repro.membership.view import LocalView

__all__ = [
    "CapabilityBiasedSelector",
    "LocalView",
    "MembershipDirectory",
    "PeerSamplingService",
    "UniformSelector",
    "ViewEntry",
]
