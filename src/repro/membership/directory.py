"""Global membership directory with delayed failure notification.

Holds ground truth about which nodes exist and are alive, and maintains a
:class:`~repro.membership.view.LocalView` per node.  When a node crashes,
every survivor learns about it after an individually sampled delay
(uniform in ``[0, 2 * mean_detection_delay]``, so the *average* matches
the paper's "surviving nodes learn about the failure an average of 10 s
after it happened").
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Set

from repro.membership.view import LocalView
from repro.sim.engine import Simulator


class MembershipDirectory:
    """Ground-truth membership plus per-node delayed views."""

    def __init__(self, sim: Simulator, rng: random.Random,
                 mean_detection_delay: float = 10.0):
        if mean_detection_delay < 0:
            raise ValueError(f"negative detection delay {mean_detection_delay!r}")
        self._sim = sim
        self._rng = rng
        self.mean_detection_delay = mean_detection_delay
        self._alive: Set[int] = set()
        self._views: Dict[int, LocalView] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def register(self, node_id: int) -> LocalView:
        """Add a node; its view is initialized with all currently alive nodes
        and every existing view learns about it immediately (joins are
        cheap to advertise through the join protocol)."""
        if node_id in self._views:
            raise ValueError(f"node {node_id} already registered")
        view = LocalView(node_id, self._alive)
        self._views[node_id] = view
        for other_view in self._views.values():
            other_view.add(node_id)
        self._alive.add(node_id)
        return view

    def register_all(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.register(node_id)

    def view_of(self, node_id: int) -> LocalView:
        return self._views[node_id]

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._alive

    @property
    def alive_nodes(self) -> Set[int]:
        return set(self._alive)

    def alive_count(self) -> int:
        return len(self._alive)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        """Mark ``node_id`` dead; schedule delayed removal from survivors' views."""
        if node_id not in self._alive:
            return
        self._alive.remove(node_id)
        for other_id, view in self._views.items():
            if other_id == node_id or other_id not in self._alive:
                continue
            if self.mean_detection_delay == 0:
                view.remove(node_id)
            else:
                delay = self._rng.uniform(0.0, 2.0 * self.mean_detection_delay)
                self._sim.schedule(delay, lambda v=view, n=node_id: v.remove(n))

    def crash_many(self, node_ids: Iterable[int]) -> None:
        for node_id in list(node_ids):
            self.crash(node_id)

    def pick_crash_victims(self, fraction: float, rng: random.Random,
                           protect: Iterable[int] = ()) -> List[int]:
        """Choose ``fraction`` of the alive nodes uniformly at random,
        never choosing the protected ids (e.g. the stream source).

        The paper takes victims "uniformly at random from the set of all
        nodes, i.e., keeping the average capability supply ratio unchanged".
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
        protected = set(protect)
        candidates = sorted(self._alive - protected)
        count = round(fraction * len(self._alive))
        count = min(count, len(candidates))
        return rng.sample(candidates, count)
