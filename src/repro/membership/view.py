"""A node's local membership view with uniform random sampling."""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Set


class LocalView:
    """The set of peers one node currently believes to be alive.

    Sampling is uniform without replacement and always excludes the
    owner itself, matching ``selectNodes(f)`` in the paper's Algorithm 1
    ("return f uniformly random nodes").
    """

    __slots__ = ("owner", "_members", "_members_list", "_dirty")

    def __init__(self, owner: int, members: Optional[Iterable[int]] = None):
        self.owner = owner
        self._members: Set[int] = set(members) if members is not None else set()
        self._members.discard(owner)
        self._members_list: List[int] = []
        self._dirty = True

    def add(self, node_id: int) -> None:
        if node_id != self.owner and node_id not in self._members:
            self._members.add(node_id)
            self._dirty = True

    def remove(self, node_id: int) -> None:
        if node_id in self._members:
            self._members.remove(node_id)
            self._dirty = True

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def members(self) -> Set[int]:
        """A copy of the current member set."""
        return set(self._members)

    def _as_list(self) -> List[int]:
        if self._dirty:
            # Sorted for determinism: iteration order of a set of ints is
            # stable in CPython but not guaranteed by the language.
            self._members_list = sorted(self._members)
            self._dirty = False
        return self._members_list

    def sample(self, k: int, rng: random.Random,
               exclude: Optional[Set[int]] = None) -> List[int]:
        """Return up to ``k`` distinct members, uniformly at random.

        Returns fewer than ``k`` when the (filtered) view is smaller.
        """
        if k <= 0:
            return []
        candidates = self._as_list()
        if exclude:
            candidates = [m for m in candidates if m not in exclude]
        if k >= len(candidates):
            return list(candidates)
        return rng.sample(candidates, k)
