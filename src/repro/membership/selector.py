"""Gossip-target selectors.

:class:`UniformSelector` is the paper's ``selectNodes(f)`` — uniform
without replacement over the local view.  :class:`CapabilityBiasedSelector`
implements the §5 extension ("bias the neighbor selection towards rich
nodes in the early steps of dissemination"): selection probability is
proportional to a node's advertised capability raised to a bias exponent.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Set

from repro.membership.view import LocalView


class UniformSelector:
    """Uniform random selection without replacement (Algorithm 1, line 23)."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def select(self, view: LocalView, k: int,
               exclude: Optional[Set[int]] = None) -> List[int]:
        return view.sample(k, self._rng, exclude=exclude)


class CapabilityBiasedSelector:
    """Selection weighted by advertised capability.

    ``capability_of`` maps a node id to its (believed) upload capability;
    ``bias`` is the exponent applied to the weight: 0 degenerates to
    uniform selection, 1 is proportional, larger values are greedier.
    Sampling is without replacement via successive weighted draws.
    """

    def __init__(self, rng: random.Random, capability_of: Callable[[int], float],
                 bias: float = 1.0):
        if bias < 0:
            raise ValueError(f"bias must be >= 0, got {bias!r}")
        self._rng = rng
        self._capability_of = capability_of
        self.bias = bias

    def select(self, view: LocalView, k: int,
               exclude: Optional[Set[int]] = None) -> List[int]:
        candidates = view.sample(len(view), self._rng, exclude=exclude)
        if k >= len(candidates):
            return candidates
        if self.bias == 0:
            return self._rng.sample(candidates, k)
        weights = [max(1e-9, self._capability_of(c)) ** self.bias for c in candidates]
        chosen: List[int] = []
        for _ in range(k):
            total = sum(weights)
            pick = self._rng.random() * total
            acc = 0.0
            index = len(candidates) - 1
            for i, w in enumerate(weights):
                acc += w
                if pick < acc:
                    index = i
                    break
            chosen.append(candidates.pop(index))
            weights.pop(index)
        return chosen
