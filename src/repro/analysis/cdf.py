"""Empirical cumulative distribution functions.

The paper presents most results as CDFs over nodes ("percentage of nodes
(cumulative distribution)" vs stream lag or jitter).  :class:`Cdf` holds
the sample and answers both directions: the fraction of samples at or
below a value, and the value at a given fraction (percentile).
Infinite samples (nodes that never reach the target, e.g. lag = OFFLINE)
are kept: they weigh the denominator but never satisfy a threshold,
exactly like the paper's curves that saturate below 100%.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


class Cdf:
    """An empirical CDF over a finite sample (may include +inf)."""

    def __init__(self, values: Iterable[float]):
        self._values: List[float] = sorted(values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        """Value equality: two CDFs are equal iff their sorted samples
        are (the serial-vs-parallel parity tests compare whole CDFs)."""
        if not isinstance(other, Cdf):
            return NotImplemented
        return self._values == other._values

    __hash__ = None  # mutable-ish value semantics: not hashable

    def __repr__(self) -> str:  # pragma: no cover
        return f"Cdf(n={len(self._values)})"

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def fraction_at(self, x: float) -> float:
        """P(X <= x): fraction of samples at or below ``x``."""
        if not self._values:
            return 0.0
        # Binary search for the rightmost value <= x.
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self._values)

    def percentile(self, fraction: float) -> float:
        """Smallest x with P(X <= x) >= ``fraction``."""
        if not self._values:
            raise ValueError("percentile of an empty CDF")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        index = math.ceil(fraction * len(self._values)) - 1
        return self._values[index]

    def finite_fraction(self) -> float:
        """Fraction of samples that are finite (nodes that ever succeed)."""
        if not self._values:
            return 0.0
        finite = sum(1 for v in self._values if math.isfinite(v))
        return finite / len(self._values)

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting, thinned to at
        most ``max_points`` and excluding infinities."""
        finite = [v for v in self._values if math.isfinite(v)]
        if not finite:
            return []
        n = len(self._values)
        step = max(1, len(finite) // max_points)
        pts = [(finite[i], (i + 1) / n) for i in range(0, len(finite), step)]
        last = (finite[-1], len(finite) / n)
        if pts[-1] != last:
            pts.append(last)
        return pts
