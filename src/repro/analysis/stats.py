"""Small summary-statistics helpers (dependency-free, inf-aware)."""

from __future__ import annotations

import math
from typing import Iterable, List


def _finite(values: Iterable[float]) -> List[float]:
    return [v for v in values if math.isfinite(v)]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of the finite values; nan when none are finite."""
    finite = _finite(values)
    if not finite:
        return math.nan
    return sum(finite) / len(finite)


def median(values: Iterable[float]) -> float:
    """Median *including* infinities (an inf-heavy sample has inf median)."""
    ordered = sorted(values)
    if not ordered:
        return math.nan
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def percentile(values: Iterable[float], fraction: float) -> float:
    """Smallest x such that at least ``fraction`` of the values are <= x."""
    ordered = sorted(values)
    if not ordered:
        return math.nan
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    index = math.ceil(fraction * len(ordered)) - 1
    return ordered[index]


def stdev(values: Iterable[float]) -> float:
    """Population standard deviation of the finite values."""
    finite = _finite(values)
    if len(finite) < 2:
        return 0.0
    m = sum(finite) / len(finite)
    return math.sqrt(sum((v - m) ** 2 for v in finite) / len(finite))
