"""Grouping helpers for per-class breakdowns."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, TypeVar

T = TypeVar("T")
K = TypeVar("K")


def group_by(items: Iterable[T], key: Callable[[T], K]) -> Dict[K, List[T]]:
    """Group ``items`` into lists by ``key`` (insertion-ordered)."""
    groups: Dict[K, List[T]] = {}
    for item in items:
        groups.setdefault(key(item), []).append(item)
    return groups
