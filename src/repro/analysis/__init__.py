"""Analysis helpers: empirical CDFs, summary statistics, class grouping."""

from repro.analysis.cdf import Cdf
from repro.analysis.stats import mean, median, percentile, stdev
from repro.analysis.grouping import group_by

__all__ = ["Cdf", "group_by", "mean", "median", "percentile", "stdev"]
