"""Generator-based lightweight processes on top of the event engine.

A process is a generator that yields :class:`sleep` commands; the driver
resumes it after the requested simulated delay.  This gives sequential
"script-like" behaviour (useful for sources, churn injectors and tests)
without threads:

    def churn(sim):
        yield sleep(60.0)
        kill_some_nodes()
        yield sleep(10.0)
        notify_survivors()

    Process(sim, churn(sim)).start()
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Simulator


class sleep:  # noqa: N801 - command object reads like a keyword at yield sites
    """Yielded by a process to suspend itself for ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative sleep {delay!r}")
        self.delay = delay


class Process:
    """Drives a generator as a simulated process."""

    __slots__ = ("_sim", "_generator", "name", "finished", "_started",
                 "_handle")

    def __init__(self, sim: Simulator, generator: Generator[Any, None, None], name: str = ""):
        self._sim = sim
        self._generator = generator
        self.name = name
        self.finished = False
        self._started = False
        self._handle = None

    def start(self, delay: float = 0.0) -> "Process":
        """Schedule the first resumption ``delay`` seconds from now."""
        if self._started:
            raise RuntimeError(f"process {self.name!r} already started")
        self._started = True
        self._handle = self._sim.schedule(delay, self._resume)
        return self

    def stop(self) -> None:
        """Cancel any pending resumption and close the generator."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if not self.finished:
            self._generator.close()
            self.finished = True

    def _resume(self) -> None:
        self._handle = None
        try:
            command = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        if isinstance(command, sleep):
            self._handle = self._sim.schedule(command.delay, self._resume)
        elif command is None:
            self._handle = self._sim.call_soon(self._resume)
        else:
            self.finished = True
            raise TypeError(
                f"process {self.name!r} yielded {command!r}; expected sleep(...) or None"
            )


def run_process(sim: Simulator, generator: Generator[Any, None, None],
                name: str = "", delay: float = 0.0) -> Process:
    """Convenience: create and start a :class:`Process` in one call."""
    return Process(sim, generator, name=name).start(delay)
