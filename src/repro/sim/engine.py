"""Deterministic discrete-event simulator core.

The :class:`Simulator` keeps a *bucketed calendar queue*: events sharing
one exact timestamp live in a single FIFO bucket, and a small binary heap
orders the distinct timestamps.  Scheduling into an existing bucket is a
dict lookup plus a list append (no heap sift), which makes the dominant
workloads — synchronized gossip periods, retransmission deadlines, batched
datagram deliveries — much cheaper than a per-event binary heap while
keeping the exact same total order: (time, scheduling order).

Two scheduling APIs share the queue:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return a
  cancellable :class:`EventHandle` (the classic API);
* :meth:`Simulator.post_at` is the fire-and-forget fast path: it enqueues
  a bare callable with no handle allocation.  The network's datagram
  delivery path uses it — deliveries are never cancelled, so paying for a
  handle per datagram was pure overhead.

Cancellation is lazy (the handle is marked dead and skipped when its
bucket drains), keeping both operations O(1) amortized.  The number of
live events is tracked by counters, so :attr:`Simulator.pending_count`
is O(1) instead of a heap scan.
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from math import inf
from typing import Any, Callable, Dict, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to one scheduled event.

    ``callback`` doubles as the liveness marker: it is set to ``None``
    when the event fires or is cancelled, which gives the run loop a
    single cheap check per event.
    """

    __slots__ = ("callback", "_sim", "_cancelled")

    def __init__(self, sim: "Simulator", callback: Callable[[], Any]):
        self._sim = sim
        self.callback = callback

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when its time comes.

        Idempotent, and a no-op (beyond setting the flag) after the event
        has already fired — cancel-after-fire must not corrupt the
        simulator's live-event accounting.
        """
        if self.callback is not None:
            self.callback = None
            self._sim._cancels += 1
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True once cancel() has been called.

        Backed by a lazily-initialized slot: schedule() runs once per
        event and skips the ``False`` store, cancel() is rare.
        """
        try:
            return self._cancelled
        except AttributeError:
            return False

    @property
    def pending(self) -> bool:
        return self.callback is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self.callback is None:
            state = "fired"
        else:
            state = "pending"
        return f"EventHandle({state})"


#: Bypass EventHandle.__init__ on the scheduling hot path: a bare
#: object.__new__ plus inline slot stores measures ~40% cheaper than a
#: Python-level __init__ call, and schedule() runs once per event.
_new_handle = object.__new__


class Simulator:
    """A single-threaded discrete-event loop.

    Time starts at 0.0 and only moves forward.  All mutation of simulated
    state must happen inside event callbacks (or before :meth:`run` is
    called), which gives run-to-completion semantics per event.

    Ordering guarantee: events execute in (time, scheduling order) — the
    same total order as a (time, sequence-number) heap — regardless of
    whether they were enqueued via :meth:`schedule_at` or :meth:`post_at`.

    Counter granularity: :attr:`events_executed` (and therefore
    :attr:`pending_count`) is updated when :meth:`run` returns, not after
    every callback, so reads *from inside an event callback* may lag by
    the events executed so far in the current ``run()`` call.
    """

    __slots__ = ("_now", "_seq", "_cancels", "_buckets", "_theap",
                 "_events_executed", "_running", "_active", "_active_idx")

    def __init__(self) -> None:
        self._now = 0.0
        #: Total entries ever enqueued; doubles as the sequence counter.
        self._seq = 0
        #: Cancellations of still-pending events (see pending_count).
        self._cancels = 0
        #: Buckets: exact timestamp -> FIFO list of entries.  An entry is
        #: either an EventHandle or a bare callable (post_at fast path).
        #: Invariant relied on by repro.net.router.InprocRouter.route
        #: (which appends envelopes to the tail entry of a pending
        #: bucket): a bucket is popped from this dict *before* the run
        #: loop drains it, so any list reachable here is still entirely
        #: in the future — keep that true when changing the run loop.
        self._buckets: Dict[float, list] = {}
        #: Heap of distinct timestamps; each pushed once per bucket.
        self._theap: List[float] = []
        self._events_executed = 0
        self._running = False
        # Partially drained bucket left behind by a max_events stop.
        self._active: Optional[list] = None
        self._active_idx = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks run so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled, non-fired) events.  O(1)."""
        return self._seq - self._cancels - self._events_executed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, already at t={self._now:.6f}"
            )
        self._seq += 1
        handle = _new_handle(EventHandle)
        handle._sim = self
        handle.callback = callback
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [handle]
            _heappush(self._theap, time)
        else:
            bucket.append(handle)
        return handle

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        self._seq += 1
        handle = _new_handle(EventHandle)
        handle._sim = self
        handle.callback = callback
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [handle]
            _heappush(self._theap, time)
        else:
            bucket.append(handle)
        return handle

    def call_soon(self, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, callback)

    def post_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Fire-and-forget scheduling: no handle, no cancellation.

        This is the hot path for events that are never cancelled (datagram
        deliveries).  Ordering relative to handle-based events is exactly
        the scheduling order within a timestamp.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, already at t={self._now:.6f}"
            )
        self._seq += 1
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [callback]
            _heappush(self._theap, time)
        else:
            bucket.append(callback)

    def post(self, delay: float, callback: Callable[[], Any]) -> None:
        """Relative-delay variant of :meth:`post_at`."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.post_at(self._now + delay, callback)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next live event.  Returns False when nothing is pending."""
        before = self._events_executed
        self.run(max_events=1)
        return self._events_executed != before

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulated time when the run stopped.  When stopping at
        ``until``, the clock is advanced to exactly ``until`` so subsequent
        scheduling is relative to the requested horizon.

        If an event callback raises, the exception propagates; the events
        that shared the failing event's timestamp and had not yet run are
        discarded along with it (the simulator itself stays usable).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if max_events is None:
                return self._run_fast(until)
            return self._run_counted(until, max_events)
        finally:
            self._running = False

    def _run_fast(self, until: Optional[float]) -> float:
        """Unbounded run loop (no max_events bookkeeping per event)."""
        theap = self._theap
        buckets = self._buckets
        heappop = heapq.heappop
        HANDLE = EventHandle
        limit = inf if until is None else until
        executed = 0
        try:
            active = self._active
            if active is not None:
                # Resume a bucket a previous max_events stop left behind.
                # Its timestamp is self._now already; honor the horizon.
                if self._now > limit:
                    return self._now
                idx = self._active_idx
                self._active = None
                n = len(active)
                while idx < n:
                    obj = active[idx]
                    idx += 1
                    if obj.__class__ is HANDLE:
                        cb = obj.callback
                        if cb is None:
                            continue
                        obj.callback = None
                        cb()
                    else:
                        obj()
                    executed += 1
            while theap:
                t = theap[0]
                if t > limit:
                    break
                heappop(theap)
                active = buckets.pop(t)
                self._now = t
                for obj in active:
                    if obj.__class__ is HANDLE:
                        cb = obj.callback
                        if cb is None:
                            continue
                        obj.callback = None
                        cb()
                    else:
                        obj()
                    executed += 1
            if until is not None and self._now < until:
                # The horizon was reached (or the queue drained below it):
                # advance the clock so a subsequent run(until=...) call
                # continues from there.
                self._now = until
            return self._now
        finally:
            self._events_executed += executed

    def _run_counted(self, until: Optional[float], max_events: int) -> float:
        """Run loop honoring a max_events budget (rare path)."""
        theap = self._theap
        buckets = self._buckets
        heappop = heapq.heappop
        HANDLE = EventHandle
        limit = inf if until is None else until
        executed = 0
        stopped_on_max = False
        try:
            active = self._active
            idx = self._active_idx
            if active is not None:
                if self._now > limit:
                    return self._now
                # Adopt the bucket before draining it: if a callback
                # raises, its remainder is discarded (same contract as
                # _run_fast) instead of being left behind to re-execute.
                self._active = None
            while True:
                if active is None:
                    if not theap:
                        break
                    t = theap[0]
                    if t > limit:
                        break
                    heappop(theap)
                    active = buckets.pop(t)
                    idx = 0
                    self._now = t
                n = len(active)
                while idx < n:
                    obj = active[idx]
                    idx += 1
                    if obj.__class__ is HANDLE:
                        cb = obj.callback
                        if cb is None:
                            continue
                        obj.callback = None
                        cb()
                    else:
                        obj()
                    executed += 1
                    if executed >= max_events:
                        stopped_on_max = True
                        break
                if stopped_on_max:
                    break
                active = None
            if stopped_on_max and idx < len(active):
                # Remember the partially drained bucket for the next call.
                self._active = active
                self._active_idx = idx
            else:
                self._active = None
            if until is not None and not stopped_on_max and self._now < until:
                self._now = until
            return self._now
        finally:
            self._events_executed += executed

    def drain(self, limit: int = 10_000_000) -> int:
        """Run until no events remain; guards against runaway loops.

        Returns the number of events executed.  Raises
        :class:`SimulationError` if ``limit`` events execute without the
        queue draining, which almost always indicates an unintended
        self-rescheduling loop in a test.
        """
        before = self._events_executed
        self.run(max_events=limit)
        executed = self._events_executed - before
        if executed >= limit:
            raise SimulationError(f"drain() exceeded {limit} events")
        return executed
