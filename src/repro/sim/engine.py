"""Deterministic discrete-event simulator core.

The :class:`Simulator` keeps a binary heap of pending events ordered by
(time, sequence-number).  The sequence number makes event ordering total
and deterministic even when many events share the same timestamp, which is
common with synchronized gossip periods.

Events are plain callables.  Scheduling returns an :class:`EventHandle`
that can be cancelled; cancellation is lazy (the heap entry is marked dead
and skipped when popped) which keeps both operations O(log n) or better.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to one scheduled event."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when its time comes."""
        self.cancelled = True
        self.callback = _NOOP

    @property
    def pending(self) -> bool:
        return not self.cancelled and self.callback is not _DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _NOOP() -> None:
    return None


def _DONE() -> None:  # sentinel distinguishing fired events from live ones
    return None


class Simulator:
    """A single-threaded discrete-event loop.

    Time starts at 0.0 and only moves forward.  All mutation of simulated
    state must happen inside event callbacks (or before :meth:`run` is
    called), which gives run-to-completion semantics per event.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        # Heap entries are (time, seq, handle) tuples so ordering uses
        # C-level tuple comparison — measurably faster than rich
        # comparison on handle objects in gossip-scale runs.
        self._heap: List[tuple] = []
        self._events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks run so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still in the heap."""
        return sum(1 for _, _, handle in self._heap if not handle.cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, already at t={self._now:.6f}"
            )
        handle = EventHandle(time, self._seq, callback)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        return handle

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback)

    def call_soon(self, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, callback)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next live event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self._now = time
            callback = handle.callback
            handle.callback = _DONE
            callback()
            self._events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulated time when the run stopped.  When stopping at
        ``until``, the clock is advanced to exactly ``until`` so subsequent
        scheduling is relative to the requested horizon.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            executed = 0
            stopped_on_max = False
            heappop = heapq.heappop
            while heap:
                time, _, handle = heap[0]
                if handle.cancelled:
                    heappop(heap)
                    continue
                if until is not None and time > until:
                    break
                heappop(heap)
                self._now = time
                callback = handle.callback
                handle.callback = _DONE
                callback()
                self._events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    stopped_on_max = True
                    break
            if until is not None and not stopped_on_max and self._now < until:
                # We stopped because the horizon was reached (or the heap
                # drained below it): advance the clock to the horizon so a
                # subsequent run(until=...) continues from there.
                self._now = until
            return self._now
        finally:
            self._running = False

    def drain(self, limit: int = 10_000_000) -> int:
        """Run until no events remain; guards against runaway loops.

        Returns the number of events executed.  Raises
        :class:`SimulationError` if ``limit`` events execute without the
        heap draining, which almost always indicates an unintended
        self-rescheduling loop in a test.
        """
        executed = 0
        while self.step():
            executed += 1
            if executed >= limit:
                raise SimulationError(f"drain() exceeded {limit} events")
        return executed
