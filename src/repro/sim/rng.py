"""Named, seeded random-number streams.

Every source of randomness in an experiment (latency jitter, message
loss, peer selection, churn victim choice, workload assignment, ...)
draws from its own named stream derived from one master seed.  This keeps
experiments bit-for-bit reproducible *and* lets one vary a single source
of randomness (e.g. reshuffle peer selection) while holding the others
fixed — which the ablation benches rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 rather than Python's salted ``hash()`` so derivation is
    stable across interpreter runs and versions.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named :class:`random.Random` streams from one master seed."""

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the same generator
        object, so consumption is shared between call sites on purpose.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Create an independent child registry (e.g. one per node)."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
