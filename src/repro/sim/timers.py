"""Cancellable one-shot and periodic timers built on the event engine.

These mirror the timers used in the paper's pseudo-code:
``GossipTimer(gossipPeriod)``, ``AggregationTimer(aggPeriod)`` and
``RetTimer(retPeriod, ...)`` all map onto :class:`PeriodicTimer` or
:class:`OneShotTimer`.

Timer scheduling rides the engine's bucketed calendar queue: timers that
fire at the same exact timestamp (synchronized periods, shared
retransmission deadlines) coalesce into one bucket and cost a list
append instead of a heap sift, while firing order stays exactly
(deadline, arming order).  Fire-and-forget deadlines that are never
cancelled — retransmission expiries, datagram deliveries — should use
``Simulator.post``/``post_at`` directly and skip the handle allocation;
the classes here keep handles because they support ``cancel``/``stop``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, SimulationError, Simulator


class OneShotTimer:
    """Fires a callback once after ``delay`` seconds; can be cancelled or restarted."""

    __slots__ = ("_sim", "_callback", "_handle")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    def start(self, delay: float) -> None:
        """Arm the timer.  Restarting an armed timer reschedules it."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and self._handle.pending

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTimer:
    """Fires a callback every ``period`` seconds until stopped.

    The first tick fires ``phase`` seconds after :meth:`start` (defaulting
    to one full period).  Gossip nodes start with a random phase in
    ``[0, period)`` so that rounds are not system-synchronized — pass that
    phase explicitly to keep determinism in the caller's RNG stream.
    """

    __slots__ = ("_sim", "_callback", "_period", "_handle", "ticks")

    def __init__(self, sim: Simulator, period: float, callback: Callable[[], Any]):
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self.ticks = 0

    @property
    def period(self) -> float:
        return self._period

    @property
    def running(self) -> bool:
        return self._handle is not None

    def start(self, phase: Optional[float] = None) -> None:
        if self._handle is not None:
            raise SimulationError("timer already running")
        delay = self._period if phase is None else phase
        self._handle = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        # Reschedule before invoking the callback so the callback may call
        # stop() to terminate the cycle.
        self._handle = self._sim.schedule(self._period, self._tick)
        self.ticks += 1
        self._callback()
