"""Discrete-event simulation substrate.

This package provides the deterministic discrete-event engine every other
subsystem runs on: a schedulable event loop (:class:`~repro.sim.engine.Simulator`),
cancellable one-shot and periodic timers, named seeded random-number
streams, and a light generator-based process abstraction.

The engine is deliberately dependency-free and favours a small, explicit
API over magic: callbacks are plain callables, time is a float number of
seconds, and determinism comes from a single master seed fanned out into
named streams (see :class:`~repro.sim.rng.RngRegistry`).
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.process import Process, sleep
from repro.sim.rng import RngRegistry
from repro.sim.timers import OneShotTimer, PeriodicTimer

__all__ = [
    "EventHandle",
    "OneShotTimer",
    "PeriodicTimer",
    "Process",
    "RngRegistry",
    "Simulator",
    "sleep",
]
