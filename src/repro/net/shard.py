"""Sharded single-scenario execution: one large run across worker shards.

The parallel grid engine (PR 1) scales *across* runs; this module scales
*within* one.  The node population is partitioned round-robin over
``config.shards`` shards.  Every shard builds the **entire** scenario —
setup is cheap and must consume the shared setup streams in serial order
so each shard assigns the same capacities, views and phases — but starts
only the nodes it owns.  Delivery is where the partition becomes real: a
:class:`ShardRouter` (the pluggable delivery router of
:mod:`repro.net.router`) keeps owned-destination datagrams on the exact
in-process path and serializes remote-destination datagrams into
kind-id-tagged wire tuples collected in per-target-shard outboxes.

**Time synchronization** is conservative, with the latency model's lower
bound as lookahead: a datagram sent at time *t* cannot arrive before
``t + lookahead``, so shards run in lockstep windows of that width and
exchange outboxes at every boundary — any message a shard receives at a
barrier is scheduled strictly inside a *future* window, never a past
one.  No rollback, no speculation.

**Determinism.** A sharded run produces byte-identical metric summaries
to the serial run of the same scenario, because nothing observable
depends on the global event order that sharding gives up:

* all protocol randomness is drawn from per-node forked streams;
* network randomness must be order-independent, which is why sharded
  scenarios require ``latency_rng="per-pair"`` (per-link streams) and,
  when lossy, ``loss_rng="per-pair"`` (per-link Bernoulli trials —
  ``ScenarioConfig.validate`` enforces both);
* receiver-side stats are commutative counters, merged per shard.

**Membership churn** is *replicated*: every shard builds the whole
scenario, so every shard holds an identical copy of the churn and
detection streams and draws the same victims, the same detection delays,
at the same simulated times — crash state (``Network._crash_time``, the
directory's alive set, survivors' views) stays serial-exact on every
shard without any crash needing to cross the partition for correctness.
What *does* cross is verification: the victim's owner shard announces
each crash as a **control row** riding the packed window buffer
(``EVENT_CRASH`` in the ``kind_id`` field, which is negative precisely
because payload kind ids are not), and every peer shard checks the
announcement against its replica at the barrier, raising loudly if the
replicas ever diverged instead of silently computing garbage.

**The freerider audit** shards by ownership: a node's detector runs
wholly on its owner shard (audit randomness comes from per-node forked
streams, and the reports it merges are ordinary datagrams that already
cross the partition), and each shard's harvest carries picklable
detector snapshots so merged results compute convictions from the full
population's evidence, not per-shard fragments.

**Wire format.**  By default a whole window's outbox to one peer shard is
*batched* into a single packed buffer::

    (WIRE_BATCH_TAG, n_rows,
     header_table,    # n_rows struct-packed rows of
                      #   (kind_id, src, dst, size_bytes, payload_ref,
                      #    send_time, exit_time, arrival_time)
     payload_pool)    # ONE pickle of the list of distinct payloads

so serialization is paid once per (window, peer shard) instead of once
per datagram, and *multicast payloads are interned*: a ``send_many``
fan-out whose destinations cross a shard boundary ships its payload
object once per peer shard — each header row references it by pool index
— not once per destination.  The pool pickle also shares class/global
references across same-kind payloads, which individual per-envelope
pickles re-encode every time.  Interning keys on object identity, which
is safe because payloads are immutable once sent (see
:class:`repro.net.message.Payload`) and the pool holds them alive until
the barrier packs the buffer.

The pre-batching format — one wire tuple per envelope, its payload
pickled per datagram::

    (src, dst, kind_id, size_bytes, send_time, exit_time, arrival_time,
     payload_blob)

survives behind ``ShardRouter(batch_wire=False)`` as the escape hatch
the parity tests and the byte-reduction benchmark compare against.
Either way the interned integer kind id (PR 3's dispatch currency) is
the routing tag; workers handshake their kind-id registries at startup
so an id means the same payload class in every process, and both decode
paths validate the tag against the unpickled payload.

What crosses the wire is accounted in the
:class:`~repro.net.stats.NetworkStats` ``wire_*`` counters (buffers,
envelopes, serialized bytes, payload bytes before/after interning), so
the barrier's cost is a measurable number instead of a wall-clock
mystery.
"""

from __future__ import annotations

import os
import pickle
import struct
import sys
import threading
import traceback
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.faults import clock
from repro.faults.failures import ShardFailure
from repro.faults.inject import SHARD_EXIT_CODE
from repro.faults.policy import ShardSupervision, default_shard_supervision
from repro.net.message import Envelope, kind_name, registered_kinds
from repro.net.router import InprocRouter, POOL_CAP
from repro.net.stats import NetworkStats
from repro.workloads.scenario import ScenarioConfig

#: A cross-shard envelope on the wire (escape-hatch format).
WireEnvelope = Tuple[int, int, int, int, float, float, float, bytes]

#: First element of a packed window buffer; distinguishes it from a
#: per-envelope wire tuple, whose first element is a node id (>= 0).
WIRE_BATCH_TAG = -1

#: First element of a control wire tuple on the per-envelope escape
#: hatch: (WIRE_CONTROL_TAG, event, node_id, origin_shard, event_time).
WIRE_CONTROL_TAG = -2

#: Ownership-level membership events.  On the batched path they ride the
#: packed buffer's header table in the ``kind_id`` field — payload kind
#: ids are non-negative, so a negative id marks the row as control, not
#: datagram: (event, node_id, origin_shard, 0, _NO_PAYLOAD, event_time,
#: 0.0, 0.0).
EVENT_CRASH = -2
#: Reserved for a join protocol (nodes entering mid-run).
EVENT_JOIN = -3

_EVENT_NAMES = {EVENT_CRASH: "crash", EVENT_JOIN: "join"}

#: ``payload_ref`` of a control row: references no pool entry.
_NO_PAYLOAD = -1

#: One header-table row of a packed buffer:
#: (kind_id, src, dst, size_bytes, payload_ref, send_time, exit_time,
#: arrival_time).
_ROW = struct.Struct("<iiiiiddd")

#: A packed window buffer: (WIRE_BATCH_TAG, n_rows, header_table, pool_blob).
WireBatch = Tuple[int, int, bytes, bytes]

_PICKLE = pickle.HIGHEST_PROTOCOL


def shard_of(node_id: int, shards: int) -> int:
    """The shard owning ``node_id`` (round-robin keeps capability classes
    balanced across shards, since assignment order is index-driven)."""
    return node_id % shards


def partition(n_nodes: int, shards: int, shard_index: int) -> Set[int]:
    """The node ids owned by one shard."""
    return set(range(shard_index, n_nodes, shards))


def encode_envelope(envelope: Envelope, kind_id: int) -> WireEnvelope:
    """Serialize an envelope for the cross-shard exchange."""
    return (envelope.src, envelope.dst, kind_id, envelope.size_bytes,
            envelope.send_time, envelope._exit_time, envelope.arrival_time,
            pickle.dumps(envelope.payload, protocol=pickle.HIGHEST_PROTOCOL))


def _check_kind(payload, kind_id: int) -> None:
    """Validate an unpickled payload against its wire kind tag."""
    if payload.kind_id != kind_id:
        raise ValueError(
            f"cross-shard kind mismatch: wire tag {kind_id} "
            f"({kind_name(kind_id)!r}) vs payload {payload.kind_id} "
            f"({payload.kind!r}) — worker kind registries diverged")


def decode_envelope(wire: WireEnvelope) -> Envelope:
    """Rebuild an envelope from its wire tuple, validating the kind tag."""
    src, dst, kind_id, size, send_time, exit_time, arrival, blob = wire
    payload = pickle.loads(blob)
    _check_kind(payload, kind_id)
    return Envelope.arrived(src, dst, payload, size, send_time, exit_time,
                            arrival)


def _decode_batch(batch: WireBatch, on_control=None) -> Iterator[Envelope]:
    """Decode a packed window buffer into envelopes, in row order.

    One ``pickle.loads`` rebuilds the payload pool; every header row then
    costs a struct unpack plus one envelope construction — no per-row
    pickling, no per-row scheduling (the caller feeds this straight into
    :meth:`~repro.net.router.InprocRouter.route_many`, which groups
    same-arrival rows into one arrival bucket).

    Control rows (negative ``kind_id``) are not envelopes: they are
    handed to ``on_control(event, node_id, origin_shard, event_time)``
    in row order and never yielded.  A buffer containing control rows
    decoded without a handler is a protocol error.
    """
    _tag, n_rows, header, blob = batch
    if len(header) != n_rows * _ROW.size:
        raise ValueError(
            f"corrupt cross-shard buffer: {n_rows} rows declared but "
            f"{len(header)} header bytes ({_ROW.size} per row)")
    payloads = pickle.loads(blob)
    arrived = Envelope.arrived
    for (kind_id, src, dst, size, ref, send_time, exit_time,
         arrival) in _ROW.iter_unpack(header):
        if kind_id < 0:
            if on_control is None:
                raise ValueError(
                    f"control row ({_EVENT_NAMES.get(kind_id, kind_id)!r} "
                    f"of node {src}) in a buffer decoded without a "
                    f"control handler")
            on_control(kind_id, src, dst, send_time)
            continue
        payload = payloads[ref]
        _check_kind(payload, kind_id)
        yield arrived(src, dst, payload, size, send_time, exit_time, arrival)


class ShardRouter(InprocRouter):
    """Delivery router for one shard of a partitioned population.

    Owned destinations take the inherited in-process path (arrival
    bucketing, batched receiver stats — identical semantics to a serial
    run).  Remote destinations accumulate in per-target-shard outboxes
    exchanged at the next window barrier; the sending side's stats were
    already accounted by ``Network.send``, so a forwarded envelope costs
    the receiver shard exactly what a local delivery would.

    With ``batch_wire=True`` (the default) a window's outbox to one peer
    shard is packed into a single buffer — struct rows at route time,
    one payload-pool pickle at the barrier, multicast payloads interned
    by object identity (see the module docstring).  ``batch_wire=False``
    is the pre-batching per-envelope escape hatch, kept for the parity
    tests and the byte-reduction benchmark that quantify the batching
    win; it pickles every payload per datagram.
    """

    __slots__ = ("owned", "shards", "shard_index", "batch_wire", "_outboxes",
                 "_rows", "_pools", "_interned", "_refcounts", "_recycle",
                 "_membership_seen", "_row_controls")

    def __init__(self, owned: Set[int], shards: int,
                 batch_wire: bool = True):
        super().__init__()
        self.owned = owned
        self.shards = shards
        #: This shard's index, recovered from the round-robin partition.
        self.shard_index = shard_of(min(owned), shards) if owned else 0
        self.batch_wire = batch_wire
        #: Membership events this shard's *replica* produced:
        #: (event, node_id) -> event time.  Owner announcements arriving
        #: at a barrier are verified against this record.
        self._membership_seen: Dict[Tuple[int, int], float] = {}
        #: Escape hatch: per-target-shard lists of per-envelope tuples.
        self._outboxes: List[List[WireEnvelope]] = [[] for _ in range(shards)]
        #: Batched path, all per target shard: packed header rows, the
        #: distinct payloads in first-reference order, the identity
        #: intern map id(payload) -> pool index (the pool's strong
        #: reference pins the id until the barrier clears both), and the
        #: per-pool-entry reference counts feeding the before-interning
        #: byte counter.
        self._rows: List[List[bytes]] = [[] for _ in range(shards)]
        self._pools: List[list] = [[] for _ in range(shards)]
        self._interned: List[Dict[int, int]] = [{} for _ in range(shards)]
        self._refcounts: List[List[int]] = [[] for _ in range(shards)]
        #: Control rows among ``_rows`` this window, per target shard
        #: (they ride the header table but are not envelopes, so the
        #: wire_envelopes counter must not include them).
        self._row_controls: List[int] = [0] * shards
        #: Remote-destination envelopes awaiting recycling: they never
        #: come back through a local delivery, so without this the free
        #: list would drain.  Recycled at the window barrier, which
        #: honours ``Network.send``'s contract that the returned
        #: envelope stays readable until delivery could have happened.
        self._recycle: List[Envelope] = []

    def route(self, envelope: Envelope) -> None:
        dst = envelope.dst
        if dst in self.owned:
            InprocRouter.route(self, envelope)
            return
        shard = dst % self.shards
        if self.batch_wire:
            payload = envelope.payload
            interned = self._interned[shard]
            key = id(payload)
            ref = interned.get(key)
            if ref is None:
                pool = self._pools[shard]
                ref = len(pool)
                interned[key] = ref
                pool.append(payload)
                self._refcounts[shard].append(1)
            else:
                self._refcounts[shard][ref] += 1
            self._rows[shard].append(_ROW.pack(
                payload.kind_id, envelope.src, dst, envelope.size_bytes, ref,
                envelope.send_time, envelope._exit_time,
                envelope.arrival_time))
        else:
            wire = encode_envelope(envelope, envelope.payload.kind_id)
            stats = self._net.stats
            stats.wire_buffers += 1
            stats.wire_envelopes += 1
            blob_len = len(wire[7])
            stats.wire_payload_bytes_before += blob_len
            stats.wire_payload_bytes += blob_len
            # What IPC actually ships for this envelope: the whole tuple.
            stats.wire_bytes += len(pickle.dumps(wire, protocol=_PICKLE))
            self._outboxes[shard].append(wire)
        if self._net._pool is not None:
            self._recycle.append(envelope)

    def on_membership_event(self, event: int, node_id: int,
                            event_time: float) -> None:
        """Record a replicated membership change; announce it if owned.

        Called by the scenario's churn machinery on *every* shard (churn
        is replicated, see the module docstring).  Each shard records the
        event as what its replica computed; the shard owning ``node_id``
        additionally emits a control row to every peer shard, which peers
        verify against their own record at the barrier.
        """
        self._membership_seen[(event, node_id)] = event_time
        if node_id not in self.owned:
            return
        stats = self._net.stats
        for shard in range(self.shards):
            if shard == self.shard_index:
                continue
            if self.batch_wire:
                self._rows[shard].append(_ROW.pack(
                    event, node_id, self.shard_index, 0, _NO_PAYLOAD,
                    event_time, 0.0, 0.0))
                self._row_controls[shard] += 1
            else:
                wire = (WIRE_CONTROL_TAG, event, node_id, self.shard_index,
                        event_time)
                stats.wire_buffers += 1
                stats.wire_bytes += len(pickle.dumps(wire, protocol=_PICKLE))
                self._outboxes[shard].append(wire)
            stats.wire_control_rows += 1

    def _check_membership(self, event: int, node_id: int, origin_shard: int,
                          event_time: float) -> None:
        """Verify an owner shard's announcement against our replica."""
        recorded = self._membership_seen.get((event, node_id))
        if recorded == event_time:
            return
        name = _EVENT_NAMES.get(event, repr(event))
        local = ("never produced it" if recorded is None
                 else f"produced it at t={recorded}")
        raise RuntimeError(
            f"membership divergence: shard {origin_shard} announced "
            f"{name} of node {node_id} at t={event_time}, but shard "
            f"{self.shard_index}'s replica {local} — replicated churn "
            f"streams are out of sync")

    def _pack_outboxes(self) -> List[List[WireBatch]]:
        """Freeze the window's accumulated rows/pools into wire buffers."""
        dumps = pickle.dumps
        out: List[List[WireBatch]] = []
        for shard in range(self.shards):
            rows = self._rows[shard]
            if not rows:
                out.append([])
                continue
            stats = self._net.stats
            pool = self._pools[shard]
            header = b"".join(rows)
            blob = dumps(pool, protocol=_PICKLE)
            stats.wire_buffers += 1
            stats.wire_envelopes += len(rows) - self._row_controls[shard]
            stats.wire_bytes += len(header) + len(blob)
            stats.wire_payload_bytes += len(blob)
            # What the per-envelope path would have shipped: every
            # reference pickled individually.  Identical payloads pickle
            # to identical blobs, so refcount * individual size is exact.
            # Costs one extra dumps per *distinct* payload per window —
            # a small fraction of a window's simulation work, and the
            # price of the counter being a measurement, not an estimate.
            stats.wire_payload_bytes_before += sum(
                count * len(dumps(payload, protocol=_PICKLE))
                for payload, count in zip(pool, self._refcounts[shard]))
            out.append([(WIRE_BATCH_TAG, len(rows), header, blob)])
            self._rows[shard] = []
            self._pools[shard] = []
            self._interned[shard] = {}
            self._refcounts[shard] = []
            self._row_controls[shard] = 0
        return out

    def take_outboxes(self) -> List[list]:
        """Drain and return the per-target-shard outboxes.

        Called at a window barrier.  Batched mode returns at most one
        packed buffer per target shard (this is where the pool pickle
        and the wire counters are paid); the escape hatch returns the
        per-envelope tuples.  Envelopes serialized during the window are
        returned to the free list here (no caller can hold them past
        their send event's window under ``send``'s contract).
        """
        if self.batch_wire:
            out: List[list] = self._pack_outboxes()
        else:
            out = self._outboxes
            self._outboxes = [[] for _ in range(self.shards)]
        pending = self._recycle
        if pending:
            pool = self._net._pool
            if pool is not None:
                room = POOL_CAP - len(pool)
                if room > 0:
                    pool.extend(pending[:room])
            self._recycle = []
        return out

    def inject(self, wires: Iterable) -> None:
        """Schedule envelopes received from other shards.

        Called at a window barrier; the conservative lookahead
        guarantees every arrival time lies strictly beyond the shard's
        current clock.  Accepts packed window buffers, per-envelope
        tuples and control tuples alike (the tag distinguishes them), so
        all wire formats — and mixtures, during a future migration —
        decode through one entry point.  Membership control rows are
        verified against this shard's replica, never re-applied (the
        replica already applied the change — see the module docstring).
        """
        for wire in wires:
            tag = wire[0]
            if tag == WIRE_BATCH_TAG:
                self.route_many(_decode_batch(wire, self._check_membership))
            elif tag == WIRE_CONTROL_TAG:
                _, event, node_id, origin_shard, event_time = wire
                self._check_membership(event, node_id, origin_shard,
                                       event_time)
            else:
                InprocRouter.route(self, decode_envelope(wire))


# ----------------------------------------------------------------------
# per-shard execution (used by both the serial and the process driver)
# ----------------------------------------------------------------------
class _ShardRun:
    """One shard's build plus its windowed-execution state."""

    __slots__ = ("shard_index", "owned", "router", "build")

    def __init__(self, config: ScenarioConfig, shard_index: int,
                 batch_wire: bool = True):
        from repro.experiments.runner import build_scenario

        self.shard_index = shard_index
        self.owned = partition(config.n_nodes, config.shards, shard_index)
        self.router = ShardRouter(self.owned, config.shards,
                                  batch_wire=batch_wire)
        self.build = build_scenario(config, owned=self.owned,
                                    router=self.router)

    def run_window(self, until: float) -> List[list]:
        self.build.sim.run(until=until)
        return self.router.take_outboxes()

    def harvest(self) -> dict:
        """Everything the coordinator needs from this shard, picklable."""
        from repro.experiments.runner import _collect_attacker_stats

        build = self.build
        return {
            "shard": self.shard_index,
            "logs": {i: build.nodes[i].log for i in sorted(self.owned)},
            "uplinks": {i: build.net.uplink(i) for i in sorted(self.owned)},
            "served": {i: getattr(build.nodes[i], "packets_served", 0)
                       for i in sorted(self.owned)},
            "detectors": {i: build.detectors[i].snapshot()
                          for i in sorted(self.owned)
                          if i in build.detectors},
            # Only the owner's counters: the unstarted replicas of an
            # attacker on other shards never ran, so their zeros must not
            # reach the merge.
            "attacker_stats": _collect_attacker_stats(
                build.nodes, build.samplers, build.attackers,
                owned=self.owned),
            "attackers": build.attackers,
            # Replicated state: identical on every shard by construction;
            # the merge verifies that instead of assuming it.
            "crash_times": dict(build.crash_times),
            "stats": build.net.stats,
            "publish_times": build.publish_times,
            "labels": build.labels,
            "capacities": build.capacities,
            "freerider_ids": build.freerider_ids,
            "events_executed": build.sim.events_executed,
            "now": build.sim.now,
        }


def _windows(end: float, lookahead: float) -> Iterable[float]:
    """The window boundaries 0 < t_1 < t_2 <= ... ending exactly at ``end``."""
    t = 0.0
    while t < end:
        t = min(t + lookahead, end)
        yield t


def _lookahead(config: ScenarioConfig) -> float:
    lookahead = config.latency_floor
    if lookahead <= 0:
        raise ValueError("sharded execution needs a positive latency_floor")
    return lookahead


def window_count(config: ScenarioConfig, until: Optional[float] = None) -> int:
    """Number of window barriers a sharded run of ``config`` crosses.

    The benchmark divides the wire counters by this to report
    bytes-per-window; counting the actual boundary sequence sidesteps
    the float-accumulation drift a ``ceil(end / lookahead)`` estimate
    is exposed to.
    """
    end = until if until is not None else config.end_time
    return sum(1 for _ in _windows(end, _lookahead(config)))


# ----------------------------------------------------------------------
# serial driver: the whole windowed protocol in one process
# ----------------------------------------------------------------------
def _run_serial_shards(config: ScenarioConfig, end: float,
                       batch_wire: bool = True) -> List[dict]:
    """Drive every shard in-process, round-robin per window.

    Functionally identical to the process driver (same windows, same
    exchange order), without IPC: used on 1-CPU hosts, inside daemonic
    pool workers (which may not fork children), and by tests that pin
    down the windowed algorithm itself.
    """
    runs = [_ShardRun(config, i, batch_wire) for i in range(config.shards)]
    lookahead = _lookahead(config)
    for t in _windows(end, lookahead):
        outboxes = [run.run_window(t) for run in runs]
        for target, run in enumerate(runs):
            for source in range(config.shards):
                run.router.inject(outboxes[source][target])
    return [run.harvest() for run in runs]


# ----------------------------------------------------------------------
# process driver: one worker process per shard, coordinator as message hub
# ----------------------------------------------------------------------
class _WorkerLink:
    """A shard worker's pipe end, safe to send on from two threads.

    ``Connection.send`` is not thread-safe, and the worker writes from
    both its main loop (windows, done, error) and its heartbeat thread —
    a lock serializes the frames so they can never interleave.
    """

    __slots__ = ("conn", "lock")

    def __init__(self, conn) -> None:
        self.conn = conn
        self.lock = threading.Lock()

    def send(self, message) -> None:
        with self.lock:
            self.conn.send(message)


def _heartbeat_loop(link: _WorkerLink, interval: float,
                    stop: threading.Event) -> None:
    """Emit ``("hb",)`` frames until stopped or the pipe goes away.

    Heartbeats are liveness evidence only — the coordinator consumes
    them without advancing the barrier protocol — so a shard that is
    alive but slow (building a large scenario, running a long window)
    is distinguishable from one that is dead or wedged.
    """
    while not stop.wait(interval):
        try:
            link.send(("hb",))
        except (OSError, ValueError):  # pipe closed: worker is exiting
            return


def _apply_shard_fault(faults, shard_index: int, window_index: int,
                       outboxes: List[list], shards: int) -> None:
    """Apply any injected shard fault due at this (shard, window).

    Runs inside the worker, just before the window message is sent —
    the exact point where a real failure is most damaging, because the
    peers are already committed to waiting at the barrier.
    """
    if faults.shard_exit is not None \
            and faults.shard_exit == (shard_index, window_index):
        os._exit(SHARD_EXIT_CODE)
    if faults.shard_stall is not None \
            and faults.shard_stall[:2] == (shard_index, window_index):
        clock.sleep(faults.shard_stall[2])
    if faults.drop_wire is not None \
            and faults.drop_wire == (shard_index, window_index):
        # Corrupt the outbox to one peer: a packed buffer whose header
        # is torn off.  The receiving shard's codec detects it (row
        # count vs header bytes) and errors — transport faults surface
        # as structured failures, never as silently lost messages.
        peer = (shard_index + 1) % shards
        outboxes[peer] = [(WIRE_BATCH_TAG, 1, b"",
                           pickle.dumps([], protocol=_PICKLE))]


def _shard_worker(conn, config: ScenarioConfig, shard_index: int,
                  end: float, batch_wire: bool = True,
                  heartbeat_interval: float = 0.5) -> None:
    """Worker entry point (module-level: importable under spawn)."""
    link = _WorkerLink(conn)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop, args=(link, heartbeat_interval, stop),
        name=f"repro-shard-{shard_index}-hb", daemon=True)
    faults = config.faults
    try:
        run = _ShardRun(config, shard_index, batch_wire)
        link.send(("hello", registered_kinds()))
        beat.start()
        lookahead = _lookahead(config)
        for window_index, t in enumerate(_windows(end, lookahead)):
            outboxes = run.run_window(t)
            if faults is not None:
                _apply_shard_fault(faults, shard_index, window_index,
                                   outboxes, config.shards)
            link.send(("window", t, outboxes))
            tag, inbound = conn.recv()
            if tag != "deliver":  # pragma: no cover - protocol error
                raise RuntimeError(f"unexpected coordinator message {tag!r}")
            run.router.inject(inbound)
        link.send(("done", run.harvest()))
    except Exception:
        try:
            link.send(("error", traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - pipe gone
            pass
    finally:
        stop.set()
        conn.close()


def _check_kind_registries(hellos: Sequence[Tuple[str, ...]]) -> None:
    """All workers must agree on the kind-id registry, and each worker's
    registry must be a prefix of the coordinator's (the coordinator may
    have interned extra ad-hoc kinds after import time, e.g. in tests;
    workers spawned fresh only hold the import-time kinds)."""
    first = hellos[0]
    for i, kinds in enumerate(hellos[1:], start=1):
        if kinds != first:
            raise RuntimeError(
                f"shard 0 and shard {i} registered different payload "
                f"kinds; cross-shard kind ids would be ambiguous")
    mine = registered_kinds()
    if mine[:len(first)] != first:
        raise RuntimeError(
            "worker kind-id registry is not a prefix of the "
            "coordinator's; merged per-kind stats would be mislabelled")


def _run_process_shards(config: ScenarioConfig, end: float,
                        start_method: Optional[str],
                        batch_wire: bool = True,
                        supervision: Optional[ShardSupervision] = None,
                        ) -> List[dict]:
    """Spawn one worker per shard and relay their window exchanges.

    The gather at each barrier is *supervised*: the coordinator waits on
    every silent shard's pipe **and** its process sentinel, so a worker
    that dies mid-window surfaces immediately as a structured
    :class:`~repro.faults.failures.ShardFailure` (which shard, which
    window, last barrier reached) instead of deadlocking the barrier
    forever.  Workers heartbeat between frames; with
    ``supervision.barrier_timeout`` set, a shard that is alive but
    wedged trips the deadline and fails with its heartbeat age in the
    diagnostic.
    """
    import multiprocessing
    from multiprocessing import connection as mpconn

    if supervision is None:
        supervision = default_shard_supervision()
    if start_method is None:
        start_method = ("fork" if "fork"
                        in multiprocessing.get_all_start_methods()
                        else "spawn")
    ctx = multiprocessing.get_context(start_method)
    shards = config.shards
    conns = []
    workers = []
    harvests: List[Optional[dict]] = [None] * shards
    last_heartbeat = [clock.monotonic()] * shards
    last_barrier = [-1] * shards

    def _fail(message: str) -> None:
        for worker in workers:
            worker.terminate()
        raise RuntimeError(message)

    def _die(failure: ShardFailure) -> None:
        # Reap the survivors before raising: a stalled worker would
        # otherwise hold the join in the finally block for its full
        # sleep, and an injected-crash run would leak live processes.
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        raise failure

    def _recv(i: int, window_index: int):
        """One frame from shard ``i``; heartbeats return None."""
        try:
            msg = conns[i].recv()
        except (EOFError, OSError):
            workers[i].join(timeout=1.0)
            _die(ShardFailure(
                i, window_index, last_barrier[i], "exited",
                f"worker exit code {workers[i].exitcode}"))
        last_heartbeat[i] = clock.monotonic()
        if msg[0] == "hb":
            return None
        if msg[0] == "error":
            _die(ShardFailure(i, window_index, last_barrier[i], "failed",
                              msg[1]))
        return msg

    def _gather(window_index: int) -> List[tuple]:
        """One protocol message per shard, supervised (see above)."""
        msgs: List[Optional[tuple]] = [None] * shards
        deadline = (clock.monotonic() + supervision.barrier_timeout
                    if supervision.barrier_timeout is not None else None)
        while True:
            for i in range(shards):
                while msgs[i] is None and conns[i].poll(0):
                    msgs[i] = _recv(i, window_index)
            waiting = [i for i in range(shards) if msgs[i] is None]
            if not waiting:
                return msgs  # type: ignore[return-value]
            waitables = [conns[i] for i in waiting]
            waitables.extend(workers[i].sentinel for i in waiting)
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - clock.monotonic())
            if mpconn.wait(waitables, timeout):
                continue
            silent = waiting[0]
            age = clock.monotonic() - last_heartbeat[silent]
            _die(ShardFailure(
                silent, window_index, last_barrier[silent],
                "missed the barrier deadline",
                f"no message within {supervision.barrier_timeout:g}s "
                f"(last heartbeat {age:.1f}s ago)"))

    try:
        for i in range(shards):
            parent, child = ctx.Pipe()
            worker = ctx.Process(
                target=_shard_worker,
                args=(child, config, i, end, batch_wire,
                      supervision.heartbeat_interval),
                name=f"repro-shard-{i}")
            worker.start()
            child.close()
            conns.append(parent)
            workers.append(worker)

        hellos = _gather(-1)
        if {msg[0] for msg in hellos} != {"hello"}:  # pragma: no cover
            _fail(f"shards desynchronized before the first window: "
                  f"{[msg[0] for msg in hellos]}")
        _check_kind_registries([msg[1] for msg in hellos])
        window_index = 0
        while any(h is None for h in harvests):
            msgs = _gather(window_index)
            tags = {msg[0] for msg in msgs}
            if tags == {"window"}:
                for i in range(shards):
                    last_barrier[i] = window_index
                # Deterministic relay: every target receives the union
                # of outboxes in shard order, each preserving its
                # sender's event order — the same order the serial
                # driver injects in.
                inbound: List[list] = [[] for _ in range(shards)]
                for _, _, outboxes in msgs:
                    for target in range(shards):
                        inbound[target].extend(outboxes[target])
                for target in range(shards):
                    try:
                        conns[target].send(("deliver", inbound[target]))
                    except (OSError, ValueError):
                        workers[target].join(timeout=1.0)
                        _die(ShardFailure(
                            target, window_index, last_barrier[target],
                            "exited",
                            f"pipe closed during delivery (worker exit "
                            f"code {workers[target].exitcode})"))
                window_index += 1
            elif tags == {"done"}:
                for i, msg in enumerate(msgs):
                    harvests[i] = msg[1]
            else:  # pragma: no cover - lockstep violation
                _fail(f"shards desynchronized: saw message tags {tags}")
    finally:
        for conn in conns:
            conn.close()
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():  # pragma: no cover - hung worker
                worker.terminate()
                worker.join()
    return harvests  # type: ignore[return-value]


# ----------------------------------------------------------------------
# merge: per-shard harvests -> one ExperimentResult
# ----------------------------------------------------------------------
class _MergedSim:
    """Result-facade over the per-shard simulators' final counters."""

    __slots__ = ("events_executed", "now")

    def __init__(self, events_executed: int, now: float):
        self.events_executed = events_executed
        self.now = now


class _MergedNet:
    """Result-facade exposing merged stats and the owned-shard uplinks."""

    __slots__ = ("stats", "_uplinks")

    def __init__(self, stats: NetworkStats, uplinks: Dict[int, object]):
        self.stats = stats
        self._uplinks = uplinks

    def uplink(self, node_id: int):
        return self._uplinks[node_id]

    @property
    def node_ids(self):
        return self._uplinks.keys()


class _LogHolder:
    """Stands in for a protocol node in a merged result: metrics reach
    for ``node.log``; the freerider analysis additionally for
    ``packets_served`` and ``delivered_count()``."""

    __slots__ = ("log", "packets_served")

    def __init__(self, log, packets_served: int = 0):
        self.log = log
        self.packets_served = packets_served

    def delivered_count(self) -> int:
        return len(self.log)


def merge_harvests(config: ScenarioConfig, harvests: List[dict]):
    """Assemble one :class:`~repro.experiments.runner.ExperimentResult`
    from per-shard harvests.

    Logs, uplinks, served counts and detector snapshots are disjoint by
    ownership; traffic stats are commutative sums; crash times are
    replicated state, verified equal across shards here (a mismatch
    means the replicated churn streams diverged — fail loudly rather
    than pick one).  ``events_executed`` is the sum over shards — a
    sharded run executes the same deliveries but different bucket events,
    so it is an activity measure, not a determinism key.
    """
    from repro.experiments.runner import ExperimentResult

    logs: Dict[int, object] = {}
    uplinks: Dict[int, object] = {}
    served: Dict[int, int] = {}
    detectors: Dict[int, object] = {}
    attacker_stats: Dict[int, Dict[str, int]] = {}
    stats = NetworkStats()
    events = 0
    now = 0.0
    crash_times = harvests[0]["crash_times"]
    attackers = harvests[0].get("attackers", {})
    for harvest in harvests:
        logs.update(harvest["logs"])
        uplinks.update(harvest["uplinks"])
        served.update(harvest.get("served", {}))
        detectors.update(harvest.get("detectors", {}))
        attacker_stats.update(harvest.get("attacker_stats", {}))
        stats.merge_from(harvest["stats"])
        events += harvest["events_executed"]
        now = max(now, harvest["now"])
        if harvest["crash_times"] != crash_times:
            raise RuntimeError(
                f"membership divergence: shard {harvest['shard']} "
                f"recorded crash times {harvest['crash_times']} but "
                f"shard {harvests[0]['shard']} recorded {crash_times}")
        if harvest.get("attackers", {}) != attackers:
            raise RuntimeError(
                f"adversary divergence: shard {harvest['shard']} placed "
                f"attackers {harvest.get('attackers', {})} but shard "
                f"{harvests[0]['shard']} placed {attackers}")
    nodes = [_LogHolder(logs[node_id], served.get(node_id, 0))
             for node_id in range(config.n_nodes)]
    source_shard = harvests[shard_of(0, config.shards)]
    return ExperimentResult(
        config,
        _MergedSim(events, now),
        _MergedNet(stats, uplinks),
        directory=None,
        nodes=nodes,
        publish_times=source_shard["publish_times"],
        capacities=harvests[0]["capacities"],
        labels=harvests[0]["labels"],
        crash_times=dict(crash_times),
        freerider_ids=harvests[0]["freerider_ids"],
        detectors=detectors,
        attackers=attackers,
        attacker_stats=attacker_stats,
    )


def run_sharded(config: ScenarioConfig, until: Optional[float] = None,
                start_method: Optional[str] = None,
                processes: Optional[bool] = None,
                batch_wire: bool = True,
                supervision: Optional[ShardSupervision] = None):
    """Run one scenario partitioned across ``config.shards`` shards.

    Returns a merged ``ExperimentResult`` whose metric summaries are
    byte-identical to the serial run of the same scenario.

    ``processes=None`` picks worker processes when the platform allows
    (and falls back to the in-process serial driver inside daemonic
    workers, which may not spawn children, or on single-CPU hosts where
    extra processes can only add overhead).  ``start_method`` pins the
    multiprocessing start method (tests use ``"spawn"`` to prove the
    workers' builds are import-clean).  ``batch_wire=False`` selects the
    per-envelope wire escape hatch (parity tests and the byte-reduction
    benchmark only; summaries are byte-identical either way).

    ``supervision`` (default: the process-wide
    :func:`~repro.faults.policy.default_shard_supervision`) bounds how
    failure is handled: a dead or wedged shard raises a structured
    :class:`~repro.faults.failures.ShardFailure` instead of hanging the
    barrier, and the scenario is restarted from scratch up to
    ``supervision.restarts`` times — restarts strip injected faults
    (``config.faults``), and because scenarios are deterministic the
    restarted result is byte-identical to a never-faulted run.
    """
    config.validate()
    if config.shards <= 1:
        raise ValueError("run_sharded needs config.shards > 1")
    if supervision is None:
        supervision = default_shard_supervision()
    faults = config.faults
    shard_faults = faults is not None and faults.has_shard_faults
    end = until if until is not None else config.end_time
    if processes is None:
        import multiprocessing

        from repro.experiments.parallel import _available_cpus

        daemon = multiprocessing.current_process().daemon
        processes = not daemon and (_available_cpus() > 1
                                    or start_method is not None
                                    or shard_faults)
    if not processes:
        if shard_faults:
            raise ValueError(
                "shard fault injection needs the worker-process driver; "
                "the in-process serial driver has no workers to kill")
        harvests = _run_serial_shards(config, end, batch_wire)
        return merge_harvests(config, harvests)
    attempt = 0
    run_config = config
    while True:
        try:
            harvests = _run_process_shards(run_config, end, start_method,
                                           batch_wire,
                                           supervision=supervision)
            break
        except ShardFailure as failure:
            if attempt >= supervision.restarts:
                raise
            attempt += 1
            # The restart strips injected faults (their failure already
            # happened); determinism makes the re-run byte-identical.
            run_config = run_config.with_(faults=None)
            print(f"shard supervision: {failure}; restarting scenario "
                  f"(attempt {attempt}/{supervision.restarts})",
                  file=sys.stderr)
    return merge_harvests(run_config, harvests)
