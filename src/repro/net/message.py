"""Message envelopes and the payload protocol.

A :class:`Payload` is any protocol-level message (propose, request, serve,
aggregation, ...).  Payloads know their own wire size in bytes; the
network adds a fixed per-datagram header (UDP/IP) on top.  Sizes drive the
uplink serialization delay, so getting them right is what makes the
congestion behaviour realistic.

:class:`Envelope` is also the network's delivery event: the fabric
enqueues the envelope itself on the simulator's fire-and-forget path and
the event loop *calls* it at arrival time (``__call__`` hands it back to
the network).  That removes a closure and an event-handle allocation per
datagram — the single hottest allocation site in gossip-scale runs — and
lets the network recycle envelopes through a free list when the caller
opts in (see ``Network(reuse_envelopes=True)``).
"""

from __future__ import annotations

from typing import Protocol

#: UDP (8) + IPv4 (20) header bytes added to every datagram.
UDP_IP_HEADER_BYTES = 28


class Payload(Protocol):
    """Structural interface every protocol message implements."""

    kind: str

    def wire_size(self) -> int:
        """Size of the serialized payload in bytes (headers excluded)."""
        ...


class Envelope:
    """One datagram in flight from ``src`` to ``dst``."""

    __slots__ = ("src", "dst", "payload", "size_bytes", "send_time",
                 "arrival_time", "_net", "_exit_time")

    def __init__(self, src: int, dst: int, payload: Payload, size_bytes: int,
                 send_time: float, arrival_time: float):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size_bytes = size_bytes
        self.send_time = send_time
        self.arrival_time = arrival_time
        # Delivery plumbing, filled in by Network.send for envelopes that
        # ride the simulator's fire-and-forget path.
        self._net = None
        self._exit_time = 0.0

    def __call__(self) -> None:
        """Arrival event: hand the envelope back to its network fabric."""
        self._net._deliver(self, self._exit_time)

    @property
    def transit_time(self) -> float:
        """Total time from send call to delivery (queueing + latency)."""
        return self.arrival_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope({self.payload.kind} {self.src}->{self.dst}, "
            f"{self.size_bytes}B, t={self.send_time:.3f}->{self.arrival_time:.3f})"
        )


def datagram_size(payload: Payload) -> int:
    """Wire size of ``payload`` including the UDP/IP header."""
    return payload.wire_size() + UDP_IP_HEADER_BYTES
