"""Message envelopes, the payload protocol, and the kind-id registry.

A :class:`Payload` is any protocol-level message (propose, request, serve,
aggregation, ...).  Payloads know their own wire size in bytes; the
network adds a fixed per-datagram header (UDP/IP) on top.  Sizes drive the
uplink serialization delay, so getting them right is what makes the
congestion behaviour realistic.

**Kind ids.**  Every payload class carries two class attributes: ``kind``,
the human-readable display name (it survives in
:class:`~repro.net.stats.NetworkStats` breakdowns and reprs), and
``kind_id``, a small dense integer interned through :func:`register_kind`.
All routing — the network's per-endpoint dispatch tables, the
:class:`~repro.net.demux.Demux`, a node's co-hosted protocol handlers —
happens on the integer, so the per-datagram cost of demultiplexing is one
list/dict index instead of a chain of string compares.  Protocol modules
register their kinds at import time::

    class Propose:
        kind = "propose"
        kind_id = register_kind("propose")

:func:`register_kind` raises on a duplicate name (two protocols silently
sharing a kind would cross-deliver), while :func:`intern_kind` is the
lookup variant for dynamic callers: it raises on an unknown name unless
the caller passes ``register=True`` (tests, ad-hoc tooling) — a lookup
that silently registered could be reached on one side of a fork/spawn
boundary only, skewing kind-id tables between shard workers.

:class:`Envelope` doubles as a schedulable delivery event: ``__call__``
hands it back to its network fabric.  The default delivery router
batches same-timestamp envelopes behind a single arrival-bucket event
(see :mod:`repro.net.router`), but direct callers can still post an
envelope on the simulator's fire-and-forget path themselves — no
closure, no event-handle allocation — and the fabric recycles delivered
envelopes through a free list when the caller opts in (see
``Network(reuse_envelopes=True)``).
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Tuple

#: UDP (8) + IPv4 (20) header bytes added to every datagram.
UDP_IP_HEADER_BYTES = 28

# ----------------------------------------------------------------------
# kind-id registry
# ----------------------------------------------------------------------
_KIND_IDS: Dict[str, int] = {}
_KIND_NAMES: List[str] = []


def register_kind(name: str) -> int:
    """Intern a new payload kind; returns its dense integer id.

    Raises :class:`ValueError` if ``name`` is already registered — two
    protocols must never share a kind, or their messages would be
    routed to whichever handler registered last.
    """
    if not name:
        raise ValueError("kind name must be non-empty")
    if name in _KIND_IDS:
        raise ValueError(f"payload kind {name!r} is already registered "
                         f"(id {_KIND_IDS[name]})")
    kind_id = len(_KIND_NAMES)
    _KIND_IDS[name] = kind_id
    _KIND_NAMES.append(name)
    return kind_id


def intern_kind(name: str, *, register: bool = False) -> int:
    """The id for ``name``; raises :class:`KeyError` if unknown.

    Kind-id tables must be identical across fork/spawn shard workers,
    which only holds when every registration happens at import time in
    the same module order.  A *lookup* that silently registered on a
    miss (the historical behaviour) could therefore be reached on one
    side of a process boundary only and skew every id after it — so an
    unknown name now raises instead.  Dynamic callers that really do
    own a new kind (tests, ad-hoc tooling) opt in with
    ``register=True``, which keeps the old idempotent register-if-
    missing semantics; the lint rule K302 flags that form outside
    import-time code.
    """
    kind_id = _KIND_IDS.get(name)
    if kind_id is None:
        if not register:
            raise KeyError(
                f"unknown payload kind {name!r}; register it at module "
                f"import time via register_kind, or pass register=True "
                f"for deliberately dynamic kinds (known: "
                f"{', '.join(_KIND_NAMES) or 'none'})")
        kind_id = register_kind(name)
    return kind_id


def kind_id_of(name: str) -> int:
    """The id of an already-registered kind; raises KeyError if unknown."""
    return _KIND_IDS[name]


def kind_name(kind_id: int) -> str:
    """The display name behind a kind id."""
    return _KIND_NAMES[kind_id]


def kind_count() -> int:
    """Number of registered kinds (ids are ``range(kind_count())``)."""
    return len(_KIND_NAMES)


def registered_kinds() -> Tuple[str, ...]:
    """All registered kind names, in id order."""
    return tuple(_KIND_NAMES)


class Payload(Protocol):
    """Structural interface every protocol message implements.

    Payloads must be treated as immutable once sent: the fabric may hold
    a reference past the ``send`` call (a multicast shares one payload
    object across destinations, and the sharded wire batcher interns the
    object until the next window barrier before serializing it once per
    peer shard) — mutating a sent payload would corrupt datagrams still
    in flight.  Every in-tree payload freezes its fields at construction.
    """

    kind: str
    kind_id: int

    def wire_size(self) -> int:
        """Size of the serialized payload in bytes (headers excluded)."""
        ...


class Envelope:
    """One datagram in flight from ``src`` to ``dst``."""

    __slots__ = ("src", "dst", "payload", "size_bytes", "send_time",
                 "arrival_time", "_net", "_exit_time")

    def __init__(self, src: int, dst: int, payload: Payload, size_bytes: int,
                 send_time: float, arrival_time: float):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size_bytes = size_bytes
        self.send_time = send_time
        self.arrival_time = arrival_time
        # Delivery plumbing, filled in by Network.send for envelopes that
        # ride the simulator's fire-and-forget path.
        self._net = None
        self._exit_time = 0.0

    @classmethod
    def arrived(cls, src: int, dst: int, payload: Payload, size_bytes: int,
                send_time: float, exit_time: float,
                arrival_time: float) -> "Envelope":
        """Rebuild a fully-timed envelope (wire decode entry point).

        The cross-shard wire paths reconstruct envelopes whose uplink
        exit time was decided on the sending shard; this constructor
        restores it in one call instead of leaving ``_exit_time`` for
        the caller to patch.
        """
        envelope = cls(src, dst, payload, size_bytes, send_time, arrival_time)
        envelope._exit_time = exit_time
        return envelope

    def __call__(self) -> None:
        """Arrival event: hand the envelope back to its network fabric."""
        self._net._deliver(self, self._exit_time)

    @property
    def transit_time(self) -> float:
        """Total time from send call to delivery (queueing + latency)."""
        return self.arrival_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope({self.payload.kind} {self.src}->{self.dst}, "
            f"{self.size_bytes}B, t={self.send_time:.3f}->{self.arrival_time:.3f})"
        )


def datagram_size(payload: Payload) -> int:
    """Wire size of ``payload`` including the UDP/IP header."""
    return payload.wire_size() + UDP_IP_HEADER_BYTES
