"""Traffic accounting for the network fabric.

Counts datagrams and bytes globally, per message kind, and per node.
The per-node upload byte counts feed the bandwidth-usage breakdowns of
Figure 4; the per-kind counters verify the paper's claim that control
traffic (propose/request/aggregation) is marginal next to serve payloads.

Per-kind counters are accumulated in flat lists indexed by the interned
``kind_id`` (see :func:`repro.net.message.register_kind`) — the send hot
path pays one list index instead of hashing a kind string per datagram.
The string names survive only at the reporting boundary: the
``bytes_by_kind`` / ``count_by_kind`` views translate ids back to display
names.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.net.message import kind_count, kind_name


class NodeTrafficStats:
    """Upload/download counters for a single node."""

    __slots__ = ("bytes_up", "bytes_down", "datagrams_up", "datagrams_down")

    def __init__(self) -> None:
        self.bytes_up = 0
        self.bytes_down = 0
        self.datagrams_up = 0
        self.datagrams_down = 0


class NetworkStats:
    """Fabric-wide traffic counters."""

    __slots__ = ("sent", "delivered", "lost", "dropped_queue", "dropped_dead",
                 "bytes_sent", "_bytes_by_kind", "_count_by_kind", "per_node")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.dropped_queue = 0
        self.dropped_dead = 0
        self.bytes_sent = 0
        #: Flat per-kind accumulators indexed by kind id.  Sized for the
        #: kinds registered so far; ``kind_slot`` grows them when a kind
        #: is registered after this stats object was created.
        self._bytes_by_kind: List[int] = [0] * kind_count()
        self._count_by_kind: List[int] = [0] * kind_count()
        self.per_node: Dict[int, NodeTrafficStats] = {}

    # ------------------------------------------------------------------
    # per-kind accounting
    # ------------------------------------------------------------------
    def kind_slot(self, kind_id: int) -> int:
        """Ensure the per-kind lists cover ``kind_id``; returns it.

        The send fast path indexes the lists directly and only calls this
        when the index is out of range (a kind registered after this
        stats object was built — possible in tests, never in a scenario
        run where all protocol modules import first).
        """
        grow = kind_id + 1 - len(self._bytes_by_kind)
        if grow > 0:
            self._bytes_by_kind.extend([0] * grow)
            self._count_by_kind.extend([0] * grow)
        return kind_id

    @property
    def bytes_by_kind(self) -> Dict[str, int]:
        """Bytes sent per kind display name (kinds seen on the wire only).

        Returned as a fresh ``defaultdict(int)`` so lookups of kinds that
        never hit the wire read as 0, matching the historical mapping.
        """
        view: Dict[str, int] = defaultdict(int)
        for kind_id, count in enumerate(self._count_by_kind):
            if count:
                view[kind_name(kind_id)] = self._bytes_by_kind[kind_id]
        return view

    @property
    def count_by_kind(self) -> Dict[str, int]:
        """Datagrams sent per kind display name (kinds seen on the wire)."""
        view: Dict[str, int] = defaultdict(int)
        for kind_id, count in enumerate(self._count_by_kind):
            if count:
                view[kind_name(kind_id)] = count
        return view

    def node(self, node_id: int) -> NodeTrafficStats:
        stats = self.per_node.get(node_id)
        if stats is None:
            stats = NodeTrafficStats()
            self.per_node[node_id] = stats
        return stats

    def record_sent(self, src: int, kind_id: int, size_bytes: int,
                    count: int = 1) -> None:
        """Account ``count`` datagrams of one kind leaving ``src``."""
        self.sent += count
        total = size_bytes * count
        self.bytes_sent += total
        slot = (kind_id if kind_id < len(self._bytes_by_kind)
                else self.kind_slot(kind_id))
        self._bytes_by_kind[slot] += total
        self._count_by_kind[slot] += count
        node = self.node(src)
        node.bytes_up += total
        node.datagrams_up += count

    def record_delivered(self, dst: int, size_bytes: int) -> None:
        self.delivered += 1
        node = self.node(dst)
        node.bytes_down += size_bytes
        node.datagrams_down += 1

    def record_lost(self) -> None:
        self.lost += 1

    def record_dropped_queue(self) -> None:
        self.dropped_queue += 1

    def record_dropped_dead(self) -> None:
        self.dropped_dead += 1

    def delivery_ratio(self) -> float:
        """Fraction of sent datagrams that were delivered."""
        if self.sent == 0:
            return 1.0
        return self.delivered / self.sent

    def control_overhead_fraction(self) -> float:
        """Bytes in non-serve traffic over total bytes.

        The paper reports the aggregation gossip costs ~1 KB/s, "completely
        marginal compared to the stream rate"; this helper quantifies the
        analogous statement for a simulation run.
        """
        if self.bytes_sent == 0:
            return 0.0
        serve_bytes = self.bytes_by_kind.get("serve", 0)
        return (self.bytes_sent - serve_bytes) / self.bytes_sent
