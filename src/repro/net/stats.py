"""Traffic accounting for the network fabric.

Counts datagrams and bytes globally, per message kind, and per node.
The per-node upload byte counts feed the bandwidth-usage breakdowns of
Figure 4; the per-kind counters verify the paper's claim that control
traffic (propose/request/aggregation) is marginal next to serve payloads.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class NodeTrafficStats:
    """Upload/download counters for a single node."""

    __slots__ = ("bytes_up", "bytes_down", "datagrams_up", "datagrams_down")

    def __init__(self) -> None:
        self.bytes_up = 0
        self.bytes_down = 0
        self.datagrams_up = 0
        self.datagrams_down = 0


class NetworkStats:
    """Fabric-wide traffic counters."""

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.dropped_queue = 0
        self.dropped_dead = 0
        self.bytes_sent = 0
        self.bytes_by_kind: Dict[str, int] = defaultdict(int)
        self.count_by_kind: Dict[str, int] = defaultdict(int)
        self.per_node: Dict[int, NodeTrafficStats] = {}

    def node(self, node_id: int) -> NodeTrafficStats:
        stats = self.per_node.get(node_id)
        if stats is None:
            stats = NodeTrafficStats()
            self.per_node[node_id] = stats
        return stats

    def record_sent(self, src: int, kind: str, size_bytes: int) -> None:
        self.sent += 1
        self.bytes_sent += size_bytes
        self.bytes_by_kind[kind] += size_bytes
        self.count_by_kind[kind] += 1
        node = self.node(src)
        node.bytes_up += size_bytes
        node.datagrams_up += 1

    def record_delivered(self, dst: int, size_bytes: int) -> None:
        self.delivered += 1
        node = self.node(dst)
        node.bytes_down += size_bytes
        node.datagrams_down += 1

    def record_lost(self) -> None:
        self.lost += 1

    def record_dropped_queue(self) -> None:
        self.dropped_queue += 1

    def record_dropped_dead(self) -> None:
        self.dropped_dead += 1

    def delivery_ratio(self) -> float:
        """Fraction of sent datagrams that were delivered."""
        if self.sent == 0:
            return 1.0
        return self.delivered / self.sent

    def control_overhead_fraction(self) -> float:
        """Bytes in non-serve traffic over total bytes.

        The paper reports the aggregation gossip costs ~1 KB/s, "completely
        marginal compared to the stream rate"; this helper quantifies the
        analogous statement for a simulation run.
        """
        if self.bytes_sent == 0:
            return 0.0
        serve_bytes = self.bytes_by_kind.get("serve", 0)
        return (self.bytes_sent - serve_bytes) / self.bytes_sent
