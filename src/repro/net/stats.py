"""Traffic accounting for the network fabric.

Counts datagrams and bytes globally, per message kind, and per node.
The per-node upload byte counts feed the bandwidth-usage breakdowns of
Figure 4; the per-kind counters verify the paper's claim that control
traffic (propose/request/aggregation) is marginal next to serve payloads.

Per-kind counters are accumulated in flat lists indexed by the interned
``kind_id`` (see :func:`repro.net.message.register_kind`) — the send hot
path pays one list index instead of hashing a kind string per datagram.
The string names survive only at the reporting boundary: the
``bytes_by_kind`` / ``count_by_kind`` views translate ids back to display
names.

Both directions are counted: the send paths accumulate per envelope (the
loss/queue pipeline forks per destination anyway), while the delivery
side accumulates per *arrival bucket* — the router hands every kind group
of a same-timestamp bucket to :meth:`NetworkStats.add_received` as one
bulk accumulation instead of one update per envelope.  Sharded runs merge
per-worker instances with :meth:`NetworkStats.merge_from`.

**Cross-shard wire counters.**  Sharded execution additionally accounts
what actually crosses a process boundary, so the cost of the window
barrier is visible instead of folded into wall time:

* ``wire_buffers`` — packed window buffers shipped (on the per-envelope
  escape-hatch path every envelope is its own pickled unit, so there it
  counts shipped envelopes);
* ``wire_envelopes`` — cross-shard envelopes shipped;
* ``wire_bytes`` — total serialized bytes shipped (header tables plus
  payload blobs for the batched path; whole pickled wire tuples for the
  per-envelope path);
* ``wire_payload_bytes_before`` / ``wire_payload_bytes`` — payload blob
  bytes before and after multicast interning (a ``send_many`` payload
  crossing to a peer shard ships once per peer shard, not once per
  destination; without batching the two counters are equal);
* ``wire_control_rows`` — ownership-level membership events (churn
  crash/join announcements) shipped as control rows riding the window
  buffers, counted at the emitting (owner) shard.

All six are commutative sums and merge across shards like every other
counter; :meth:`NetworkStats.wire_summary` bundles them for reports.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.net.message import kind_count, kind_name


class NodeTrafficStats:
    """Upload/download counters for a single node."""

    __slots__ = ("bytes_up", "bytes_down", "datagrams_up", "datagrams_down")

    def __init__(self) -> None:
        self.bytes_up = 0
        self.bytes_down = 0
        self.datagrams_up = 0
        self.datagrams_down = 0


class NetworkStats:
    """Fabric-wide traffic counters."""

    __slots__ = ("sent", "delivered", "lost", "dropped_queue", "dropped_dead",
                 "bytes_sent", "bytes_received", "_bytes_by_kind",
                 "_count_by_kind", "_recv_bytes_by_kind",
                 "_recv_count_by_kind", "per_node", "wire_buffers",
                 "wire_envelopes", "wire_bytes", "wire_payload_bytes_before",
                 "wire_payload_bytes", "wire_control_rows")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.dropped_queue = 0
        self.dropped_dead = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        # Cross-shard wire accounting (zero outside sharded runs).
        self.wire_buffers = 0
        self.wire_envelopes = 0
        self.wire_bytes = 0
        self.wire_payload_bytes_before = 0
        self.wire_payload_bytes = 0
        self.wire_control_rows = 0
        #: Flat per-kind accumulators indexed by kind id.  Sized for the
        #: kinds registered so far; ``kind_slot`` grows them when a kind
        #: is registered after this stats object was created.
        self._bytes_by_kind: List[int] = [0] * kind_count()
        self._count_by_kind: List[int] = [0] * kind_count()
        self._recv_bytes_by_kind: List[int] = [0] * kind_count()
        self._recv_count_by_kind: List[int] = [0] * kind_count()
        self.per_node: Dict[int, NodeTrafficStats] = {}

    # ------------------------------------------------------------------
    # per-kind accounting
    # ------------------------------------------------------------------
    def kind_slot(self, kind_id: int) -> int:
        """Ensure the per-kind lists cover ``kind_id``; returns it.

        The send fast path indexes the lists directly and only calls this
        when the index is out of range (a kind registered after this
        stats object was built — possible in tests, never in a scenario
        run where all protocol modules import first).
        """
        grow = kind_id + 1 - len(self._bytes_by_kind)
        if grow > 0:
            self._bytes_by_kind.extend([0] * grow)
            self._count_by_kind.extend([0] * grow)
        grow = kind_id + 1 - len(self._recv_bytes_by_kind)
        if grow > 0:
            self._recv_bytes_by_kind.extend([0] * grow)
            self._recv_count_by_kind.extend([0] * grow)
        return kind_id

    def add_received(self, kind_id: int, count: int, total_bytes: int) -> None:
        """Account ``count`` delivered datagrams of one kind, totalling
        ``total_bytes``, as a single bulk accumulation.

        This is the receive-side twin of the batched send accounting:
        the router calls it once per kind group of an arrival bucket, so
        a bucket of n same-kind deliveries costs one update, not n.  The
        result is defined to equal n single-datagram accumulations.
        """
        self.delivered += count
        self.bytes_received += total_bytes
        slot = (kind_id if kind_id < len(self._recv_bytes_by_kind)
                else self.kind_slot(kind_id))
        self._recv_bytes_by_kind[slot] += total_bytes
        self._recv_count_by_kind[slot] += count

    @property
    def bytes_by_kind(self) -> Dict[str, int]:
        """Bytes sent per kind display name (kinds seen on the wire only).

        Returned as a fresh ``defaultdict(int)`` so lookups of kinds that
        never hit the wire read as 0, matching the historical mapping.
        """
        view: Dict[str, int] = defaultdict(int)
        for kind_id, count in enumerate(self._count_by_kind):
            if count:
                view[kind_name(kind_id)] = self._bytes_by_kind[kind_id]
        return view

    @property
    def count_by_kind(self) -> Dict[str, int]:
        """Datagrams sent per kind display name (kinds seen on the wire)."""
        view: Dict[str, int] = defaultdict(int)
        for kind_id, count in enumerate(self._count_by_kind):
            if count:
                view[kind_name(kind_id)] = count
        return view

    @property
    def received_bytes_by_kind(self) -> Dict[str, int]:
        """Bytes *delivered* per kind display name (kinds actually received)."""
        view: Dict[str, int] = defaultdict(int)
        for kind_id, count in enumerate(self._recv_count_by_kind):
            if count:
                view[kind_name(kind_id)] = self._recv_bytes_by_kind[kind_id]
        return view

    @property
    def received_count_by_kind(self) -> Dict[str, int]:
        """Datagrams *delivered* per kind display name."""
        view: Dict[str, int] = defaultdict(int)
        for kind_id, count in enumerate(self._recv_count_by_kind):
            if count:
                view[kind_name(kind_id)] = count
        return view

    def merge_from(self, other: "NetworkStats") -> None:
        """Fold another instance's counters into this one.

        Used by sharded execution: each worker accounts its own shard's
        traffic (sender-side counters accrue in the sender's shard,
        receiver-side in the receiver's), and the coordinator merges the
        per-worker instances.  All counters are sums, so merging is
        order-independent.
        """
        self.sent += other.sent
        self.delivered += other.delivered
        self.lost += other.lost
        self.dropped_queue += other.dropped_queue
        self.dropped_dead += other.dropped_dead
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.wire_buffers += other.wire_buffers
        self.wire_envelopes += other.wire_envelopes
        self.wire_bytes += other.wire_bytes
        self.wire_payload_bytes_before += other.wire_payload_bytes_before
        self.wire_payload_bytes += other.wire_payload_bytes
        self.wire_control_rows += other.wire_control_rows
        top = max(len(other._bytes_by_kind), len(other._recv_bytes_by_kind))
        if top:
            self.kind_slot(top - 1)
        for kind_id, value in enumerate(other._bytes_by_kind):
            self._bytes_by_kind[kind_id] += value
        for kind_id, value in enumerate(other._count_by_kind):
            self._count_by_kind[kind_id] += value
        for kind_id, value in enumerate(other._recv_bytes_by_kind):
            self._recv_bytes_by_kind[kind_id] += value
        for kind_id, value in enumerate(other._recv_count_by_kind):
            self._recv_count_by_kind[kind_id] += value
        for node_id, node in other.per_node.items():
            mine = self.node(node_id)
            mine.bytes_up += node.bytes_up
            mine.bytes_down += node.bytes_down
            mine.datagrams_up += node.datagrams_up
            mine.datagrams_down += node.datagrams_down

    def wire_summary(self) -> Dict[str, int]:
        """The cross-shard wire counters as one report-ready mapping."""
        return {
            "buffers": self.wire_buffers,
            "envelopes": self.wire_envelopes,
            "bytes": self.wire_bytes,
            "payload_bytes_before_interning": self.wire_payload_bytes_before,
            "payload_bytes_after_interning": self.wire_payload_bytes,
            "control_rows": self.wire_control_rows,
        }

    def node(self, node_id: int) -> NodeTrafficStats:
        stats = self.per_node.get(node_id)
        if stats is None:
            stats = NodeTrafficStats()
            self.per_node[node_id] = stats
        return stats

    def delivery_ratio(self) -> float:
        """Fraction of sent datagrams that were delivered."""
        if self.sent == 0:
            return 1.0
        return self.delivered / self.sent

    def control_overhead_fraction(self) -> float:
        """Bytes in non-serve traffic over total bytes.

        The paper reports the aggregation gossip costs ~1 KB/s, "completely
        marginal compared to the stream rate"; this helper quantifies the
        analogous statement for a simulation run.
        """
        if self.bytes_sent == 0:
            return 0.0
        serve_bytes = self.bytes_by_kind.get("serve", 0)
        return (self.bytes_sent - serve_bytes) / self.bytes_sent
