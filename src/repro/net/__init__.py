"""Network substrate: a simulated best-effort datagram fabric.

Models the parts of the paper's PlanetLab/UDP testbed that the evaluation
depends on:

* per-node **uplink serialization queues** — the application-level rate
  limiter of the paper ("packets which are about to cross the bandwidth
  limit are queued"), the mechanism behind congestion at poor nodes;
* end-to-end **latency models** (constant, uniform, lognormal, per-pair);
* **loss models** (none, Bernoulli, Gilbert-Elliott bursts) standing in
  for UDP drops on the real Internet;
* a :class:`~repro.net.network.Network` fabric that wires endpoints
  together, applies the three models in order (queue -> loss -> latency)
  and records traffic statistics per node and per message kind;
* pluggable **delivery routers** (:mod:`repro.net.router`): the default
  in-process router with batched arrival buckets, and the sharded
  router (:mod:`repro.net.shard`) that partitions one large scenario
  across worker processes.
"""

from repro.net.bandwidth import UplinkQueue
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    PairwiseLatency,
    PerPairLatency,
    UniformLatency,
)
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.message import Envelope, Payload
from repro.net.network import Endpoint, Network
from repro.net.router import InprocRouter, Router
from repro.net.stats import NetworkStats, NodeTrafficStats

__all__ = [
    "BernoulliLoss",
    "ConstantLatency",
    "Endpoint",
    "Envelope",
    "GilbertElliottLoss",
    "InprocRouter",
    "LatencyModel",
    "LogNormalLatency",
    "LossModel",
    "Network",
    "NetworkStats",
    "NoLoss",
    "NodeTrafficStats",
    "PairwiseLatency",
    "PerPairLatency",
    "Payload",
    "Router",
    "UniformLatency",
    "UplinkQueue",
]
