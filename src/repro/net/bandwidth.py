"""Uplink bandwidth throttling: the paper's application-level rate limiter.

Every node owns an :class:`UplinkQueue` with a configured capacity in
bits per second.  Outgoing datagrams are serialized through it FIFO:
a datagram of S bytes occupies the link for ``S * 8 / capacity`` seconds,
starting when all previously enqueued datagrams have finished.  A node
asked to upload faster than its capacity therefore accumulates queueing
delay — exactly the congestion dynamic the paper identifies at
low-capability nodes under homogeneous gossip.

Downloads are not modelled ("download capabilities are much higher than
upload ones" — the paper constrains upload only).
"""

from __future__ import annotations

from typing import Optional


class UplinkQueue:
    """FIFO serialization queue for one node's upload link.

    The queue is unbounded by default, matching the paper ("excess packets
    ... are queued at the application level, and sent as soon as there is
    enough available bandwidth").  An optional ``max_delay`` drops
    datagrams that would wait longer — used by the queue-cap ablation.
    """

    __slots__ = ("capacity_bps", "max_delay", "busy_until", "bytes_sent",
                 "datagrams_sent", "datagrams_dropped", "_sum_queue_delay")

    def __init__(self, capacity_bps: float, max_delay: Optional[float] = None):
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps!r}")
        if max_delay is not None and max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay!r}")
        self.capacity_bps = capacity_bps
        self.max_delay = max_delay
        self.busy_until = 0.0
        self.bytes_sent = 0
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self._sum_queue_delay = 0.0

    def serialization_time(self, size_bytes: int) -> float:
        """Pure wire time for ``size_bytes`` at this link's capacity."""
        return size_bytes * 8.0 / self.capacity_bps

    def queue_delay(self, now: float) -> float:
        """How long a datagram enqueued now would wait before transmission."""
        return max(0.0, self.busy_until - now)

    def enqueue(self, now: float, size_bytes: int) -> Optional[float]:
        """Serialize a datagram; return its link-exit time, or None if dropped.

        The returned time is when the last bit leaves the uplink;
        propagation latency is added by the network on top of it.
        """
        wait = self.busy_until - now
        if wait < 0.0:
            wait = 0.0
        if self.max_delay is not None and wait > self.max_delay:
            self.datagrams_dropped += 1
            return None
        start = now + wait
        finish = start + size_bytes * 8.0 / self.capacity_bps
        self.busy_until = finish
        self.bytes_sent += size_bytes
        self.datagrams_sent += 1
        self._sum_queue_delay += wait
        return finish

    def mean_queue_delay(self) -> float:
        """Average queueing delay over all sent datagrams."""
        if self.datagrams_sent == 0:
            return 0.0
        return self._sum_queue_delay / self.datagrams_sent

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the uplink spent transmitting.

        This is the metric behind the paper's Figure 4 ("average bandwidth
        usage by bandwidth class"): bytes actually pushed through the link
        over what the capacity would have allowed.
        """
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.bytes_sent * 8.0 / self.capacity_bps) / elapsed)

    def set_capacity(self, capacity_bps: float) -> None:
        """Change the link capacity (used by degraded-node effects).

        Takes effect for subsequently enqueued datagrams; in-flight ones
        keep their already-computed exit times.
        """
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps!r}")
        self.capacity_bps = capacity_bps
