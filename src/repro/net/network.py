"""The network fabric wiring endpoints together.

Send pipeline, applied in order for every datagram:

1. **uplink serialization** through the sender's :class:`UplinkQueue`
   (this is where congestion delay builds up at overloaded nodes);
2. **loss** sampling (models UDP drops);
3. **propagation latency** sampling;
4. scheduled **delivery** at arrival time, if both ends are still alive.

Crash semantics: a node that crashes at time *t* stops receiving
immediately and any datagram that had not finished serializing through
its uplink by *t* is lost (it was still sitting in the application-level
queue of the dead process).  Datagrams already on the wire are delivered.

Hot path notes: ``send`` is the most-executed function of a gossip run,
so it inlines the liveness check, traffic accounting, and loss gate, and
enqueues the envelope itself as the delivery event on the simulator's
fire-and-forget path (no per-datagram closure or event handle).
Deliveries sharing an arrival timestamp drain as one batched bucket in
the event loop.  With ``reuse_envelopes=True`` delivered envelopes are
recycled through a free list — only safe when no endpoint or caller
retains envelopes past the ``on_message`` callback, which holds for every
protocol in this package; the experiment runner opts in, direct users of
the fabric (and the tests) keep the allocate-per-datagram default.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.net.bandwidth import UplinkQueue
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.loss import LossModel, NoLoss
from repro.net.message import UDP_IP_HEADER_BYTES, Envelope, Payload
from repro.net.stats import NetworkStats
from repro.sim.engine import Simulator

#: Upper bound on the envelope free list (reuse_envelopes=True).
_POOL_CAP = 512


class Endpoint(Protocol):
    """Anything attachable to the network: must handle delivered envelopes."""

    def on_message(self, envelope: Envelope) -> None:
        ...


class Network:
    """Best-effort datagram fabric with throttled uplinks."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 loss: Optional[LossModel] = None,
                 reuse_envelopes: bool = False):
        self._sim = sim
        self.latency = latency if latency is not None else ConstantLatency(0.05)
        self.loss = loss if loss is not None else NoLoss()
        self.stats = NetworkStats()
        self._endpoints: Dict[int, Endpoint] = {}
        self._uplinks: Dict[int, UplinkQueue] = {}
        self._crash_time: Dict[int, float] = {}
        #: Optional observer invoked for every delivered envelope.
        #: While set, envelope recycling is suspended (the observer may
        #: retain envelopes).
        self.on_deliver: Optional[Callable[[Envelope], None]] = None
        #: Free list of delivered envelopes, or None when reuse is off.
        self._pool: Optional[list] = [] if reuse_envelopes else None

    # ------------------------------------------------------------------
    # membership of the fabric
    # ------------------------------------------------------------------
    def attach(self, node_id: int, endpoint: Endpoint, upload_capacity_bps: float,
               max_queue_delay: Optional[float] = None) -> UplinkQueue:
        """Register ``endpoint`` under ``node_id`` with the given uplink."""
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} already attached")
        self._endpoints[node_id] = endpoint
        uplink = UplinkQueue(upload_capacity_bps, max_delay=max_queue_delay)
        self._uplinks[node_id] = uplink
        # Pre-create the per-node counters so send/_deliver can index
        # stats.per_node without a existence check per datagram.
        self.stats.node(node_id)
        return uplink

    def detach(self, node_id: int) -> None:
        """Remove a node entirely (used when a node leaves gracefully)."""
        self._endpoints.pop(node_id, None)
        self._uplinks.pop(node_id, None)

    def crash(self, node_id: int) -> None:
        """Kill a node: it stops sending and receiving at the current time."""
        if node_id in self._endpoints and node_id not in self._crash_time:
            self._crash_time[node_id] = self._sim.now

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._endpoints and node_id not in self._crash_time

    def uplink(self, node_id: int) -> UplinkQueue:
        return self._uplinks[node_id]

    @property
    def node_ids(self):
        return self._endpoints.keys()

    # ------------------------------------------------------------------
    # datagram pipeline
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Payload) -> Optional[Envelope]:
        """Send one datagram.  Returns the envelope, or None if it was
        dropped before reaching the wire (dead sender / queue cap).

        With ``reuse_envelopes=True`` the returned envelope is only valid
        until it is delivered — don't retain it.
        """
        if src not in self._endpoints or src in self._crash_time:
            return None
        sim = self._sim
        now = sim._now
        size = payload.wire_size() + UDP_IP_HEADER_BYTES
        exit_time = self._uplinks[src].enqueue(now, size)
        stats = self.stats
        if exit_time is None:
            stats.dropped_queue += 1
            return None
        kind = payload.kind
        stats.sent += 1
        stats.bytes_sent += size
        stats.bytes_by_kind[kind] += size
        stats.count_by_kind[kind] += 1
        node_stats = stats.per_node[src]
        node_stats.bytes_up += size
        node_stats.datagrams_up += 1
        loss = self.loss
        if loss.active and loss.is_lost(src, dst):
            stats.lost += 1
            return None
        arrival = exit_time + self.latency.sample(src, dst)
        pool = self._pool
        if pool:
            envelope = pool.pop()
            envelope.src = src
            envelope.dst = dst
            envelope.payload = payload
            envelope.size_bytes = size
            envelope.send_time = now
            envelope.arrival_time = arrival
        else:
            envelope = Envelope(src, dst, payload, size, now, arrival)
            envelope._net = self
        envelope._exit_time = exit_time
        sim.post_at(arrival, envelope)
        return envelope

    def _deliver(self, envelope: Envelope, exit_time: float) -> None:
        crash_time = self._crash_time
        if crash_time:
            src_crash = crash_time.get(envelope.src)
            if src_crash is not None and exit_time > src_crash:
                # The datagram was still queued in the sender's dead process.
                self.stats.dropped_dead += 1
                return
            if envelope.dst in crash_time:
                self.stats.dropped_dead += 1
                return
        endpoint = self._endpoints.get(envelope.dst)
        if endpoint is None:
            self.stats.dropped_dead += 1
            return
        stats = self.stats
        stats.delivered += 1
        node_stats = stats.per_node.get(envelope.dst)
        if node_stats is None:  # delivered to a node attached out-of-band
            node_stats = stats.node(envelope.dst)
        node_stats.bytes_down += envelope.size_bytes
        node_stats.datagrams_down += 1
        if self.on_deliver is not None:
            self.on_deliver(envelope)
            endpoint.on_message(envelope)
            return  # observer may retain the envelope: never recycle
        endpoint.on_message(envelope)
        pool = self._pool
        if pool is not None and len(pool) < _POOL_CAP:
            pool.append(envelope)
