"""The network fabric wiring endpoints together.

Send pipeline, applied in order for every datagram:

1. **uplink serialization** through the sender's :class:`UplinkQueue`
   (this is where congestion delay builds up at overloaded nodes);
2. **loss** sampling (models UDP drops);
3. **propagation latency** sampling;
4. scheduled **delivery** at arrival time, if both ends are still alive.

Crash semantics: a node that crashes at time *t* stops receiving
immediately and any datagram that had not finished serializing through
its uplink by *t* is lost (it was still sitting in the application-level
queue of the dead process).  Datagrams already on the wire are delivered.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.net.bandwidth import UplinkQueue
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.loss import LossModel, NoLoss
from repro.net.message import Envelope, Payload, datagram_size
from repro.net.stats import NetworkStats
from repro.sim.engine import Simulator


class Endpoint(Protocol):
    """Anything attachable to the network: must handle delivered envelopes."""

    def on_message(self, envelope: Envelope) -> None:
        ...


class Network:
    """Best-effort datagram fabric with throttled uplinks."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 loss: Optional[LossModel] = None):
        self._sim = sim
        self.latency = latency if latency is not None else ConstantLatency(0.05)
        self.loss = loss if loss is not None else NoLoss()
        self.stats = NetworkStats()
        self._endpoints: Dict[int, Endpoint] = {}
        self._uplinks: Dict[int, UplinkQueue] = {}
        self._crash_time: Dict[int, float] = {}
        #: Optional observer invoked for every delivered envelope.
        self.on_deliver: Optional[Callable[[Envelope], None]] = None

    # ------------------------------------------------------------------
    # membership of the fabric
    # ------------------------------------------------------------------
    def attach(self, node_id: int, endpoint: Endpoint, upload_capacity_bps: float,
               max_queue_delay: Optional[float] = None) -> UplinkQueue:
        """Register ``endpoint`` under ``node_id`` with the given uplink."""
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} already attached")
        self._endpoints[node_id] = endpoint
        uplink = UplinkQueue(upload_capacity_bps, max_delay=max_queue_delay)
        self._uplinks[node_id] = uplink
        return uplink

    def detach(self, node_id: int) -> None:
        """Remove a node entirely (used when a node leaves gracefully)."""
        self._endpoints.pop(node_id, None)
        self._uplinks.pop(node_id, None)

    def crash(self, node_id: int) -> None:
        """Kill a node: it stops sending and receiving at the current time."""
        if node_id in self._endpoints and node_id not in self._crash_time:
            self._crash_time[node_id] = self._sim.now

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._endpoints and node_id not in self._crash_time

    def uplink(self, node_id: int) -> UplinkQueue:
        return self._uplinks[node_id]

    @property
    def node_ids(self):
        return self._endpoints.keys()

    # ------------------------------------------------------------------
    # datagram pipeline
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Payload) -> Optional[Envelope]:
        """Send one datagram.  Returns the envelope, or None if it was
        dropped before reaching the wire (dead sender / queue cap)."""
        if not self.is_alive(src):
            return None
        now = self._sim.now
        size = datagram_size(payload)
        uplink = self._uplinks[src]
        exit_time = uplink.enqueue(now, size)
        if exit_time is None:
            self.stats.record_dropped_queue()
            return None
        self.stats.record_sent(src, payload.kind, size)
        if self.loss.is_lost(src, dst):
            self.stats.record_lost()
            return None
        arrival = exit_time + self.latency.sample(src, dst)
        envelope = Envelope(src, dst, payload, size, now, arrival)
        self._sim.schedule_at(arrival, lambda: self._deliver(envelope, exit_time))
        return envelope

    def _deliver(self, envelope: Envelope, exit_time: float) -> None:
        src_crash = self._crash_time.get(envelope.src)
        if src_crash is not None and exit_time > src_crash:
            # The datagram was still queued in the sender's dead process.
            self.stats.record_dropped_dead()
            return
        endpoint = self._endpoints.get(envelope.dst)
        if endpoint is None or envelope.dst in self._crash_time:
            self.stats.record_dropped_dead()
            return
        self.stats.record_delivered(envelope.dst, envelope.size_bytes)
        if self.on_deliver is not None:
            self.on_deliver(envelope)
        endpoint.on_message(envelope)
