"""The network fabric wiring endpoints together.

Send pipeline, applied in order for every datagram:

1. **uplink serialization** through the sender's :class:`UplinkQueue`
   (this is where congestion delay builds up at overloaded nodes);
2. **loss** sampling (models UDP drops);
3. **propagation latency** sampling;
4. scheduled **delivery** at arrival time, if both ends are still alive.

Crash semantics: a node that crashes at time *t* stops receiving
immediately and any datagram that had not finished serializing through
its uplink by *t* is lost (it was still sitting in the application-level
queue of the dead process).  Datagrams already on the wire are delivered.

Hot path notes: gossip is intrinsically multicast — every proposal round,
peer-sampling shuffle and audit fan one payload out to k peers — so the
fabric exposes :meth:`Network.send_many` next to the unicast
:meth:`Network.send`.  ``send_many`` computes the wire size once, walks
the destinations in caller order (per-destination loss and latency draws
consume the RNG streams exactly as an equivalent ``send`` loop would, so
seeded traces are bit-identical), and folds the sender-side stats into
single accumulations instead of k dict updates.

Delivery routes through a **per-endpoint dispatch table** captured at
:meth:`attach` time: an endpoint that exposes ``dispatch_table()`` (a
live mapping of interned payload ``kind_id`` to an envelope handler) gets
its datagrams handed straight to the matching handler — one integer dict
lookup, no per-message string comparison; kinds missing from the table,
and endpoints without a table, fall back to ``on_message``.

Delivery itself is delegated to a pluggable :class:`~repro.net.router.Router`
(default: :class:`~repro.net.router.InprocRouter`): the send pipeline
hands every surviving datagram to ``router.route``, and the router
schedules arrival, drains same-timestamp arrival buckets through one
``deliver_bucket`` call (receiver-side stats accumulate per kind group,
not per envelope), and applies crash/dispatch/recycling semantics.  The
sharded execution engine (:mod:`repro.net.shard`) swaps in a router that
forwards remote-shard destinations across process boundaries — and
because ``send_many`` hands the *same* payload object to every
per-destination envelope, that router can intern multicast payloads by
identity and ship one blob per peer shard per window instead of one per
remote destination.

With ``reuse_envelopes=True`` delivered envelopes are recycled
through a free list — only safe when no endpoint or caller retains
envelopes past the handler callback, which holds for every protocol in
this package; the experiment runner opts in, direct users of the fabric
(and the tests) keep the allocate-per-datagram default.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Protocol

from repro.net.bandwidth import UplinkQueue
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.loss import LossModel, NoLoss
from repro.net.message import UDP_IP_HEADER_BYTES, Envelope, Payload
from repro.net.router import InprocRouter, Router
from repro.net.stats import NetworkStats
from repro.sim.engine import Simulator


class Endpoint(Protocol):
    """Anything attachable to the network: must handle delivered envelopes.

    Endpoints may additionally expose ``dispatch_table()`` returning a
    *live* ``{kind_id: handler(envelope)}`` mapping; the network captures
    it at attach time and routes matching kinds directly (later mutations
    of the same mapping are honoured).  ``on_message`` remains the
    fallback for kinds absent from the table.
    """

    def on_message(self, envelope: Envelope) -> None:
        ...


class Network:
    """Best-effort datagram fabric with throttled uplinks."""

    __slots__ = ("_sim", "latency", "loss", "stats", "_endpoints",
                 "_uplinks", "_crash_time", "_delivery", "on_deliver",
                 "_pool", "router", "_route")

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 loss: Optional[LossModel] = None,
                 reuse_envelopes: bool = False,
                 router: Optional[Router] = None):
        self._sim = sim
        self.latency = latency if latency is not None else ConstantLatency(0.05)
        self.loss = loss if loss is not None else NoLoss()
        self.stats = NetworkStats()
        self._endpoints: Dict[int, Endpoint] = {}
        self._uplinks: Dict[int, UplinkQueue] = {}
        self._crash_time: Dict[int, float] = {}
        #: node_id -> (endpoint, per-node stats, dispatch table or None,
        #: uplink): everything the send/delivery paths need behind one
        #: dict lookup.
        self._delivery: Dict[int, tuple] = {}
        #: Optional observer invoked for every delivered envelope.
        #: While set, envelope recycling is suspended (the observer may
        #: retain envelopes).
        self.on_deliver: Optional[Callable[[Envelope], None]] = None
        #: Free list of delivered envelopes, or None when reuse is off.
        self._pool: Optional[list] = [] if reuse_envelopes else None
        #: The delivery router.  Bound here, aliased for the hot path.
        self.router: Router = router if router is not None else InprocRouter()
        self.router.bind(self)
        self._route = self.router.route

    # ------------------------------------------------------------------
    # membership of the fabric
    # ------------------------------------------------------------------
    def attach(self, node_id: int, endpoint: Endpoint, upload_capacity_bps: float,
               max_queue_delay: Optional[float] = None) -> UplinkQueue:
        """Register ``endpoint`` under ``node_id`` with the given uplink.

        If the endpoint exposes ``dispatch_table()``, the returned mapping
        is captured *by reference* — handlers registered on it after
        attach (co-hosted protocols wired up later) are dispatched too.
        """
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} already attached")
        self._endpoints[node_id] = endpoint
        uplink = UplinkQueue(upload_capacity_bps, max_delay=max_queue_delay)
        self._uplinks[node_id] = uplink
        # Pre-create the per-node counters so send/_deliver can index
        # stats.per_node without an existence check per datagram.
        node_stats = self.stats.node(node_id)
        table_fn = getattr(endpoint, "dispatch_table", None)
        table = table_fn() if table_fn is not None else None
        self._delivery[node_id] = (endpoint, node_stats, table, uplink)
        return uplink

    def detach(self, node_id: int) -> None:
        """Remove a node entirely (used when a node leaves gracefully)."""
        self._endpoints.pop(node_id, None)
        self._uplinks.pop(node_id, None)
        self._delivery.pop(node_id, None)

    def crash(self, node_id: int) -> None:
        """Kill a node: it stops sending and receiving at the current time."""
        if node_id in self._endpoints and node_id not in self._crash_time:
            self._crash_time[node_id] = self._sim.now

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._endpoints and node_id not in self._crash_time

    def uplink(self, node_id: int) -> UplinkQueue:
        return self._uplinks[node_id]

    @property
    def node_ids(self):
        return self._endpoints.keys()

    # ------------------------------------------------------------------
    # datagram pipeline
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Payload) -> Optional[Envelope]:
        """Send one datagram.  Returns the envelope, or None if it was
        dropped before reaching the wire (dead sender / queue cap).

        With ``reuse_envelopes=True`` the returned envelope is only valid
        until it is delivered — don't retain it.
        """
        entry = self._delivery.get(src)
        if entry is None or (self._crash_time and src in self._crash_time):
            return None
        sim = self._sim
        now = sim._now
        size = payload.wire_size() + UDP_IP_HEADER_BYTES
        node_stats = entry[1]
        exit_time = entry[3].enqueue(now, size)
        stats = self.stats
        if exit_time is None:
            stats.dropped_queue += 1
            return None
        kind_id = payload.kind_id
        stats.sent += 1
        stats.bytes_sent += size
        by_kind = stats._bytes_by_kind
        if kind_id >= len(by_kind):
            stats.kind_slot(kind_id)
        by_kind[kind_id] += size
        stats._count_by_kind[kind_id] += 1
        node_stats.bytes_up += size
        node_stats.datagrams_up += 1
        loss = self.loss
        if loss.active and loss.is_lost(src, dst):
            stats.lost += 1
            return None
        arrival = exit_time + self.latency.sample(src, dst)
        pool = self._pool
        if pool:
            envelope = pool.pop()
            envelope.src = src
            envelope.dst = dst
            envelope.payload = payload
            envelope.size_bytes = size
            envelope.send_time = now
            envelope.arrival_time = arrival
        else:
            envelope = Envelope(src, dst, payload, size, now, arrival)
            envelope._net = self
        envelope._exit_time = exit_time
        self._route(envelope)
        return envelope

    def send_many(self, src: int, dsts: Iterable[int], payload: Payload) -> int:
        """Multicast ``payload`` from ``src`` to every destination in
        ``dsts`` (walked in caller order).  Returns the number of
        datagrams that reached the wire.

        Semantically identical to calling :meth:`send` once per
        destination — per-destination queue/loss/latency behaviour and
        RNG draws match that loop bit-for-bit — but the wire size is
        computed once and the sender-side stats land as single batched
        accumulations instead of per-destination dict updates.
        """
        entry = self._delivery.get(src)
        if entry is None or (self._crash_time and src in self._crash_time):
            return 0
        sim = self._sim
        now = sim._now
        size = payload.wire_size() + UDP_IP_HEADER_BYTES
        enqueue = entry[3].enqueue
        loss = self.loss
        loss_active = loss.active
        is_lost = loss.is_lost
        latency_sample = self.latency.sample
        pool = self._pool
        route = self._route
        wired = 0
        lost = 0
        dropped = 0
        for dst in dsts:
            exit_time = enqueue(now, size)
            if exit_time is None:
                # Queue cap hit: this destination's datagram never reaches
                # the wire (no loss/latency draw, exactly like send()).
                dropped += 1
                continue
            wired += 1
            if loss_active and is_lost(src, dst):
                lost += 1
                continue
            arrival = exit_time + latency_sample(src, dst)
            if pool:
                envelope = pool.pop()
                envelope.src = src
                envelope.dst = dst
                envelope.payload = payload
                envelope.size_bytes = size
                envelope.send_time = now
                envelope.arrival_time = arrival
            else:
                envelope = Envelope(src, dst, payload, size, now, arrival)
                envelope._net = self
            envelope._exit_time = exit_time
            route(envelope)
        stats = self.stats
        if dropped:
            stats.dropped_queue += dropped
        if wired:
            total = size * wired
            stats.sent += wired
            stats.bytes_sent += total
            kind_id = payload.kind_id
            by_kind = stats._bytes_by_kind
            if kind_id >= len(by_kind):
                stats.kind_slot(kind_id)
            by_kind[kind_id] += total
            stats._count_by_kind[kind_id] += wired
            node_stats = entry[1]
            node_stats.bytes_up += total
            node_stats.datagrams_up += wired
        if lost:
            stats.lost += lost
        return wired

    def _deliver(self, envelope: Envelope, exit_time: float) -> None:
        """Compatibility shim: deliver one envelope immediately.

        Historical direct-delivery entry point (still the target of
        ``Envelope.__call__`` for callers that schedule envelopes as
        events themselves); the actual semantics live in the router's
        ``deliver_bucket``.
        """
        envelope._exit_time = exit_time
        self.router.deliver_bucket((envelope,))
