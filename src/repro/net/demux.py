"""Kind-based demultiplexing endpoint.

A node usually runs several protocols over one datagram socket (stream
gossip, capability aggregation, peer sampling).  :class:`Demux` routes a
delivered envelope to the handler registered for its payload ``kind``,
so each protocol stays an independent component.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.net.message import Envelope


class Demux:
    """Routes envelopes to per-kind handlers."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Callable[[Envelope], None]] = {}
        self.unrouted = 0

    def register(self, kind: str, handler: Callable[[Envelope], None]) -> None:
        if kind in self._handlers:
            raise ValueError(f"handler for kind {kind!r} already registered")
        self._handlers[kind] = handler

    def on_message(self, envelope: Envelope) -> None:
        handler = self._handlers.get(envelope.payload.kind)
        if handler is None:
            self.unrouted += 1
            return
        handler(envelope)
