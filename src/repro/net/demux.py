"""Kind-based demultiplexing endpoint.

A node usually runs several protocols over one datagram socket (stream
gossip, capability aggregation, peer sampling).  :class:`Demux` routes a
delivered envelope to the handler registered for its payload kind.
Routing happens on interned integer kind-ids (see
:func:`repro.net.message.register_kind`); string names are accepted at
registration time for convenience and resolved once.

``Demux`` exposes its handler mapping through ``dispatch_table()``, so a
demux attached to a :class:`~repro.net.network.Network` is dispatched
directly by the fabric — registered kinds never pass through
``on_message`` at all; only unrouted envelopes do (and are counted).
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.net.message import Envelope, intern_kind, kind_name


class Demux:
    """Routes envelopes to per-kind handlers, keyed by kind-id."""

    __slots__ = ("_handlers", "unrouted")

    def __init__(self) -> None:
        self._handlers: Dict[int, Callable[[Envelope], None]] = {}
        self.unrouted = 0

    def register(self, kind: Union[str, int],
                 handler: Callable[[Envelope], None]) -> None:
        """Register ``handler`` for a payload kind (name or kind-id).

        A string name is resolved against the global kind registry and
        raises :class:`KeyError` if the kind was never registered —
        silently minting a new kind here would skew kind-id tables
        across fork/spawn shard workers.  Register payload kinds at
        module import time (``register_kind``) and prefer passing the
        payload class's ``kind_id``.
        """
        kind_id = intern_kind(kind) if isinstance(kind, str) else kind
        if kind_id in self._handlers:
            raise ValueError(
                f"handler for kind {kind_name(kind_id)!r} already registered")
        self._handlers[kind_id] = handler

    def dispatch_table(self) -> Dict[int, Callable[[Envelope], None]]:
        """The live kind-id -> handler mapping (captured by the network)."""
        return self._handlers

    def on_message(self, envelope: Envelope) -> None:
        handler = self._handlers.get(envelope.payload.kind_id)
        if handler is None:
            self.unrouted += 1
            return
        handler(envelope)
