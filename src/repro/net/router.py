"""The delivery routing layer of the network fabric.

PR 3 made the *send* side of the protocol↔network API batched and
table-driven; this module does the same to the *delivery* side by making
it a first-class, pluggable object.  A :class:`Router` owns everything
that happens between "the datagram left the wire pipeline" and "an
endpoint handler ran":

* **arrival scheduling** — placing the envelope in the event loop at its
  arrival time;
* **arrival-time bucketing** — envelopes sharing one exact arrival
  timestamp drain through a single :meth:`Router.deliver_bucket` call,
  so receiver-side :class:`~repro.net.stats.NetworkStats` accumulate
  once per kind group of a bucket instead of once per envelope;
* **delivery semantics** — crash checks, kind-id dispatch-table lookup,
  the ``on_deliver`` observer, and envelope recycling.

Two implementations ship:

* :class:`InprocRouter` (the default) delivers within the owning
  process and reproduces the historical ``Network._deliver`` behaviour
  bit-for-bit: same arrival times, same handler order, same stats.
* :class:`~repro.net.shard.ShardRouter` partitions the node population
  across shards: envelopes for locally-owned destinations take exactly
  the in-process path, envelopes for remote destinations are serialized
  into kind-id-tagged wire tuples and exchanged at conservative
  time-window boundaries (see :mod:`repro.net.shard`).

The split point matters: senders (``Network.send``/``send_many``) decide
*whether and when* a datagram arrives — uplink serialization, loss,
latency all draw on the sender's side — so a router never consumes RNG.
Routing is therefore free to move a delivery across process boundaries
without perturbing any random stream, which is what makes sharded
execution deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Protocol, runtime_checkable

from repro.net.message import Envelope

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

#: Upper bound on the envelope free list (reuse_envelopes=True).
POOL_CAP = 512


@runtime_checkable
class Router(Protocol):
    """What the network fabric requires of a delivery router."""

    def bind(self, net: "Network") -> None:
        """Attach to a fabric.  Called once from ``Network.__init__``."""
        ...

    def route(self, envelope: Envelope) -> None:
        """Accept one datagram that survived the send pipeline.

        The router must arrange for the envelope to be delivered at
        ``envelope.arrival_time`` (or dropped, if the destination is
        dead/unknown by then).
        """
        ...

    def deliver_bucket(self, envelopes: List[Envelope]) -> None:
        """Deliver one arrival bucket (envelopes sharing a timestamp),
        in order, with receiver stats accumulated per kind group."""
        ...


class _ArrivalBucket:
    """One pending arrival timestamp: the event-loop entry that drains
    every envelope routed to that instant through ``deliver_bucket``.

    The bucket object *is* the scheduled event (mirroring how envelopes
    themselves used to be), so coalescing costs one small object per
    distinct arrival timestamp instead of one event per datagram.
    """

    __slots__ = ("router", "envelopes")

    def __init__(self, router: "InprocRouter", envelope: Envelope):
        self.router = router
        self.envelopes = [envelope]

    def __call__(self) -> None:
        self.router.deliver_bucket(self.envelopes)


class InprocRouter:
    """Default router: in-process delivery with arrival-time bucketing.

    Scheduling piggybacks on the simulator's calendar-queue buckets: when
    an envelope's arrival timestamp already ends with this router's
    arrival bucket, the envelope joins it; otherwise a fresh bucket is
    posted on the fire-and-forget path.  Same-timestamp deliveries
    therefore drain through one ``deliver_bucket`` call — receiver-side
    stats accumulate once per kind group — while distinct timestamps pay
    exactly one event each, as before.

    Ordering note: an envelope only joins an existing bucket when no
    other event was enqueued at that timestamp in between, so the
    historical (time, enqueue order) total order is preserved.
    """

    __slots__ = ("_net", "_sim")

    def __init__(self) -> None:
        self._net: "Network" = None  # type: ignore[assignment]
        self._sim = None

    # ------------------------------------------------------------------
    # Router protocol
    # ------------------------------------------------------------------
    def bind(self, net: "Network") -> None:
        self._net = net
        self._sim = net._sim

    def route(self, envelope: Envelope) -> None:
        """Schedule ``envelope`` for delivery at its arrival time.

        Peeks at the engine's pending buckets (``Simulator._buckets``,
        whose docstring names this dependency): the run loop pops a
        bucket before draining it, so a bucket reachable there is
        entirely in the future and appending to its tail arrival bucket
        is always sound.
        """
        sim = self._sim
        arrival = envelope.arrival_time
        bucket = sim._buckets.get(arrival)
        if bucket is not None:
            last = bucket[-1]
            if last.__class__ is _ArrivalBucket and last.router is self:
                # Coalesce: no event was enqueued at this timestamp since
                # the bucket formed, so appending preserves total order.
                last.envelopes.append(envelope)
                return
        sim.post_at(arrival, _ArrivalBucket(self, envelope))

    def route_many(self, envelopes: Iterable[Envelope]) -> None:
        """Schedule a run of envelopes, exploiting their arrival order.

        Semantically identical to calling :meth:`route` once per
        envelope, but built for decoded cross-shard wire buffers, whose
        rows arrive grouped: consecutive envelopes sharing one arrival
        timestamp join the open arrival bucket directly — no per-envelope
        pending-bucket lookup, no per-envelope event — so a same-window
        burst pays one scheduling step per *distinct* arrival time.

        Sound because nothing else is enqueued between two iterations of
        this loop: an appended envelope lands exactly where a ``route``
        call would have put it.
        """
        sim = self._sim
        buckets = sim._buckets
        post_at = sim.post_at
        open_arrival = None
        open_list: List[Envelope] = []
        for envelope in envelopes:
            arrival = envelope.arrival_time
            if arrival == open_arrival:
                open_list.append(envelope)
                continue
            bucket = buckets.get(arrival)
            if bucket is not None:
                last = bucket[-1]
                if last.__class__ is _ArrivalBucket and last.router is self:
                    last.envelopes.append(envelope)
                    open_arrival = arrival
                    open_list = last.envelopes
                    continue
            arrival_bucket = _ArrivalBucket(self, envelope)
            post_at(arrival, arrival_bucket)
            open_arrival = arrival
            open_list = arrival_bucket.envelopes

    def deliver_bucket(self, envelopes: Iterable[Envelope]) -> None:
        """Deliver every envelope of one arrival bucket, in order.

        Receiver-side global stats land as one bulk accumulation per
        kind group (``NetworkStats.add_received``) instead of one update
        per envelope; per-node counters are inherently per-envelope.
        """
        net = self._net
        crash_time = net._crash_time
        delivery = net._delivery
        stats = net.stats
        on_deliver = net.on_deliver
        pool = net._pool if on_deliver is None else None
        dropped = 0
        # Per-kind receive accumulator.  Buckets are overwhelmingly
        # single-kind (often single-envelope), so track one open group
        # and flush on kind change instead of building a dict.
        acc_kind = -1
        acc_count = 0
        acc_bytes = 0
        add_received = stats.add_received
        for envelope in envelopes:
            if crash_time:
                src_crash = crash_time.get(envelope.src)
                if src_crash is not None and envelope._exit_time > src_crash:
                    # Still queued in the sender's dead process.
                    dropped += 1
                    continue
                if envelope.dst in crash_time:
                    dropped += 1
                    continue
            entry = delivery.get(envelope.dst)
            if entry is None:
                dropped += 1
                continue
            endpoint, node_stats, table, _ = entry
            size = envelope.size_bytes
            node_stats.bytes_down += size
            node_stats.datagrams_down += 1
            kind_id = envelope.payload.kind_id
            if kind_id != acc_kind:
                if acc_count:
                    add_received(acc_kind, acc_count, acc_bytes)
                acc_kind = kind_id
                acc_count = 1
                acc_bytes = size
            else:
                acc_count += 1
                acc_bytes += size
            if on_deliver is not None:
                on_deliver(envelope)
            if table is not None:
                handler = table.get(kind_id)
                if handler is not None:
                    handler(envelope)
                else:
                    endpoint.on_message(envelope)
            else:
                endpoint.on_message(envelope)
            # Observer may retain the envelope: never recycle then.
            if pool is not None and len(pool) < POOL_CAP:
                pool.append(envelope)
        if acc_count:
            add_received(acc_kind, acc_count, acc_bytes)
        if dropped:
            stats.dropped_dead += dropped
