"""End-to-end latency models.

These stand in for Internet propagation delay between PlanetLab sites.
The dissemination results depend on the *relative order* of propose
arrivals (fast senders win requests), so any model with realistic spread
reproduces the paper's qualitative behaviour; the default experiment
setup uses :class:`PairwiseLatency`, which assigns every ordered pair a
stable base latency plus per-message jitter — approximating a geographic
topology without needing coordinates.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Tuple


class LatencyModel(ABC):
    """Samples one-way network delay (seconds) for a (src, dst) pair."""

    __slots__ = ()

    @abstractmethod
    def sample(self, src: int, dst: int) -> float:
        """Return the one-way delay for one message from src to dst."""

    def mean(self) -> float:
        """Approximate mean one-way delay (used in docs/diagnostics)."""
        raise NotImplementedError

    def lower_bound(self) -> float:
        """A hard lower bound on any sampled delay, in seconds.

        Sharded execution uses this as its conservative lookahead: a
        datagram sent at time *t* can never arrive before ``t +
        lower_bound()``, so shards may safely advance in windows of that
        width between cross-shard message exchanges.  Models that cannot
        guarantee a positive bound return 0.0 (which disables sharding).
        """
        return 0.0


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds.  Useful in tests."""

    __slots__ = ("delay",)

    def __init__(self, delay: float = 0.05):
        if delay < 0:
            raise ValueError(f"negative latency {delay!r}")
        self.delay = delay

    def sample(self, src: int, dst: int) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def lower_bound(self) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high) independently per message."""

    __slots__ = ("_rng", "low", "high")

    def __init__(self, rng: random.Random, low: float = 0.01, high: float = 0.1):
        if not 0 <= low <= high:
            raise ValueError(f"invalid range [{low}, {high})")
        self._rng = rng
        self.low = low
        self.high = high

    def sample(self, src: int, dst: int) -> float:
        return self._rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def lower_bound(self) -> float:
        return self.low


class LogNormalLatency(LatencyModel):
    """Heavy-ish tailed delay: ``exp(N(mu, sigma))`` clamped to ``floor``.

    Parameterized by the desired *median* latency for readability; the
    underlying mu is ``ln(median)``.
    """

    __slots__ = ("_rng", "median", "sigma", "floor", "_mu")

    def __init__(self, rng: random.Random, median: float = 0.05,
                 sigma: float = 0.5, floor: float = 0.002):
        if median <= 0:
            raise ValueError(f"median must be positive, got {median!r}")
        self._rng = rng
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self._mu = math.log(median)

    def sample(self, src: int, dst: int) -> float:
        return max(self.floor, self._rng.lognormvariate(self._mu, self.sigma))

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma ** 2 / 2)

    def lower_bound(self) -> float:
        return self.floor


class PairwiseLatency(LatencyModel):
    """Stable per-pair base latency plus per-message jitter.

    Each unordered pair {a, b} gets a base delay drawn once from a
    lognormal distribution (so some pairs are 'far apart', some close),
    and each message adds uniform jitter.  Bases are memoized lazily so
    the model works for any node-id universe without pre-sizing a matrix.
    """

    __slots__ = ("_rng", "median_base", "sigma", "jitter", "floor", "_mu",
                 "_bases")

    def __init__(self, rng: random.Random, median_base: float = 0.05,
                 sigma: float = 0.6, jitter: float = 0.01, floor: float = 0.002):
        self._rng = rng
        self.median_base = median_base
        self.sigma = sigma
        self.jitter = jitter
        self.floor = floor
        self._mu = math.log(median_base)
        self._bases: Dict[Tuple[int, int], float] = {}

    def base(self, src: int, dst: int) -> float:
        """The stable base latency for the unordered pair {src, dst}."""
        key = (src, dst) if src <= dst else (dst, src)
        value = self._bases.get(key)
        if value is None:
            value = max(self.floor, self._rng.lognormvariate(self._mu, self.sigma))
            self._bases[key] = value
        return value

    def sample(self, src: int, dst: int) -> float:
        # Inlined base() lookup and jitter draw: this runs once per
        # datagram.  ``jitter * random()`` is bit-identical to
        # ``uniform(0, jitter)`` and consumes the same single draw, so the
        # RNG stream (and therefore every seeded result) is unchanged.
        jitter = self.jitter * self._rng.random() if self.jitter > 0 else 0.0
        key = (src, dst) if src <= dst else (dst, src)
        base = self._bases.get(key)
        if base is None:
            base = max(self.floor, self._rng.lognormvariate(self._mu, self.sigma))
            self._bases[key] = base
        return base + jitter

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma ** 2 / 2) + self.jitter / 2

    def lower_bound(self) -> float:
        return self.floor


class PerPairLatency(LatencyModel):
    """Pairwise latency with *order-independent* random draws.

    Statistically the same shape as :class:`PairwiseLatency` — a stable
    lognormal base per unordered pair plus uniform per-message jitter —
    but every random value is drawn from a stream derived purely from
    the model seed and the pair identity:

    * the base delay of pair ``{a, b}`` comes from a dedicated generator
      seeded by ``(seed, "base", a, b)``;
    * the k-th message on the *directed* link ``src -> dst`` draws its
      jitter from a dedicated generator seeded by
      ``(seed, "jitter", src, dst)``.

    :class:`PairwiseLatency` consumes one shared stream in global send
    order, which couples every node's arrivals to the total order of
    events across the whole system.  Here draws depend only on each
    sender's own per-destination send sequence, so a run partitioned
    across shards (where global order is not reproducible) samples
    exactly the same delays as the serial run.  This is the latency mode
    sharded execution requires (``ScenarioConfig.latency_rng ==
    "per-pair"``).
    """

    __slots__ = ("_seed", "median_base", "sigma", "jitter", "floor", "_mu",
                 "_bases", "_jitter_rngs")

    def __init__(self, seed: int, median_base: float = 0.05,
                 sigma: float = 0.6, jitter: float = 0.01, floor: float = 0.002):
        if median_base <= 0:
            raise ValueError(f"median must be positive, got {median_base!r}")
        self._seed = seed
        self.median_base = median_base
        self.sigma = sigma
        self.jitter = jitter
        self.floor = floor
        self._mu = math.log(median_base)
        self._bases: Dict[Tuple[int, int], float] = {}
        #: Directed-pair jitter streams, created lazily on first send.
        self._jitter_rngs: Dict[Tuple[int, int], random.Random] = {}

    def _derive(self, *parts) -> int:
        from repro.sim.rng import derive_seed

        return derive_seed(self._seed, ":".join(str(p) for p in parts))

    def base(self, src: int, dst: int) -> float:
        """The stable base latency for the unordered pair {src, dst}."""
        key = (src, dst) if src <= dst else (dst, src)
        value = self._bases.get(key)
        if value is None:
            rng = random.Random(self._derive("base", key[0], key[1]))
            value = max(self.floor, rng.lognormvariate(self._mu, self.sigma))
            self._bases[key] = value
        return value

    def sample(self, src: int, dst: int) -> float:
        if self.jitter > 0:
            key = (src, dst)
            rng = self._jitter_rngs.get(key)
            if rng is None:
                rng = random.Random(self._derive("jitter", src, dst))
                self._jitter_rngs[key] = rng
            jitter = self.jitter * rng.random()
        else:
            jitter = 0.0
        return self.base(src, dst) + jitter

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma ** 2 / 2) + self.jitter / 2

    def lower_bound(self) -> float:
        return self.floor
