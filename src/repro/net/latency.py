"""End-to-end latency models.

These stand in for Internet propagation delay between PlanetLab sites.
The dissemination results depend on the *relative order* of propose
arrivals (fast senders win requests), so any model with realistic spread
reproduces the paper's qualitative behaviour; the default experiment
setup uses :class:`PairwiseLatency`, which assigns every ordered pair a
stable base latency plus per-message jitter — approximating a geographic
topology without needing coordinates.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Tuple


class LatencyModel(ABC):
    """Samples one-way network delay (seconds) for a (src, dst) pair."""

    @abstractmethod
    def sample(self, src: int, dst: int) -> float:
        """Return the one-way delay for one message from src to dst."""

    def mean(self) -> float:
        """Approximate mean one-way delay (used in docs/diagnostics)."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds.  Useful in tests."""

    def __init__(self, delay: float = 0.05):
        if delay < 0:
            raise ValueError(f"negative latency {delay!r}")
        self.delay = delay

    def sample(self, src: int, dst: int) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high) independently per message."""

    def __init__(self, rng: random.Random, low: float = 0.01, high: float = 0.1):
        if not 0 <= low <= high:
            raise ValueError(f"invalid range [{low}, {high})")
        self._rng = rng
        self.low = low
        self.high = high

    def sample(self, src: int, dst: int) -> float:
        return self._rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2


class LogNormalLatency(LatencyModel):
    """Heavy-ish tailed delay: ``exp(N(mu, sigma))`` clamped to ``floor``.

    Parameterized by the desired *median* latency for readability; the
    underlying mu is ``ln(median)``.
    """

    def __init__(self, rng: random.Random, median: float = 0.05,
                 sigma: float = 0.5, floor: float = 0.002):
        if median <= 0:
            raise ValueError(f"median must be positive, got {median!r}")
        self._rng = rng
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self._mu = math.log(median)

    def sample(self, src: int, dst: int) -> float:
        return max(self.floor, self._rng.lognormvariate(self._mu, self.sigma))

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma ** 2 / 2)


class PairwiseLatency(LatencyModel):
    """Stable per-pair base latency plus per-message jitter.

    Each unordered pair {a, b} gets a base delay drawn once from a
    lognormal distribution (so some pairs are 'far apart', some close),
    and each message adds uniform jitter.  Bases are memoized lazily so
    the model works for any node-id universe without pre-sizing a matrix.
    """

    def __init__(self, rng: random.Random, median_base: float = 0.05,
                 sigma: float = 0.6, jitter: float = 0.01, floor: float = 0.002):
        self._rng = rng
        self.median_base = median_base
        self.sigma = sigma
        self.jitter = jitter
        self.floor = floor
        self._mu = math.log(median_base)
        self._bases: Dict[Tuple[int, int], float] = {}

    def base(self, src: int, dst: int) -> float:
        """The stable base latency for the unordered pair {src, dst}."""
        key = (src, dst) if src <= dst else (dst, src)
        value = self._bases.get(key)
        if value is None:
            value = max(self.floor, self._rng.lognormvariate(self._mu, self.sigma))
            self._bases[key] = value
        return value

    def sample(self, src: int, dst: int) -> float:
        # Inlined base() lookup and jitter draw: this runs once per
        # datagram.  ``jitter * random()`` is bit-identical to
        # ``uniform(0, jitter)`` and consumes the same single draw, so the
        # RNG stream (and therefore every seeded result) is unchanged.
        jitter = self.jitter * self._rng.random() if self.jitter > 0 else 0.0
        key = (src, dst) if src <= dst else (dst, src)
        base = self._bases.get(key)
        if base is None:
            base = max(self.floor, self._rng.lognormvariate(self._mu, self.sigma))
            self._bases[key] = base
        return base + jitter

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma ** 2 / 2) + self.jitter / 2
