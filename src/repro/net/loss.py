"""Datagram loss models, standing in for UDP drops on the Internet.

The paper copes with loss through retransmission timers (Algorithm 2) and
observes that "when running simulations without message loss, 100% of the
nodes received the full stream" — our :class:`NoLoss` default reproduces
that; the loss benches use :class:`BernoulliLoss` and the bursty
:class:`GilbertElliottLoss`.  :class:`PerPairLoss` is the
order-independent Bernoulli variant sharded execution requires
(``ScenarioConfig.loss_rng="per-pair"``), mirroring
:class:`~repro.net.latency.PerPairLatency`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Tuple


class LossModel(ABC):
    """Decides, per datagram, whether the network drops it."""

    __slots__ = ()

    #: Hot-path hint: when False the network skips is_lost() entirely.
    #: Models that consume RNG draws must keep this True even at rate 0,
    #: so a zero-rate model stays stream-compatible with a lossy one.
    active = True

    @abstractmethod
    def is_lost(self, src: int, dst: int) -> bool:
        """Return True if this datagram should be silently dropped."""


class NoLoss(LossModel):
    """Perfect delivery."""

    __slots__ = ()

    active = False

    def is_lost(self, src: int, dst: int) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Each datagram is dropped independently with probability ``rate``."""

    __slots__ = ("_rng", "rate")

    def __init__(self, rng: random.Random, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate!r}")
        self._rng = rng
        self.rate = rate

    def is_lost(self, src: int, dst: int) -> bool:
        return self._rng.random() < self.rate


class PerPairLoss(LossModel):
    """Bernoulli loss with *order-independent* random draws.

    Statistically identical to :class:`BernoulliLoss` — every datagram is
    dropped independently with probability ``rate`` — but the k-th
    datagram on the *directed* link ``src -> dst`` draws its trial from a
    dedicated generator seeded by ``(seed, src, dst)``, never from a
    stream shared across links.

    :class:`BernoulliLoss` consumes one shared stream in global send
    order, which couples every link's drop decisions to the total order
    of sends across the whole system.  Here a link's decisions are a pure
    function of the model seed, the link identity, and the sender's own
    per-destination send sequence — so a run partitioned across shards
    (where global order is not reproducible) drops exactly the same
    datagrams as the serial run.  This is the loss mode sharded execution
    requires (``ScenarioConfig.loss_rng == "per-pair"``).
    """

    __slots__ = ("_seed", "rate", "_rngs")

    def __init__(self, seed: int, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate!r}")
        self._seed = seed
        self.rate = rate
        #: Directed-link trial streams, created lazily on first send.
        self._rngs: Dict[Tuple[int, int], random.Random] = {}

    def is_lost(self, src: int, dst: int) -> bool:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            from repro.sim.rng import derive_seed

            rng = random.Random(derive_seed(self._seed, f"{src}->{dst}"))
            self._rngs[key] = rng
        return rng.random() < self.rate


class GilbertElliottLoss(LossModel):
    """Two-state (good/bad) bursty loss, tracked per directed link.

    In the good state datagrams are dropped with ``good_loss`` probability,
    in the bad state with ``bad_loss``.  Transitions happen per datagram
    with probabilities ``p_good_to_bad`` and ``p_bad_to_good``, giving
    geometrically distributed burst lengths, the classic Gilbert-Elliott
    channel.
    """

    __slots__ = ("_rng", "p_good_to_bad", "p_bad_to_good", "good_loss",
                 "bad_loss", "_bad_state")

    def __init__(self, rng: random.Random, p_good_to_bad: float = 0.01,
                 p_bad_to_good: float = 0.3, good_loss: float = 0.0,
                 bad_loss: float = 0.5):
        for name, p in (("p_good_to_bad", p_good_to_bad), ("p_bad_to_good", p_bad_to_good),
                        ("good_loss", good_loss), ("bad_loss", bad_loss)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        self._rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self._bad_state: Dict[tuple, bool] = {}

    def is_lost(self, src: int, dst: int) -> bool:
        key = (src, dst)
        bad = self._bad_state.get(key, False)
        # Transition first, then sample loss in the new state.
        if bad:
            if self._rng.random() < self.p_bad_to_good:
                bad = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                bad = True
        self._bad_state[key] = bad
        rate = self.bad_loss if bad else self.good_loss
        return rate > 0 and self._rng.random() < rate

    def steady_state_bad_fraction(self) -> float:
        """Long-run fraction of time a link spends in the bad state."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return 0.0
        return self.p_good_to_bad / denom
