"""Baselines beyond standard gossip.

The paper's introduction motivates gossip by the fragility of a *static
tree* ("our preliminary experiments revealed the difficulty of
disseminating through a static tree without any reconstruction even
among 30 nodes").  :mod:`repro.baselines.tree` implements that
comparator: a fixed k-ary push tree with no repair.
"""

from repro.baselines.tree import StaticTreeNode, TreePush, build_kary_tree

__all__ = ["StaticTreeNode", "TreePush", "build_kary_tree"]
