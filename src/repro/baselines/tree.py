"""Static k-ary push-tree dissemination (the introduction's strawman).

The source is the root; every node forwards each packet to its fixed
children the moment it first receives it.  There is no repair protocol:
a lost datagram or a crashed interior node silently starves the whole
subtree — the brittleness the paper's introduction uses to motivate
proactive gossip.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.net.message import Envelope, register_kind
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.streaming.packets import StreamPacket
from repro.streaming.receiver import ReceiverLog

#: Fixed header bytes inside a tree-push datagram payload.
_HEADER_BYTES = 8
#: Per-packet framing bytes.
_PACKET_OVERHEAD = 12


class TreePush:
    """Payload carrying stream packets down the tree."""

    kind = "tree-push"
    kind_id = register_kind("tree-push")
    __slots__ = ("packets",)

    def __init__(self, packets: List[StreamPacket]):
        self.packets = packets

    def wire_size(self) -> int:
        return _HEADER_BYTES + sum(p.size_bytes + _PACKET_OVERHEAD
                                   for p in self.packets)


def build_kary_tree(node_ids: Sequence[int], arity: int) -> Dict[int, List[int]]:
    """Arrange ``node_ids`` (root first) into a complete k-ary tree.

    Returns a children map: ``children[node] == [child, ...]``.
    """
    if arity < 1:
        raise ValueError(f"arity must be >= 1, got {arity!r}")
    ids = list(node_ids)
    children: Dict[int, List[int]] = {node_id: [] for node_id in ids}
    for position, node_id in enumerate(ids):
        for k in range(arity):
            child_position = position * arity + 1 + k
            if child_position < len(ids):
                children[node_id].append(ids[child_position])
    return children


class StaticTreeNode:
    """One node of the static push tree."""

    __slots__ = ("_sim", "_net", "node_id", "children", "capability_bps",
                 "log", "packets_forwarded", "_dispatch")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 children: List[int], capability_bps: float):
        self._sim = sim
        self._net = net
        self.node_id = node_id
        self.children = list(children)
        self.capability_bps = capability_bps
        self.log = ReceiverLog(node_id)
        self.packets_forwarded = 0
        self._dispatch = {TreePush.kind_id: self._handle_push}

    def publish(self, packet: StreamPacket) -> None:
        """Source entry point: deliver locally and push down the tree."""
        self._deliver(packet)

    def dispatch_table(self):
        """Kind-id dispatch (captured by ``Network.attach``)."""
        return self._dispatch

    def _handle_push(self, envelope: Envelope) -> None:
        for packet in envelope.payload.packets:
            if not self.log.has(packet.packet_id):
                self._deliver(packet)

    def on_message(self, envelope: Envelope) -> None:
        if envelope.payload.kind_id == TreePush.kind_id:
            self._handle_push(envelope)

    def _deliver(self, packet: StreamPacket) -> None:
        self.log.record(packet.packet_id, self._sim.now)
        children = self.children
        if children:
            self._net.send_many(self.node_id, children, TreePush([packet]))
            self.packets_forwarded += len(children)

    # The gossip runner calls these on every protocol node; the static
    # tree has no timers, so they are no-ops.
    def start(self, phase=None) -> None:
        return None

    def stop(self) -> None:
        return None
