"""Adversarial scenario engine: who misbehaves, how, and at what cost.

The package splits the adversary into orthogonal pieces:

* :mod:`~repro.adversary.registry` — the pluggable attack catalog
  (``@attack`` registration at import time, K301-style);
* :mod:`~repro.adversary.attacks` — the in-tree implementations
  (``underclaim``, ``nonserve``, ``spam``, ``withhold``,
  ``poisoned-view``);
* :mod:`~repro.adversary.placement` — topology-aware victim selection
  (``random``, ``high-degree``, ``edge``, ``clustered``);
* :mod:`~repro.adversary.mix` — :class:`AttackMix`, the frozen value a
  :class:`~repro.workloads.scenario.ScenarioConfig` carries, plus the
  pure ``(mix, seed, population, topology) -> placement`` sampler;
* :mod:`~repro.adversary.metrics` — per-victim impact reductions for
  the grid engine.

Importing the package imports :mod:`~repro.adversary.attacks`, so the
catalog is fully populated in every process that can build a scenario —
including fork/spawn shard workers.
"""

from repro.adversary import attacks as _attacks  # noqa: F401  (registers catalog)
from repro.adversary.metrics import (ATTACK_GRID_METRICS, attack_impact,
                                     spec_attack_impact)
from repro.adversary.mix import (AttackMix, Placement, effective_adversary,
                                 place_attackers)
from repro.adversary.placement import PLACEMENT_POLICIES, place_ids
from repro.adversary.registry import (ROLES, Attack, attack, attack_catalog,
                                      attack_names, get_attack, is_registered)


def catalog_jsonable() -> dict:
    """The attack catalog as one JSON-able payload.

    ``repro attacks --list --format json`` and the service control
    plane's ``GET /v1/catalog/attacks`` both serve exactly this value,
    so scripted clients see one schema regardless of transport.
    """
    return {
        "attacks": [entry.jsonable() for entry in attack_catalog()],
        "victim_policies": list(PLACEMENT_POLICIES),
        "roles": list(ROLES),
        "usage": ("sweep --attacks name=frac,... "
                  "[--attack-params name=value,...] "
                  "[--victim-policy POLICY]"),
    }


__all__ = [
    "catalog_jsonable",
    "ATTACK_GRID_METRICS",
    "Attack",
    "AttackMix",
    "PLACEMENT_POLICIES",
    "Placement",
    "attack",
    "attack_catalog",
    "attack_impact",
    "attack_names",
    "effective_adversary",
    "get_attack",
    "is_registered",
    "place_attackers",
    "place_ids",
    "spec_attack_impact",
]
