"""Topology-aware attacker placement policies.

Where an adversary sits matters as much as what it does: a withholding
hub starves more of the overlay than a withholding leaf, and a spammer
on a poor edge node congests only itself.  These policies pick *which*
receivers a scenario subverts, as a deterministic function of the
placement RNG and the population:

* ``random`` — uniform over the receivers (the historical freerider
  placement; its first draw is bit-compatible with the legacy
  ``freerider_*`` selection);
* ``high-degree`` — the overlay's hubs.  Under HEAP's adaptive fanout a
  node's out-degree is proportional to its advertised capability, so the
  highest-capability receivers *are* the high-degree nodes of the
  dissemination topology; ties are broken by a seeded shuffle;
* ``edge`` — the lowest-capability receivers (the overlay's leaves),
  ties again broken by a seeded shuffle;
* ``clustered`` — one contiguous id block starting at a seeded offset
  (wrapping around), modelling a subverted rack/AS whose members are
  adjacent in the id space.

Every policy returns a **sorted** id list and consumes a bounded,
order-fixed number of draws from the RNG it is given, so placement is a
pure function of (seed, population, capability topology) — the property
sharded execution and the hypothesis suite pin.
"""

from __future__ import annotations

import random
from typing import List, Sequence

#: The placement policies ``AttackMix.victim_policy`` accepts.
PLACEMENT_POLICIES = ("random", "high-degree", "edge", "clustered")


def place_ids(policy: str, rng: random.Random, receivers: Sequence[int],
              capacities: Sequence[float], count: int) -> List[int]:
    """Pick ``count`` attacker ids from ``receivers`` under ``policy``.

    ``capacities`` is indexed by node id (the source's entry is present
    but never chosen — receivers exclude it).  Raises on an unknown
    policy; returns a sorted list, possibly shorter than ``count`` when
    the population is.
    """
    receivers = list(receivers)
    count = min(count, len(receivers))
    if count <= 0:
        return []
    if policy == "random":
        # First draw = the legacy freerider selection, bit for bit.
        return sorted(rng.sample(receivers, count))
    if policy in ("high-degree", "edge"):
        # Seeded shuffle first, stable sort second: equal-capability
        # nodes (class-based distributions have many) enter the cut in
        # seeded random order instead of id order.
        shuffled = receivers[:]
        rng.shuffle(shuffled)
        sign = -1.0 if policy == "high-degree" else 1.0
        ranked = sorted(shuffled, key=lambda node_id: sign * capacities[node_id])
        return sorted(ranked[:count])
    if policy == "clustered":
        start = rng.randrange(len(receivers))
        block = [receivers[(start + i) % len(receivers)] for i in range(count)]
        return sorted(block)
    raise ValueError(f"unknown victim policy {policy!r}; "
                     f"known: {', '.join(PLACEMENT_POLICIES)}")
