"""The in-tree attack implementations.

Every attack here is *rational*: the adversary keeps consuming the
stream normally and deviates only in what it gives back — upload
bandwidth, forwarding work, or truthful protocol state.  Each class
registers itself in the attack catalog at import time (see
:mod:`repro.adversary.registry`) and exposes its attack-specific
counters through ``attack_stats()`` so impact metrics survive the
sharded harvest.

Node-role attacks subclass :class:`~repro.core.heap.HeapGossipNode` and
take the attack parameter as their eighth positional argument (after the
honest constructor signature); the sampler-role attack subclasses
:class:`~repro.membership.peer_sampling.PeerSamplingService`.

* ``underclaim`` / ``nonserve`` are the original freerider pair, moved
  here from ``repro.freeriders.nodes`` (which re-exports them);
* ``spam`` floods proposals far beyond the fanout budget, congesting its
  own uplink and pulling requests toward a saturated server;
* ``withhold`` receives everything but selectively never proposes,
  silently starving the paths that run through it;
* ``poisoned-view`` advertises fabricated membership entries into Cyclon
  shuffle exchanges, biasing honest partial views toward the attacker
  coalition.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.adversary.registry import attack
from repro.core.config import GossipConfig
from repro.core.heap import HeapGossipNode
from repro.core.messages import Propose, Request
from repro.membership.peer_sampling import PeerSamplingService
from repro.membership.view import LocalView
from repro.net.network import Network
from repro.sim.engine import Simulator


@attack("underclaim",
        channel="capability aggregation (advertised b_p)",
        detection=("evades the answered/asked audit — behaviour is "
                   "self-consistent; only the contribution index "
                   "(served/consumed) betrays it, and that also flags "
                   "honest poverty"),
        default_param=0.1,
        param_doc="claim factor: advertised = param * true capability")
class UnderclaimingNode(HeapGossipNode):
    """Advertises ``claim_factor * capability`` to HEAP's aggregation.

    It exploits exactly the channel the paper worries about: HEAP assigns
    it a small fanout, it proposes rarely, gets pulled rarely, and its
    uplink stays idle — while its download is untouched.  Nothing about
    its *visible* behaviour is inconsistent: it behaves exactly like an
    honest poor node, which is what makes the attack attractive (and
    detection subtle).
    """

    __slots__ = ("claim_factor", "true_capability_bps")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float, claim_factor: float = 0.1):
        if not 0.0 < claim_factor <= 1.0:
            raise ValueError(f"claim_factor must be in (0, 1], got {claim_factor!r}")
        self.claim_factor = claim_factor
        self.true_capability_bps = capability_bps
        super().__init__(sim, net, node_id, view, config, rng,
                         capability_bps * claim_factor)
        # The uplink itself keeps the true capacity (set by the runner);
        # only the *advertised* capability is a lie.

    def attack_stats(self) -> Dict[str, int]:
        return {}


@attack("nonserve",
        channel="serve phase (drops [Request]s)",
        detection=("caught directly: every requester observes the "
                   "answered/asked ratio first-hand and gossiped audit "
                   "reports converge to convictions"),
        default_param=0.2,
        param_doc="serve probability: answers param of received requests")
class NonServingNode(HeapGossipNode):
    """Honest everywhere except the serve phase."""

    __slots__ = ("serve_probability", "requests_dropped")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float, serve_probability: float = 0.2):
        if not 0.0 <= serve_probability <= 1.0:
            raise ValueError(
                f"serve_probability must be in [0, 1], got {serve_probability!r}")
        super().__init__(sim, net, node_id, view, config, rng, capability_bps)
        self.serve_probability = serve_probability
        self.requests_dropped = 0

    def _on_request(self, src: int, request: Request) -> None:
        if self._rng.random() < self.serve_probability:
            super()._on_request(src, request)
        else:
            self.requests_dropped += 1

    def attack_stats(self) -> Dict[str, int]:
        return {"requests_dropped": self.requests_dropped}


@attack("spam",
        channel="propose phase (floods beyond the fanout budget)",
        detection=("visible as anomalous propose volume and a saturated "
                   "uplink; the ratio audit flags it indirectly once its "
                   "congested serves start timing out"),
        default_param=0.25,
        param_doc="flood fraction: proposes to param of the view per round")
class SpammingNode(HeapGossipNode):
    """Proposes to a fixed fraction of its entire view every round.

    The adaptive fanout exists to keep propose volume inside the uplink
    budget; the spammer ignores it and floods, so receivers across the
    overlay request from a node whose uplink is saturated by its own
    propose traffic — serves queue behind spam, retransmission timers
    fire, and lag rises beyond the attacker's own neighborhood.
    """

    __slots__ = ("flood_fraction", "spam_proposes")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float, flood_fraction: float = 0.25):
        if not 0.0 < flood_fraction <= 1.0:
            raise ValueError(
                f"flood_fraction must be in (0, 1], got {flood_fraction!r}")
        super().__init__(sim, net, node_id, view, config, rng, capability_bps)
        self.flood_fraction = flood_fraction
        self.spam_proposes = 0

    def _gossip(self, ids: List[int]) -> None:
        fanout = self.get_fanout()
        self.partners_per_round.append(fanout)
        flood = max(fanout, round(self.flood_fraction * len(self.view)))
        if flood <= 0:
            return
        partners = self.selector.select(self.view, flood)
        if not partners:
            return
        self._net.send_many(self.node_id, partners, Propose(ids))
        self.proposes_sent += len(partners)
        self.spam_proposes += max(0, len(partners) - fanout)

    def attack_stats(self) -> Dict[str, int]:
        return {"spam_proposes": self.spam_proposes}


@attack("withhold",
        channel="propose phase (selective silence)",
        detection=("like underclaiming, the ratio audit is blind — it "
                   "answers what little it is asked; its signature is a "
                   "propose volume far below its advertised capability"),
        default_param=0.1,
        param_doc="forward probability: proposes param of delivered ids")
class WithholdingNode(HeapGossipNode):
    """Receives everything, forwards almost nothing.

    Each freshly delivered id is proposed onward with probability
    ``forward_probability`` and silently withheld otherwise — the ids
    are still *delivered* locally (the attacker watches the stream), so
    unlike a crashed node it keeps requesting, keeps acking audits, and
    keeps advertising its true capability.  HEAP consequently assigns it
    a high fanout it never uses: every dissemination path through it
    goes dark.
    """

    __slots__ = ("forward_probability", "ids_withheld")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float, forward_probability: float = 0.1):
        if not 0.0 < forward_probability <= 1.0:
            raise ValueError(f"forward_probability must be in (0, 1], "
                             f"got {forward_probability!r}")
        super().__init__(sim, net, node_id, view, config, rng, capability_bps)
        self.forward_probability = forward_probability
        self.ids_withheld = 0

    def _on_gossip_tick(self) -> None:
        self.rounds += 1
        if not self._to_propose:
            return
        ids = self._to_propose
        self._to_propose = []  # infect and die, even for withheld ids
        kept = [packet_id for packet_id in ids
                if self._rng.random() < self.forward_probability]
        self.ids_withheld += len(ids) - len(kept)
        if kept:
            self._gossip(kept)

    def attack_stats(self) -> Dict[str, int]:
        return {"ids_withheld": self.ids_withheld}


@attack("poisoned-view", role="sampler",
        channel="peer sampling (fabricated Cyclon shuffle entries)",
        detection=("invisible to the freerider audit (the gossip node is "
                   "honest); shows up as view-diversity loss — honest "
                   "partial views drift toward the attacker coalition"),
        default_param=0.5,
        param_doc="poison fraction: fabricated share of each shuffle payload",
        requires_membership="cyclon")
class PoisonedSamplingService(PeerSamplingService):
    """Poisons every Cyclon exchange it takes part in.

    A ``poison_fraction`` share of each outgoing shuffle payload (request
    and reply alike) is replaced by fabricated age-0 entries pointing at
    the attacker coalition — fresh-looking, false membership state.
    Honest views fill with coalition entries, crowding out genuine
    peers: sampling uniformity degrades and dissemination concentrates
    on nodes the adversary controls.
    """

    __slots__ = ("poison_fraction", "accomplices", "entries_poisoned")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 rng: random.Random, view_size: int = 20,
                 shuffle_length: int = 8, period: float = 1.0,
                 poison_fraction: float = 0.5,
                 accomplices: Tuple[int, ...] = ()):
        if not 0.0 < poison_fraction <= 1.0:
            raise ValueError(f"poison_fraction must be in (0, 1], "
                             f"got {poison_fraction!r}")
        super().__init__(sim, net, node_id, rng, view_size=view_size,
                         shuffle_length=shuffle_length, period=period)
        self.poison_fraction = poison_fraction
        self.accomplices = tuple(a for a in accomplices if a != node_id)
        self.entries_poisoned = 0

    def _outgoing(self, entries: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        if not entries:
            return entries
        fabricate = max(1, round(self.poison_fraction * len(entries)))
        fabricate = min(fabricate, len(entries))
        pool = (self.node_id,) + self.accomplices
        kept = entries[:len(entries) - fabricate]
        fabricated = [(pool[self._rng.randrange(len(pool))], 0)
                      for _ in range(fabricate)]
        self.entries_poisoned += fabricate
        return kept + fabricated

    def attack_stats(self) -> Dict[str, int]:
        return {"entries_poisoned": self.entries_poisoned}
